//! Quickstart: load a CSV with missing values, discover RFDs, impute with
//! RENUVER, and inspect what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use renuver::core::{Renuver, RenuverConfig};
use renuver::data::csv;
use renuver::rfd::discovery::{discover, DiscoveryConfig};

fn main() {
    // The paper's Table 2 sample: restaurant listings merged from two
    // guides, with missing phones, cities, and cuisine types. The typed
    // header (`name:type`) drives parsing; blank fields are missing values.
    let rel = csv::read_str(
        "Name:text,City:text,Phone:text,Type:text,Class:int\n\
         Granita,Malibu,310/456-0488,Californian,6\n\
         Chinois Main,LA,310-392-9025,French,5\n\
         Citrus,Los Angeles,213/857-0034,Californian,6\n\
         Citrus,Los Angeles,,Californian,6\n\
         Fenix,Hollywood,213/848-6677,,5\n\
         Fenix Argyle,,213/848-6677,French (new),5\n\
         C. Main,Los Angeles,,French,5\n",
    )
    .expect("well-formed CSV");

    println!("Input ({} missing values):\n{rel}", rel.missing_count());

    // Discover the relaxed functional dependencies holding on the instance.
    // The threshold limit caps every LHS/RHS distance threshold; the
    // paper's evaluation sweeps {3, 6, 9, 12, 15}.
    let rfds = discover(&rel, &DiscoveryConfig::with_limit(9.0));
    println!("Discovered {} RFDs, e.g.:", rfds.len());
    for rfd in rfds.iter().take(5) {
        println!("  {}", rfd.display(rel.schema()));
    }

    // Impute. RENUVER walks RHS-threshold clusters per missing cell,
    // ranks candidate donor tuples by LHS distance (Equation 2), and
    // accepts the first value that keeps the whole instance consistent.
    let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);

    println!(
        "\nImputed {} of {} missing cells ({} left unfilled):",
        result.stats.imputed, result.stats.missing_total, result.stats.unimputed
    );
    for ic in &result.imputed {
        println!(
            "  t{}[{}] <- {:?} (donor t{}, distance {:.1}, via {})",
            ic.cell.row + 1,
            result.relation.schema().name(ic.cell.col),
            ic.value.render(),
            ic.donor_row + 1,
            ic.distance,
            ic.via.display(result.relation.schema()),
        );
    }
    println!("\nOutput:\n{}", result.relation);
    println!(
        "Work done: {} candidates scored, {} verifications ({} rejected), \
         {} key-RFDs filtered, {} reactivated",
        result.stats.candidates_scored,
        result.stats.verifications,
        result.stats.verification_failures,
        result.stats.keys_filtered,
        result.stats.keys_reactivated,
    );
}
