//! Repairing a deduplication-style dataset: the workload the paper's
//! introduction motivates. A restaurant guide merged from two sources has
//! duplicate entries with spelling variants; RFDs mined from the duplicate
//! structure recover missing phones and cities, and the rule-based
//! validator judges the result against ground truth.
//!
//! ```sh
//! cargo run --release --example dedup_repair
//! ```

use renuver::core::{Renuver, RenuverConfig};
use renuver::datasets::Dataset;
use renuver::eval::{evaluate, inject};
use renuver::rfd::discovery::{discover, DiscoveryConfig};

fn main() {
    // 864 synthetic restaurant listings with planted duplicates (same
    // statistics as the paper's Restaurant dataset).
    let ds = Dataset::Restaurant;
    let rel = ds.relation(42);
    println!(
        "{}: {} tuples x {} attributes",
        ds.name(),
        rel.len(),
        rel.arity()
    );

    // Knock out 3% of the cells, keeping the originals as ground truth —
    // the paper's evaluation protocol.
    let (incomplete, truth) = inject(&rel, 0.03, 7);
    println!("Injected {} missing values (3%)", truth.len());

    // Mine RFDs from the incomplete instance and impute.
    let rfds = discover(
        &incomplete,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(12.0) },
    );
    println!("Discovered {} RFDs at threshold limit 12", rfds.len());
    let result = Renuver::new(RenuverConfig::default()).impute(&incomplete, &rfds);

    // Judge with the dataset's validation rules: a phone imputed with
    // different separators but the same digits counts as correct, as does
    // a city nickname ("LA" for "Los Angeles").
    let scores = evaluate(&result.relation, &truth, &ds.rules());
    println!(
        "\nfilled {}/{} | precision {:.3} | recall {:.3} | F1 {:.3}",
        scores.imputed, scores.missing, scores.precision, scores.recall, scores.f1
    );

    // Show a few repairs with their provenance.
    println!("\nSample repairs:");
    for ic in result.imputed.iter().take(8) {
        let attr = result.relation.schema().name(ic.cell.col);
        let expected = truth
            .iter()
            .find(|(c, _)| *c == ic.cell)
            .map(|(_, v)| v.render())
            .unwrap_or_default();
        let verdict = if ds.rules().validate(attr, &ic.value.render(), &expected) {
            "OK"
        } else {
            "WRONG"
        };
        println!(
            "  [{verdict:5}] t{}[{attr}] <- {:?} (expected {:?})",
            ic.cell.row, ic.value.render(), expected
        );
    }
}
