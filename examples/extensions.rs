//! The paper's future-work items, implemented (Section 7):
//!
//! 1. **Distribution-scaled thresholds** — per-attribute discovery limits
//!    derived from each attribute's spread (`auto_limits`);
//! 2. **Multi-dataset candidates** — imputing one dataset with donor
//!    tuples from another (`impute_with_donors`);
//! 3. **Incremental imputation** — filling only freshly appended tuples
//!    (`impute_appended`), plus coverage scores for near-dependencies.
//!
//! ```sh
//! cargo run --example extensions
//! ```

use renuver::core::{Renuver, RenuverConfig};
use renuver::data::csv;
use renuver::rfd::coverage::coverage;
use renuver::rfd::discovery::{auto_limits, discover, DiscoveryConfig};
use renuver::rfd::RfdSet;

fn main() {
    // --- 1. Distribution-scaled threshold limits -------------------------
    let rel = csv::read_str(
        "Org:text,Street:text,Zip:text,Employees:int\n\
         Acme Medical Group,12 Ocean Ave,84084,120\n\
         Acme Medical Group,12 Ocean Ave,84084,120\n\
         Bolt Clinics,99 Main St,20121,1450\n\
         Bolt Clinics,99 Main St,20121,1450\n\
         Cardinal Health Partners,7 Broadway,00184,310\n\
         Cardinal Health Partners,7 Broadway,00184,310\n",
    )
    .unwrap();
    let limits = auto_limits(&rel, 0.2);
    println!("auto limits (20% of each attribute's spread): {limits:?}");
    let rfds = discover(
        &rel,
        &DiscoveryConfig {
            per_attr_limits: Some(limits),
            max_lhs: 2,
            ..DiscoveryConfig::with_limit(3.0)
        },
    );
    println!("discovered {} RFDs under per-attribute limits, e.g.:", rfds.len());
    for rfd in rfds.iter().take(4) {
        println!("  {}  (coverage {:.2})", rfd.display(rel.schema()), coverage(&rel, rfd));
    }

    // --- 2. Multi-dataset candidate selection ----------------------------
    let target = csv::read_str(
        "Org:text,Street:text,Zip:text,Employees:int\n\
         Acme Medical Group,12 Ocean Ave,,120\n",
    )
    .unwrap();
    let manual = RfdSet::from_text("Org(<=0) -> Zip(<=0)", target.schema()).unwrap();
    let engine = Renuver::new(RenuverConfig::default());
    let alone = engine.impute(&target, &manual);
    println!(
        "\ntarget alone: {}/{} imputed (no donor shares the org)",
        alone.stats.imputed, alone.stats.missing_total
    );
    let with_donors = engine
        .impute_with_donors(&target, &[&rel], &manual)
        .expect("schemas match");
    println!(
        "with the reference dataset as donor: {}/{} imputed -> Zip = {}",
        with_donors.stats.imputed,
        with_donors.stats.missing_total,
        with_donors.relation.value(0, 2).render()
    );

    // --- 3. Incremental imputation ---------------------------------------
    let mut stream = rel.clone();
    let first_new = stream.len();
    stream
        .push(vec![
            "Bolt Clinics".into(),
            "99 Main St".into(),
            renuver::data::Value::Null, // zip missing in the arriving tuple
            renuver::data::Value::Int(1450),
        ])
        .unwrap();
    let incr = engine.impute_appended(&stream, first_new, &rfds);
    println!(
        "\nincremental batch: {}/{} imputed -> appended tuple's Zip = {}",
        incr.stats.imputed,
        incr.stats.missing_total,
        incr.relation.value(first_new, 2).render()
    );
}
