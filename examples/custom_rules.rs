//! Authoring a validation rule file for your own dataset and using
//! hand-written RFDs instead of discovery.
//!
//! Shows the three rule kinds of the paper's evaluation framework (value
//! sets, structural regexes, numeric deltas), the rule-file syntax, and
//! RFD parsing from the paper's own notation.
//!
//! ```sh
//! cargo run --example custom_rules
//! ```

use renuver::core::{Renuver, RenuverConfig};
use renuver::data::csv;
use renuver::eval::{evaluate, inject};
use renuver::rfd::RfdSet;
use renuver::rulekit::parse_rules;

fn main() {
    // A small customer table: phone style varies by source system, the
    // plan names have synonyms, and the account balance tolerates rounding.
    let rel = csv::read_str(
        "Customer:text,City:text,Zip:text,Phone:text,Plan:text,Balance:float\n\
         Ada Lovelace,Salerno,84084,089-271-4455,premium,120.5\n\
         Alan Turing,Salerno,84084,089-271-8821,basic,44.0\n\
         Grace Hopper,Milano,20121,02-555-1032,premium,310.2\n\
         Edsger Dijkstra,Milano,20121,02-555-7741,basic,12.9\n\
         Kurt Goedel,Salerno,84084,089-271-9917,premium,98.1\n\
         Emmy Noether,Milano,20121,02-555-2310,gold,501.0\n",
    )
    .unwrap();

    // Hand-written dependencies in the paper's notation: same zip → same
    // city; similar phone → same zip (shared exchange prefix).
    let rfds = RfdSet::from_text(
        "Zip(<=0) -> City(<=0)\n\
         City(<=0) -> Zip(<=0)\n\
         Phone(<=6) -> Zip(<=0)\n\
         Phone(<=6) -> City(<=0)\n",
        rel.schema(),
    )
    .expect("dependencies parse");
    println!("Using {} hand-written RFDs:", rfds.len());
    for rfd in rfds.iter() {
        println!("  {}", rfd.display(rel.schema()));
    }

    // A rule file in the same format the built-in datasets ship.
    let rules = parse_rules(
        "# customer validation rules\n\
         attr Phone\n  regex \\d{2,3}[- ]\\d{3}[- ]\\d{4} project digits\n\
         attr Plan\n  set premium gold-legacy\n  set basic starter\n\
         attr Balance\n  delta 1.0\n",
    )
    .expect("rule file parses");

    // The rules in action, outside any imputation pipeline:
    println!("\nRule checks:");
    for (attr, imputed, expected) in [
        ("Phone", "089 271 4455", "089-271-4455"), // separators differ, digits match
        ("Phone", "089-271-4456", "089-271-4455"), // digits differ
        ("Plan", "gold-legacy", "premium"),        // same value set
        ("Balance", "120.0", "120.5"),             // within delta
        ("Balance", "98.1", "120.5"),              // beyond delta
    ] {
        println!(
            "  {attr:8} {imputed:>14} vs {expected:<14} -> {}",
            if rules.validate(attr, imputed, expected) { "correct" } else { "wrong" }
        );
    }

    // End to end: inject, impute with the hand-written RFDs, validate.
    let (incomplete, truth) = inject(&rel, 0.15, 3);
    let result = Renuver::new(RenuverConfig::default()).impute(&incomplete, &rfds);
    let scores = evaluate(&result.relation, &truth, &rules);
    println!(
        "\nInjected {} cells; filled {}; precision {:.2}, recall {:.2}",
        truth.len(),
        scores.imputed,
        scores.precision,
        scores.recall
    );
}
