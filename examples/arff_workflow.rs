//! Working with UCI-style ARFF files: load, impute, audit, save.
//!
//! The datasets the paper evaluates on (Glass, Bridges, …) are distributed
//! as Weka ARFF files; this example writes one, repairs it, and audits the
//! result against the discovered dependencies — the end-to-end flow a
//! practitioner with a `.arff` on disk would run.
//!
//! ```sh
//! cargo run --release --example arff_workflow
//! ```

use renuver::core::{audit, AuditConfig, Renuver, RenuverConfig};
use renuver::data::arff;
use renuver::datasets::Dataset;
use renuver::eval::inject;
use renuver::rfd::discovery::{discover, DiscoveryConfig};

fn main() {
    let dir = std::env::temp_dir().join("renuver-arff-example");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Simulate the practitioner's starting point: a Glass ARFF file with
    // holes already in it.
    let complete = Dataset::Glass.relation(42);
    let (incomplete, truth) = inject(&complete, 0.04, 11);
    let input = dir.join("glass_incomplete.arff");
    arff::write_path(&incomplete, "glass", &input).expect("write input");
    println!("wrote {} ({} missing values)", input.display(), truth.len());

    // Load it back — this is where a real user starts.
    let rel = arff::read_path(&input).expect("read ARFF");
    assert_eq!(rel, incomplete);

    // Discover dependencies and impute.
    let sigma = discover(
        &rel,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) },
    );
    let result = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);
    println!(
        "discovered {} RFDs; imputed {}/{} cells",
        sigma.len(),
        result.stats.imputed,
        result.stats.missing_total
    );

    // Audit the repaired instance against the same dependency set.
    let cells: Vec<_> = result.imputed.iter().map(|ic| ic.cell).collect();
    let report = audit(&result.relation, &sigma, &cells, &AuditConfig::default());
    println!(
        "audit: {}/{} dependencies satisfied ({} violating pairs touch repairs)",
        report.satisfied, report.checked, report.pairs_touching_audited_cells
    );

    // Persist the repaired ARFF.
    let output = dir.join("glass_repaired.arff");
    arff::write_path(&result.relation, "glass_repaired", &output).expect("write output");
    println!("wrote {}", output.display());

    // How good was it? (Only possible here because we injected the holes.)
    let scores = renuver::eval::evaluate(&result.relation, &truth, &Dataset::Glass.rules());
    println!(
        "vs ground truth: precision {:.3}, recall {:.3}",
        scores.precision, scores.recall
    );
}
