//! Comparing imputation strategies on numeric measurement data (the Glass
//! composition dataset): RENUVER vs grey-kNN vs the Derand- and
//! Holoclean-style baselines, on identical injected missing values.
//!
//! ```sh
//! cargo run --release --example sensor_comparison
//! ```

use renuver::baselines::{DerandConfig, GreyKnnConfig, HolocleanConfig};
use renuver::core::RenuverConfig;
use renuver::datasets::Dataset;
use renuver::dc::{discover_dcs, DcDiscoveryConfig};
use renuver::eval::{
    average_scores, run_variants, DerandImputer, GreyKnnImputer, HolocleanImputer, Imputer,
    RenuverImputer,
};
use renuver::rfd::discovery::{discover, DiscoveryConfig};

fn main() {
    let ds = Dataset::Glass;
    let rel = ds.relation(42);
    let rules = ds.rules();
    println!(
        "{}: {} tuples x {} numeric attributes\n",
        ds.name(),
        rel.len(),
        rel.arity()
    );

    // Metadata for the dependency-driven approaches.
    let rfds = discover(
        &rel,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(15.0) },
    );
    let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
    println!("metadata: {} RFDs, {} denial constraints", rfds.len(), dcs.len());

    let imputers: Vec<Box<dyn Imputer>> = vec![
        Box::new(RenuverImputer::new(RenuverConfig::default(), rfds.clone())),
        Box::new(DerandImputer::new(DerandConfig::default(), rfds)),
        Box::new(HolocleanImputer::new(HolocleanConfig::default(), dcs)),
        Box::new(GreyKnnImputer::new(GreyKnnConfig::default())),
    ];

    // Three seeded injections at 4% missing; every approach sees the same
    // incomplete instances.
    println!("\n{:<12} {:>9} {:>9} {:>9} {:>10}", "approach", "precision", "recall", "F1", "time");
    for imp in &imputers {
        let outcomes = run_variants(&rel, &rules, imp.as_ref(), 0.04, &[1, 2, 3]);
        let avg = average_scores(&outcomes);
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>9.0}ms",
            imp.name(),
            avg.scores.precision,
            avg.scores.recall,
            avg.scores.f1,
            avg.elapsed.as_millis()
        );
    }
    println!(
        "\nNote: validation uses per-oxide delta rules (e.g. Na within \
         ±0.5 weight-% counts as correct), mirroring the paper's \
         rule-based evaluation."
    );
}
