//! # renuver
//!
//! A production-quality Rust reproduction of **RENUVER** (Breve, Caruccio,
//! Deufemia, Polese — *RENUVER: A Missing Value Imputation Algorithm based on
//! Relaxed Functional Dependencies*, EDBT 2022).
//!
//! RENUVER fills missing values in relational data using relaxed functional
//! dependencies (RFD_c): distance-constrained dependencies such as
//! `Name(≤4) → Phone(≤1)` that hold on the instance. RFDs are used to
//! generate candidate tuples for each missing cell, to rank candidates by
//! LHS distance, and to verify that every imputation keeps the instance
//! semantically consistent.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`data`] — relational model (values, schemas, relations, CSV I/O)
//! - [`distance`] — distance functions and tuple distance patterns
//! - [`rfd`] — RFD_c model, checking, and discovery
//! - [`dc`] — denial constraints (used by the Holoclean-style baseline)
//! - [`core`] — the RENUVER imputation algorithm
//! - [`baselines`] — grey-kNN, Derand-style, and Holoclean-style imputers
//! - [`rulekit`] — rule-based imputation-result validation framework
//! - [`datasets`] — synthetic datasets mirroring the paper's evaluation data
//! - [`eval`] — missing-value injection, metrics, experiment runners
//! - [`serve`] — versioned model artifacts and the imputation HTTP server
//!
//! New here? Start with the [`guide`] module — a compilable walk-through
//! from dependencies to audited repairs.
//!
//! ## Quickstart
//!
//! ```
//! use renuver::data::csv;
//! use renuver::rfd::discovery::{discover, DiscoveryConfig};
//! use renuver::core::{Renuver, RenuverConfig};
//!
//! let rel = csv::read_str(
//!     "Name:text,City:text,Class:int\n\
//!      Granita,Malibu,6\n\
//!      Granitas,Malibu,6\n\
//!      Citrus,,6\n",
//! ).unwrap();
//!
//! // Discover RFDs with all thresholds capped at 3.
//! let rfds = discover(&rel, &DiscoveryConfig::with_limit(3.0));
//! // Impute the missing city.
//! let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
//! assert!(result.relation.missing_count() <= rel.missing_count());
//! ```

pub mod guide;

pub use renuver_baselines as baselines;
pub use renuver_budget as budget;
pub use renuver_core as core;
pub use renuver_data as data;
pub use renuver_dc as dc;
pub use renuver_datasets as datasets;
pub use renuver_distance as distance;
pub use renuver_eval as eval;
pub use renuver_obs as obs;
pub use renuver_rfd as rfd;
pub use renuver_rulekit as rulekit;
pub use renuver_serve as serve;
pub use renuver_tune as tune;
