//! # A guided tour of RFD-based imputation
//!
//! This documentation-only module walks through the library the way the
//! paper develops the material: dependencies first, then the imputation
//! algorithm, then evaluation. Every snippet compiles and runs as a
//! doctest.
//!
//! ## 1. Relaxed functional dependencies
//!
//! A classical FD `City → Zip` demands *equality*: two tuples with the
//! same city must have the same zip. Real data is messier — "Los Angeles"
//! and "LA" are the same city — so an RFD_c compares through **distance
//! constraints**: `City(≤2) → Zip(≤0)` tolerates two edits in the city
//! spelling and still expects identical zips.
//!
//! ```
//! use renuver::data::csv;
//! use renuver::rfd::{check, Rfd};
//!
//! let rel = csv::read_str(
//!     "City:text,Zip:text\n\
//!      Torre Annunziata,80058\n\
//!      Torre Anunziata,80058\n\
//!      Milano,20121\n",
//! ).unwrap();
//!
//! // The strict FD reading fails to see the typo pair as "the same city"
//! // — but the relaxed constraint does, and the dependency holds.
//! let rfd = Rfd::parse("City(<=2) -> Zip(<=0)", rel.schema()).unwrap();
//! assert!(check::holds(&rel, &rfd));
//! ```
//!
//! ## 2. Discovering the dependencies
//!
//! You rarely know Σ up front. [`rfd::discovery::discover`] mines the
//! RFDs holding on an instance, with every threshold capped by a limit —
//! the knob the paper sweeps in its Figure 2:
//!
//! ```
//! use renuver::datasets::Dataset;
//! use renuver::rfd::discovery::{discover, DiscoveryConfig};
//!
//! let rel = Dataset::Bridges.relation(42);
//! let cfg = DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) };
//! let sigma = discover(&rel, &cfg);
//! assert!(!sigma.is_empty());
//! println!("e.g. {}", sigma.get(0).display(rel.schema()));
//! ```
//!
//! A small limit yields few, strict dependencies (high imputation
//! precision, low recall); a large limit yields many, permissive ones
//! (higher recall, lower precision). That trade-off *is* Figure 2.
//!
//! ## 3. Imputing
//!
//! [`core::Renuver`] walks each missing cell's dependencies from the
//! tightest RHS threshold to the loosest, ranks candidate donor tuples by
//! LHS distance (Equation 2 of the paper), and takes the first value that
//! keeps the instance consistent:
//!
//! ```
//! use renuver::core::{Renuver, RenuverConfig};
//! use renuver::data::csv;
//! use renuver::rfd::RfdSet;
//!
//! let rel = csv::read_str(
//!     "City:text,Zip:text\n\
//!      Salerno,84084\n\
//!      Salerno,\n",
//! ).unwrap();
//! let sigma = RfdSet::from_text("City(<=0) -> Zip(<=0)", rel.schema()).unwrap();
//!
//! let result = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);
//! let repair = &result.imputed[0];
//! assert_eq!(repair.value.render(), "84084");
//! assert_eq!(repair.donor_row, 0);               // provenance: who donated
//! println!("justified by {}", repair.via.display(rel.schema()));
//! ```
//!
//! When no candidate passes verification the cell stays missing — the
//! paper's "better unimputed than wrong" stance, and the reason RENUVER's
//! precision leads every comparison in Section 6.
//!
//! ## 4. Evaluating like the paper
//!
//! Inject missing values into a complete instance, impute, and judge each
//! filled cell with the rule framework (value sets, structural regexes,
//! numeric deltas):
//!
//! ```
//! use renuver::core::{Renuver, RenuverConfig};
//! use renuver::datasets::Dataset;
//! use renuver::eval::{evaluate, inject};
//! use renuver::rfd::discovery::{discover, DiscoveryConfig};
//!
//! let ds = Dataset::Glass;
//! let rel = ds.relation(42);
//! let (incomplete, truth) = inject(&rel, 0.02, 7);
//! let sigma = discover(
//!     &incomplete,
//!     &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) },
//! );
//! let result = Renuver::new(RenuverConfig::default()).impute(&incomplete, &sigma);
//! let scores = evaluate(&result.relation, &truth, &ds.rules());
//! assert!(scores.precision > 0.5);
//! ```
//!
//! ## 5. Auditing any repair
//!
//! [`core::audit`] answers Definition 4.3 globally — does the repaired
//! instance satisfy Σ, and which repairs broke what:
//!
//! ```
//! use renuver::core::{audit, AuditConfig};
//! use renuver::data::csv;
//! use renuver::rfd::RfdSet;
//!
//! let repaired = csv::read_str(
//!     "City:text,Zip:text\n\
//!      Salerno,84084\n\
//!      Salerno,99999\n",   // a bad third-party repair
//! ).unwrap();
//! let sigma = RfdSet::from_text("City(<=0) -> Zip(<=0)", repaired.schema()).unwrap();
//! let report = audit(&repaired, &sigma, &[], &AuditConfig::default());
//! assert!(!report.is_consistent());
//! assert_eq!(report.violations[0].pairs, vec![(0, 1)]);
//! ```
//!
//! ## 6. Where to go next
//!
//! - The comparator implementations live in [`baselines`]; run them
//!   through [`eval::Imputer`] on identical injected instances.
//! - The paper's future-work items are implemented: per-attribute
//!   discovery limits ([`rfd::discovery::auto_limits`]), donor datasets
//!   ([`core::Renuver::impute_with_donors`]), and incremental batches
//!   ([`core::Renuver::impute_appended`]).
//! - `cargo run -p renuver-bench --release --bin fig3` reproduces the
//!   paper's headline comparison end to end.
//!
//! [`rfd::discovery::discover`]: crate::rfd::discovery::discover
//! [`core::Renuver`]: crate::core::Renuver
//! [`core::audit`]: crate::core::audit
//! [`baselines`]: crate::baselines
//! [`eval::Imputer`]: crate::eval::Imputer
//! [`rfd::discovery::auto_limits`]: crate::rfd::discovery::auto_limits
//! [`core::Renuver::impute_with_donors`]: crate::core::Renuver::impute_with_donors
//! [`core::Renuver::impute_appended`]: crate::core::Renuver::impute_appended
