//! `renuver` — command-line interface to the imputation pipeline.
//!
//! ```text
//! renuver stats    <data.csv>
//! renuver discover <data.csv> [--limit N] [--max-lhs N] [--out rfds.txt]
//! renuver inject   <data.csv> --rate R [--seed S] --out incomplete.csv
//! renuver impute   <data.csv> [--rfds rfds.txt | --limit N] [--out repaired.csv]
//!                  [--full-verify] [--descending] [--no-batch-verify]
//! renuver evaluate --original full.csv --incomplete holes.csv
//!                  --imputed repaired.csv [--rules rules.txt]
//! ```
//!
//! CSV files use a typed header (`Name:text,Class:int,...`); untyped
//! columns default to text. Missing values are empty fields or `_`.

use std::process::ExitCode;

use renuver::baselines::{Derand, DerandConfig, GreyKnn, GreyKnnConfig, Holoclean, HolocleanConfig};
use renuver::core::{ClusterOrder, IndexMode, Renuver, RenuverConfig, VerifyScope};
use renuver::data::{csv, Cell, Relation};
use renuver::dc::{discover_dcs, DcDiscoveryConfig};
use renuver::eval::{evaluate, inject};
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::RfdSet;
use renuver::rulekit::{parse_rules, RuleSet};

/// Counting allocator: makes `--mem-limit-mb` (and the peak-memory figures
/// the eval harness prints) measure real heap use. The counting cost is two
/// relaxed atomics per allocation.
#[global_allocator]
static ALLOC: renuver::budget::TrackingAlloc = renuver::budget::TrackingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  renuver stats    <data.csv>
  renuver audit    <data.csv> --rfds rfds.txt
  renuver discover <data.csv> [--limit N | --auto-limits F] [--max-lhs N]
                   [--out rfds.txt] [--summary] [budget flags]
  renuver inject   <data.csv> --rate R [--seed S] --out incomplete.csv
  renuver impute   <data.csv> [--rfds rfds.txt | --limit N] [--out repaired.csv]
                   [--approach renuver|derand|holoclean|knn] [--explain]
                   [--donors donor.csv] [--full-verify] [--descending]
                   [--no-batch-verify]
                   [--index-mode scan|indexed|auto] [budget flags]
  renuver evaluate --original full.csv --incomplete holes.csv \\
                   --imputed repaired.csv [--rules rules.txt | --auto-rules F]
  renuver compare  <full.csv> --rate R [--limit N] [--seeds N]
                   [--rules rules.txt | --auto-rules F] [--metrics-diff]
                   [--index-mode scan|indexed|auto] [budget flags]
  renuver tune     <data.csv | model.rnv> [--rfds rfds.txt | --limit N]
                   [--auto-limits F] [--max-lhs N] [--seed S] [--rate R]
                   [--iterations N] [--target-f1 F] [--step W]
                   [--rules rules.txt | --auto-rules F] [--parallelism N]
                   [--out tuned-rfds.txt] [budget flags]
  renuver prepare  <data.csv> -o model.rnv [--rfds rfds.txt | --limit N]
                   [--auto-limits F] [--max-lhs N]
                   [--index-mode scan|indexed|auto]
  renuver inspect  <model.rnv>
  renuver ingest   <model.rnv> <batch.csv> [--out repaired.csv] [--compact]
                   [--compact-bytes-mb M] [--compact-records N]
                   [--log-out FILE]
  renuver serve    <model.rnv | data.csv> [--addr HOST:PORT] [--workers N]
                   [--queue N] [--max-body-mb M] [--default-timeout-ms T]
                   [--max-timeout-ms T] [--read-timeout-secs S]
                   [--wal] [--compact-bytes-mb M] [--compact-records N]
                   [--rfds rfds.txt | --limit N]
                   [--auto-limits F] [--max-lhs N]
                   [--index-mode scan|indexed|auto]
                   [--log-out FILE] [--slow-threshold-ms T]
                   [--trace-max-events N] [--no-flight]

budget flags (discover, impute, compare, tune):
  --timeout-secs S   stop after S seconds, returning the partial result
  --mem-limit-mb M   stop when tracked heap use exceeds M MiB
  --ops-limit N      stop after N budget checkpoints (deterministic)

observability flags (discover, impute, compare, tune):
  --trace-out FILE   write a structured JSONL trace of the run; the schema
                     is documented in DESIGN.md and enforced by the
                     validate_trace binary
  --metrics          print the end-of-run metrics table on stderr

flight recorder flags (serve; ingest takes --log-out only):
  --log-out FILE        append one schema-checked JSONL line per request
                        (access) and lifecycle transition (server_event)
  --slow-threshold-ms T requests at or above T ms land in the slow ring
                        served by GET /v1/debug/requests (default 250)
  --trace-max-events N  cap on the ?trace=1 response envelope (default 256)
  --no-flight           disable request ids, latency windows, logging, and
                        the slow ring (overhead measurement)";

/// The recognised subcommands, in USAGE order — listed back to the user
/// when they mistype one.
const COMMANDS: &str = "stats, audit, discover, inject, impute, evaluate, compare, tune, \
     prepare, inspect, ingest, serve";

/// Budget-related flags, shared by `discover`, `impute`, `compare`, and
/// `tune`.
const BUDGET_VALUE_FLAGS: [&str; 3] = ["--timeout-secs", "--mem-limit-mb", "--ops-limit"];

/// Flag parser with an explicit per-command vocabulary: every `--flag` must
/// be either a declared value flag (consumes the next argument) or a
/// declared boolean flag — anything else is rejected up front instead of
/// being silently mis-read as a positional or swallowing one.
#[derive(Debug)]
struct Args<'a> {
    raw: &'a [String],
    positionals: Vec<&'a str>,
}

impl<'a> Args<'a> {
    fn parse(
        raw: &'a [String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Args<'a>, String> {
        let mut positionals = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = raw[i].as_str();
            // `--flag` always enters the vocabulary check; declared short
            // flags (`-o`) do too, so they can take values like long ones.
            if a.starts_with("--") || value_flags.contains(&a) || bool_flags.contains(&a) {
                if value_flags.contains(&a) {
                    if i + 1 >= raw.len() {
                        return Err(format!("flag {a} requires a value"));
                    }
                    i += 1; // skip the flag's value
                } else if !bool_flags.contains(&a) {
                    return Err(format!("unknown flag {a:?} for this command"));
                }
            } else {
                positionals.push(a);
            }
            i += 1;
        }
        Ok(Args { raw, positionals })
    }

    fn positional(&self) -> &[&'a str] {
        &self.positionals
    }

    fn value(&self, flag: &str) -> Option<&'a str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    fn parse_value<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        match self.value(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value {raw:?} for {flag}")),
        }
    }
}

/// Resolve `--index-mode` (shared by `impute` and `compare`). Every mode
/// yields bit-for-bit identical repairs; the knob only trades index
/// construction time against per-cell scan time.
fn index_mode_from_args(args: &Args) -> Result<IndexMode, String> {
    match args.value("--index-mode") {
        None | Some("auto") => Ok(IndexMode::Auto),
        Some("scan") => Ok(IndexMode::Scan),
        Some("indexed") => Ok(IndexMode::Indexed),
        Some(other) => Err(format!(
            "bad value {other:?} for --index-mode (expected scan, indexed, or auto)"
        )),
    }
}

/// The budget limits requested on the command line. `build` produces a
/// **fresh** [`renuver::budget::Budget`] each call, so batch commands
/// (`compare`) can give every run its own deadline instead of sharing one
/// already-tripped handle.
#[derive(Clone, Copy, Default)]
struct BudgetSpec {
    timeout_secs: Option<f64>,
    mem_limit_mb: Option<usize>,
    ops_limit: Option<u64>,
}

impl BudgetSpec {
    fn from_args(args: &Args) -> Result<BudgetSpec, String> {
        let timeout_secs: Option<f64> = args.parse_value("--timeout-secs")?;
        if let Some(s) = timeout_secs {
            if !s.is_finite() || s < 0.0 {
                return Err("--timeout-secs must be finite and >= 0".into());
            }
        }
        Ok(BudgetSpec {
            timeout_secs,
            mem_limit_mb: args.parse_value("--mem-limit-mb")?,
            ops_limit: args.parse_value("--ops-limit")?,
        })
    }

    fn build(&self) -> renuver::budget::Budget {
        let mut b = renuver::budget::Budget::unlimited();
        if let Some(s) = self.timeout_secs {
            b = b.with_deadline(std::time::Duration::from_secs_f64(s));
        }
        if let Some(mb) = self.mem_limit_mb {
            b = b.with_mem_ceiling(mb.saturating_mul(1024 * 1024));
        }
        if let Some(n) = self.ops_limit {
            b = b.with_ops_limit(n);
        }
        b
    }

    fn is_limited(&self) -> bool {
        self.timeout_secs.is_some() || self.mem_limit_mb.is_some() || self.ops_limit.is_some()
    }
}

/// The observability flags shared by `discover`, `impute`, and `compare`.
/// Either flag enables the tracer; with neither present the pipelines get
/// the disabled tracer and pay only a branch per instrumentation site.
struct TraceSpec {
    tracer: renuver::obs::Tracer,
    out: Option<String>,
    metrics: bool,
}

impl TraceSpec {
    fn from_args(args: &Args) -> TraceSpec {
        let out = args.value("--trace-out").map(str::to_owned);
        let metrics = args.has("--metrics");
        let tracer = if out.is_some() || metrics {
            renuver::obs::Tracer::enabled()
        } else {
            renuver::obs::Tracer::disabled()
        };
        TraceSpec { tracer, out, metrics }
    }

    /// Attaches a fire-once hook that turns the budget's first trip into a
    /// `budget_trip` trace event (trip label + the phase it fired in).
    fn hook_budget(&self, budget: renuver::budget::Budget) -> renuver::budget::Budget {
        if !self.tracer.is_enabled() {
            return budget;
        }
        let tracer = self.tracer.clone();
        budget.with_trip_hook(std::sync::Arc::new(move |trip, phase| {
            tracer.event("budget_trip", 0, || {
                vec![
                    ("trip", renuver::obs::FieldValue::Str(trip.label())),
                    ("phase", renuver::obs::FieldValue::Str(phase)),
                ]
            });
        }))
    }

    /// Writes the requested sinks after the run: the JSONL trace file
    /// and/or the metrics table on stderr.
    fn finish(&self) -> Result<(), String> {
        if let Some(path) = &self.out {
            let lines = self
                .tracer
                .write_jsonl(path)
                .map_err(|e| format!("{path}: {e}"))?;
            eprintln!("trace: wrote {lines} JSONL records to {path}");
        }
        if self.metrics {
            eprint!("{}", self.tracer.metrics().render_table());
        }
        Ok(())
    }
}

fn load(path: &str) -> Result<Relation, String> {
    let result = if path.to_ascii_lowercase().ends_with(".arff") {
        renuver::data::arff::read_path(path)
    } else {
        csv::read_path(path)
    };
    result.map_err(|e| format!("{path}: {e}"))
}

fn save(rel: &Relation, path: &str) -> Result<(), String> {
    let result = if path.to_ascii_lowercase().ends_with(".arff") {
        renuver::data::arff::write_path(rel, "renuver", path)
    } else {
        csv::write_path(rel, path)
    };
    result.map_err(|e| format!("{path}: {e}"))
}

/// `(value flags, boolean flags)` accepted by a command. Budget flags are
/// appended for the commands that run the budgeted pipelines.
fn flag_spec(cmd: &str) -> Option<(Vec<&'static str>, Vec<&'static str>)> {
    let discovery = ["--limit", "--auto-limits", "--max-lhs"];
    let (mut values, mut bools): (Vec<&str>, Vec<&str>) = match cmd {
        "stats" => (vec![], vec![]),
        "audit" => (vec!["--rfds"], vec![]),
        "discover" => {
            let mut v = vec!["--out"];
            v.extend(discovery);
            (v, vec!["--summary"])
        }
        "inject" => (vec!["--rate", "--seed", "--out"], vec![]),
        "impute" => {
            let mut v = vec!["--rfds", "--out", "--approach", "--donors", "--index-mode"];
            v.extend(discovery);
            (v, vec!["--full-verify", "--descending", "--explain", "--no-batch-verify"])
        }
        "evaluate" => (
            vec!["--original", "--incomplete", "--imputed", "--rules", "--auto-rules"],
            vec![],
        ),
        "compare" => {
            let mut v = vec!["--rate", "--seeds", "--rules", "--auto-rules", "--index-mode"];
            v.extend(discovery);
            (v, vec!["--metrics-diff"])
        }
        "tune" => {
            let mut v = vec![
                "--rfds",
                "--seed",
                "--rate",
                "--iterations",
                "--target-f1",
                "--step",
                "--parallelism",
                "--rules",
                "--auto-rules",
                "--out",
            ];
            v.extend(discovery);
            (v, vec![])
        }
        "prepare" => {
            let mut v = vec!["-o", "--out", "--rfds", "--index-mode", "--shards"];
            v.extend(discovery);
            (v, vec![])
        }
        "inspect" => (vec![], vec![]),
        "ingest" => (
            vec!["--out", "--compact-bytes-mb", "--compact-records", "--log-out"],
            vec!["--compact"],
        ),
        "serve" => {
            let mut v = vec![
                "--addr",
                "--workers",
                "--queue",
                "--max-body-mb",
                "--default-timeout-ms",
                "--max-timeout-ms",
                "--read-timeout-secs",
                "--compact-bytes-mb",
                "--compact-records",
                "--rfds",
                "--index-mode",
                "--shards",
                "--log-out",
                "--slow-threshold-ms",
                "--trace-max-events",
            ];
            v.extend(discovery);
            (v, vec!["--wal", "--no-flight"])
        }
        _ => return None,
    };
    if matches!(cmd, "discover" | "impute" | "compare" | "tune") {
        values.extend(BUDGET_VALUE_FLAGS);
        values.push("--trace-out");
        bools.push("--metrics");
    }
    Some((values, bools))
}

fn run(raw: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = raw.split_first() else {
        return Err("missing command".into());
    };
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return Ok(());
    }
    let Some((value_flags, bool_flags)) = flag_spec(cmd) else {
        return Err(format!("unknown command {cmd:?} (valid commands: {COMMANDS})"));
    };
    let args = Args::parse(rest, &value_flags, &bool_flags)?;
    // Pipeline commands behave like unix filters: `renuver inspect m.rnv |
    // head` should end quietly when the pipe closes, not panic on the next
    // println. `serve` keeps Rust's SIGPIPE=ignore default — its socket
    // writes must surface EPIPE as an error, not kill the process.
    if cmd != "serve" {
        restore_default_sigpipe();
    }
    match cmd.as_str() {
        "stats" => stats(&args),
        "audit" => audit_cmd(&args),
        "discover" => discover_cmd(&args),
        "inject" => inject_cmd(&args),
        "impute" => impute_cmd(&args),
        "evaluate" => evaluate_cmd(&args),
        "compare" => compare_cmd(&args),
        "tune" => tune_cmd(&args),
        "prepare" => prepare_cmd(&args),
        "inspect" => inspect_cmd(&args),
        "ingest" => ingest_cmd(&args),
        "serve" => serve_cmd(&args),
        other => Err(format!("unknown command {other:?} (valid commands: {COMMANDS})")),
    }
}

/// Resets `SIGPIPE` to its default disposition (terminate). The `signal`
/// symbol comes from the libc std already links; no crate dependency.
#[cfg(unix)]
fn restore_default_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn restore_default_sigpipe() {}

fn one_positional(args: &Args) -> Result<String, String> {
    match args.positional() {
        [p] => Ok((*p).to_owned()),
        other => Err(format!("expected exactly one input file, got {}", other.len())),
    }
}

fn stats(args: &Args) -> Result<(), String> {
    let rel = load(&one_positional(args)?)?;
    println!("schema:  {}", rel.schema());
    println!("tuples:  {}", rel.len());
    println!(
        "missing: {} cells in {} incomplete tuples",
        rel.missing_count(),
        rel.incomplete_rows().len()
    );
    for p in renuver::data::profile(&rel) {
        let extra = match (p.numeric_range, p.text_len_range) {
            (Some((lo, hi)), _) => format!("range [{lo}, {hi}]"),
            (None, Some((lo, hi))) => format!("length {lo}..{hi}"),
            _ => String::new(),
        };
        println!(
            "  {:<20} {:>6} distinct, {:>5} missing  {extra}",
            p.name, p.distinct, p.nulls
        );
    }
    Ok(())
}

fn audit_cmd(args: &Args) -> Result<(), String> {
    let rel = load(&one_positional(args)?)?;
    let path = args.value("--rfds").ok_or("audit requires --rfds")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let rfds = RfdSet::from_text(&text, rel.schema())?;
    let report = renuver::core::audit(&rel, &rfds, &[], &renuver::core::AuditConfig::default());
    print!("{}", renuver::core::audit::render_report(&report, &rfds, &rel));
    if report.is_consistent() {
        Ok(())
    } else {
        Err(format!(
            "instance violates {} of {} dependencies",
            report.violations.len(),
            report.checked
        ))
    }
}

fn discovery_config(args: &Args, rel: &Relation) -> Result<DiscoveryConfig, String> {
    let limit: f64 = args.parse_value("--limit")?.unwrap_or(3.0);
    if !(0.0..=1000.0).contains(&limit) {
        return Err("--limit must be in 0..=1000".into());
    }
    let max_lhs: usize = args.parse_value("--max-lhs")?.unwrap_or(2);
    // Distribution-scaled per-attribute limits (fraction of each
    // attribute's spread) instead of one global limit.
    let per_attr_limits = args
        .parse_value::<f64>("--auto-limits")?
        .map(|fraction| {
            if !(0.0..=1.0).contains(&fraction) {
                return Err("--auto-limits must be a fraction in 0..=1".to_string());
            }
            Ok(renuver::rfd::discovery::auto_limits(rel, fraction))
        })
        .transpose()?;
    Ok(DiscoveryConfig { max_lhs, per_attr_limits, ..DiscoveryConfig::with_limit(limit) })
}

fn discover_cmd(args: &Args) -> Result<(), String> {
    let rel = load(&one_positional(args)?)?;
    let spec = BudgetSpec::from_args(args)?;
    let tspec = TraceSpec::from_args(args);
    let mut cfg = discovery_config(args, &rel)?;
    cfg.budget = tspec.hook_budget(spec.build());
    cfg.tracer = tspec.tracer.clone();
    let outcome = renuver::rfd::discovery::discover_outcome(&rel, &cfg);
    let rfds = outcome.rfds;
    if args.has("--summary") {
        eprint!("{}", rfds.summary(rel.schema()));
    }
    let text = rfds.to_text(rel.schema());
    match args.value("--out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {} RFDs to {path}", rfds.len());
        }
        None => print!("{text}"),
    }
    // A truncated frontier is a *partial but valid* result, not a failure:
    // report it on stderr and still exit 0.
    if outcome.truncated {
        let why = outcome
            .budget
            .tripped
            .map(|t| t.to_string())
            .unwrap_or_else(|| "budget".into());
        eprintln!(
            "truncated: {why} tripped after {}; the {} RFDs above are the frontier found so far",
            renuver::budget::format_duration(outcome.budget.elapsed),
            rfds.len(),
        );
    }
    tspec.finish()
}

fn inject_cmd(args: &Args) -> Result<(), String> {
    let rel = load(&one_positional(args)?)?;
    let rate: f64 = args
        .parse_value("--rate")?
        .ok_or("inject requires --rate (e.g. 0.05)")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err("--rate must be in 0..=1".into());
    }
    let seed: u64 = args.parse_value("--seed")?.unwrap_or(42);
    let out = args.value("--out").ok_or("inject requires --out")?;
    let (incomplete, truth) = inject(&rel, rate, seed);
    save(&incomplete, out)?;
    println!(
        "injected {} missing values ({}%) into {out}",
        truth.len(),
        rate * 100.0
    );
    Ok(())
}

fn impute_cmd(args: &Args) -> Result<(), String> {
    let rel = load(&one_positional(args)?)?;
    let approach = args.value("--approach").unwrap_or("renuver");
    if !matches!(approach, "renuver" | "derand" | "holoclean" | "knn") {
        return Err(format!(
            "unknown approach {approach:?} (expected renuver, derand, holoclean, or knn)"
        ));
    }
    let tspec = TraceSpec::from_args(args);
    if approach != "renuver" && tspec.tracer.is_enabled() {
        return Err(format!(
            "--trace-out/--metrics instrument the renuver pipeline only, not {approach:?}"
        ));
    }
    // The statistical approaches do not consume RFDs.
    if matches!(approach, "holoclean" | "knn") {
        let repaired = match approach {
            "holoclean" => {
                let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
                eprintln!("holoclean: {} denial constraints discovered", dcs.len());
                Holoclean::new(HolocleanConfig::default()).impute(&rel, &dcs)
            }
            _ => GreyKnn::new(GreyKnnConfig::default()).impute(&rel),
        };
        let before = rel.missing_count();
        eprintln!(
            "imputed {}/{} missing cells with {approach}",
            before - repaired.missing_count(),
            before
        );
        return match args.value("--out") {
            Some(path) => save(&repaired, path),
            None => {
                print!("{}", csv::write_string(&repaired));
                Ok(())
            }
        };
    }

    let rfds = match args.value("--rfds") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            RfdSet::from_text(&text, rel.schema())?
        }
        None => {
            let cfg = discovery_config(args, &rel)?;
            eprintln!("no --rfds given; discovering with limit {}", cfg.limit);
            discover(&rel, &cfg)
        }
    };
    let spec = BudgetSpec::from_args(args)?;
    let config = RenuverConfig {
        verify_scope: if args.has("--full-verify") {
            VerifyScope::Full
        } else {
            VerifyScope::LhsOnly
        },
        cluster_order: if args.has("--descending") {
            ClusterOrder::Descending
        } else {
            ClusterOrder::Ascending
        },
        budget: tspec.hook_budget(spec.build()),
        index_mode: index_mode_from_args(args)?,
        tracer: tspec.tracer.clone(),
        explain: args.has("--explain"),
        batch_verify: !args.has("--no-batch-verify"),
        ..RenuverConfig::default()
    };
    if approach == "derand" {
        let repaired = Derand::new(DerandConfig::default()).impute(&rel, &rfds);
        let before = rel.missing_count();
        eprintln!(
            "imputed {}/{} missing cells with derand ({} rules)",
            before - repaired.missing_count(),
            before,
            rfds.len()
        );
        return match args.value("--out") {
            Some(path) => save(&repaired, path),
            None => {
                print!("{}", csv::write_string(&repaired));
                Ok(())
            }
        };
    }
    let engine = Renuver::new(config);
    let result = match args.value("--donors") {
        Some(path) => {
            let donor = load(path)?;
            engine
                .impute_with_donors(&rel, &[&donor], &rfds)
                .map_err(|e| e.to_string())?
        }
        None => engine.impute(&rel, &rfds),
    };
    eprintln!(
        "imputed {}/{} missing cells with {} RFDs ({} candidates verified, {} rejected)",
        result.stats.imputed,
        result.stats.missing_total,
        rfds.len(),
        result.stats.verifications,
        result.stats.verification_failures,
    );
    // A tripped budget yields a partial repair: say what was skipped and
    // why, but the partial relation is still written and the exit code
    // stays 0.
    if let Some(trip) = result.budget.tripped {
        eprintln!(
            "budget: {trip} tripped at {} after {}; {} cells skipped, {} cancelled",
            result.budget.tripped_at.unwrap_or("unknown"),
            renuver::budget::format_duration(result.budget.elapsed),
            result.stats.skipped_budget,
            result.stats.cancelled,
        );
    } else if spec.is_limited() {
        eprintln!(
            "budget: finished within limits ({} elapsed, peak {})",
            renuver::budget::format_duration(result.budget.elapsed),
            renuver::budget::format_bytes(result.budget.peak_bytes),
        );
    }
    if args.has("--explain") {
        // One line per missing cell, straight from the CellExplain records:
        // imputed cells name the donor, distance, runner-up margin, and the
        // RFDs that generated candidates; dry cells name the first reason
        // the candidate stream ran out.
        for e in &result.explains {
            let attr = rel.schema().name(e.cell.col);
            match &e.winner {
                Some(w) => {
                    let value = result
                        .imputed
                        .iter()
                        .find(|ic| ic.cell == e.cell)
                        .map(|ic| ic.value.render())
                        .unwrap_or_default();
                    let margin = match w.runner_up_margin {
                        Some(m) => format!(", runner-up +{m:.2}"),
                        None => String::new(),
                    };
                    eprintln!(
                        "  row {} [{attr}] <- {value:?} from row {} \
                         (distance {:.2}{margin}) via {}; {} candidate(s) \
                         in {} cluster(s) from rfds {:?}",
                        e.cell.row,
                        w.donor_row,
                        w.distance,
                        rfds.get(w.via_rfd).display(rel.schema()),
                        e.candidates,
                        e.clusters,
                        e.generating_rfds,
                    );
                }
                None => {
                    let why = match e.dried_up {
                        Some(renuver::core::DryReason::NoActiveRfds) => {
                            "no active RFD targets this attribute".to_string()
                        }
                        Some(renuver::core::DryReason::NoCandidates) => {
                            format!("no candidates in {} cluster(s)", e.clusters)
                        }
                        Some(renuver::core::DryReason::AllRejected) => {
                            format!("all {} candidate(s) failed verification", e.candidates)
                        }
                        Some(renuver::core::DryReason::Budget(trip)) => {
                            format!("budget: {trip}")
                        }
                        Some(renuver::core::DryReason::Cancelled) => "run cancelled".to_string(),
                        None => "no consistent candidate".to_string(),
                    };
                    eprintln!("  row {} [{attr}] left missing ({why})", e.cell.row);
                }
            }
        }
    }
    match args.value("--out") {
        Some(path) => save(&result.relation, path)?,
        None => print!("{}", csv::write_string(&result.relation)),
    }
    tspec.finish()
}

/// Runs all four approaches on seeded injections of a complete file and
/// prints the paper-style comparison table.
fn compare_cmd(args: &Args) -> Result<(), String> {
    use renuver::baselines::{DerandConfig, GreyKnnConfig, HolocleanConfig};
    use renuver::eval::{
        average_scores, diff_table, run_variants_budgeted, run_variants_parallel, DerandImputer,
        GreyKnnImputer, HolocleanImputer, Imputer, MetricsDiff, RenuverImputer, WorkMetrics,
    };
    let rel = load(&one_positional(args)?)?;
    if rel.missing_count() > 0 {
        return Err(format!(
            "compare needs a complete instance to inject into; {} has {} missing cells",
            args.positional()[0],
            rel.missing_count()
        ));
    }
    let rate: f64 = args.parse_value("--rate")?.unwrap_or(0.03);
    if !(0.0..=1.0).contains(&rate) {
        return Err("--rate must be in 0..=1".into());
    }
    let n_seeds: u64 = args.parse_value("--seeds")?.unwrap_or(3);
    let seeds: Vec<u64> = (1..=n_seeds).collect();
    let rules = match (args.value("--rules"), args.parse_value::<f64>("--auto-rules")?) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_rules(&text)?
        }
        (None, Some(fraction)) => renuver::eval::auto_rules(&rel, fraction),
        (None, None) => RuleSet::new(),
    };

    eprintln!("discovering metadata...");
    let cfg = discovery_config(args, &rel)?;
    let rfds = discover(&rel, &cfg);
    let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
    eprintln!("{} RFDs, {} DCs", rfds.len(), dcs.len());

    let tspec = TraceSpec::from_args(args);
    let renuver_config = RenuverConfig {
        index_mode: index_mode_from_args(args)?,
        tracer: tspec.tracer.clone(),
        ..RenuverConfig::default()
    };
    let imputers: Vec<Box<dyn Imputer>> = vec![
        Box::new(RenuverImputer::new(renuver_config, rfds.clone())),
        Box::new(DerandImputer::new(DerandConfig::default(), rfds)),
        Box::new(HolocleanImputer::new(HolocleanConfig::default(), dcs)),
        Box::new(GreyKnnImputer::new(GreyKnnConfig::default())),
    ];
    let spec = BudgetSpec::from_args(args)?;
    let metrics_diff = args.has("--metrics-diff");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>10}",
        "approach", "precision", "recall", "F1", "avg time"
    );
    let mut any_tripped = false;
    let mut work_rows: Vec<(String, WorkMetrics)> = Vec::new();
    for imp in &imputers {
        // Budgeted comparisons run serially with a FRESH budget per
        // variant (one tripped deadline must not poison later runs);
        // unbudgeted ones keep the parallel fan-out. Traced comparisons
        // also run serially so the renuver runs' trace events land in
        // seed order instead of interleaving; `--metrics-diff` needs the
        // serial path too, because only it measures work counters.
        let outcomes = if spec.is_limited() || tspec.tracer.is_enabled() || metrics_diff {
            run_variants_budgeted(&rel, &rules, imp.as_ref(), rate, &seeds, &|| {
                tspec.hook_budget(spec.build())
            })
        } else {
            run_variants_parallel(&rel, &rules, imp.as_ref(), rate, &seeds)
        };
        if metrics_diff {
            work_rows.push((imp.name().to_string(), sum_work(&outcomes)));
        }
        let avg = average_scores(&outcomes);
        let marker = if avg.tripped.is_some() { "*" } else { "" };
        any_tripped |= avg.tripped.is_some();
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>8}ms{marker}",
            imp.name(),
            avg.scores.precision,
            avg.scores.recall,
            avg.scores.f1,
            avg.elapsed.as_millis()
        );
    }
    if any_tripped {
        println!("* budget tripped during at least one variant; scores reflect partial repairs");
    }
    if metrics_diff {
        // Per-variant work deltas against the first row (renuver). The
        // statistical baselines do not instrument work counters, so their
        // rows show what renuver spends relative to doing none of it.
        let baseline = work_rows[0].1.clone();
        let rows: Vec<(String, MetricsDiff)> =
            work_rows.iter().map(|(name, w)| (name.clone(), w.diff(&baseline))).collect();
        println!();
        println!("work deltas vs {}:", work_rows[0].0);
        print!("{}", diff_table(&rows));
    }
    tspec.finish()
}

/// Sums the measured work across a variant's seeded runs (runs without
/// work metrics — the statistical baselines — contribute nothing).
fn sum_work(outcomes: &[renuver::eval::RunOutcome]) -> renuver::eval::WorkMetrics {
    let mut total = renuver::eval::WorkMetrics::default();
    for outcome in outcomes {
        let Some(work) = &outcome.work else { continue };
        total.candidates_scored += work.candidates_scored;
        total.verifications += work.verifications;
        total.oracle_hits += work.oracle_hits;
        total.clusters_visited += work.clusters_visited;
        total.imputed += work.imputed;
        for (label, us) in &work.phases {
            match total.phases.iter_mut().find(|(l, _)| l == label) {
                Some((_, t)) => *t += us,
                None => total.phases.push((label.clone(), *us)),
            }
        }
    }
    total
}

/// `renuver tune`: fit per-attribute thresholds against a seeded held-out
/// mask. Accepts either a dataset (RFDs via `--rfds` or discovery) or a
/// prepared `.rnv` model. The iteration table goes to stderr; stdout (or
/// `--out`) carries only the tuned RFD set, so fixed-seed runs can be
/// compared byte-for-byte.
fn tune_cmd(args: &Args) -> Result<(), String> {
    let path = one_positional(args)?;
    let (rel, rfds, fingerprint) = if path.to_ascii_lowercase().ends_with(".rnv") {
        let art = renuver::serve::artifact::load(&path).map_err(|e| format!("{path}: {e}"))?;
        let fingerprint = art.schema_fingerprint;
        let engine = art.into_engine(RenuverConfig::default());
        (engine.relation().clone(), engine.sigma().clone(), fingerprint)
    } else {
        let rel = load(&path)?;
        let rfds = rfds_for_model(args, &rel)?;
        let fingerprint = renuver::serve::artifact::schema_fingerprint(rel.schema());
        (rel, rfds, fingerprint)
    };
    if rfds.is_empty() {
        return Err("no RFDs to tune (empty set)".into());
    }
    let seed: u64 = args
        .parse_value("--seed")?
        .unwrap_or_else(|| renuver::tune::default_seed(fingerprint));
    let rate: f64 = args.parse_value("--rate")?.unwrap_or(0.2);
    if !(rate > 0.0 && rate <= 1.0) {
        return Err("--rate must be in (0, 1]".into());
    }
    let iterations: usize = args.parse_value("--iterations")?.unwrap_or(12);
    if iterations == 0 {
        return Err("--iterations must be at least 1".into());
    }
    let target_f1: f64 = args.parse_value("--target-f1")?.unwrap_or(0.95);
    if !(target_f1 > 0.0 && target_f1 <= 1.0) {
        return Err("--target-f1 must be in (0, 1]".into());
    }
    let step: f64 = args.parse_value("--step")?.unwrap_or(1.0);
    if step <= 0.0 || step.is_nan() {
        return Err("--step must be positive".into());
    }
    let parallelism: usize = args.parse_value("--parallelism")?.unwrap_or(0);
    let rules = match (args.value("--rules"), args.parse_value::<f64>("--auto-rules")?) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_rules(&text)?
        }
        (None, Some(fraction)) => renuver::eval::auto_rules(&rel, fraction),
        (None, None) => RuleSet::new(),
    };
    let spec = BudgetSpec::from_args(args)?;
    let tspec = TraceSpec::from_args(args);
    let cfg = renuver::tune::TuneConfig {
        seed,
        sample_rate: rate,
        max_iters: iterations,
        target_f1,
        step,
        parallelism,
        budget: tspec.hook_budget(spec.build()),
        tracer: tspec.tracer.clone(),
        rules,
        ..renuver::tune::TuneConfig::default()
    };
    eprintln!("tuning with seed {seed}: {} RFDs, sample rate {rate}", rfds.len());
    let report = renuver::tune::tune(&rel, &rfds, &cfg);
    eprintln!(
        "{:>5} {:>9} {:>9} {:>9} {:>11} {:>8} {:>8}  moves",
        "iter", "precision", "recall", "F1", "Δcandidates", "Δverify", "Δoracle"
    );
    for it in &report.iterations {
        let moves: Vec<String> = it
            .moves
            .iter()
            .map(|m| format!("{} {}→{}", rel.schema().name(m.attr), m.old, m.new))
            .collect();
        eprintln!(
            "{:>5} {:>9.3} {:>9.3} {:>9.3} {:>11} {:>8} {:>8}  {}",
            it.iter,
            it.scores.precision,
            it.scores.recall,
            it.scores.f1,
            renuver::eval::diff::signed(it.diff.d_candidates_scored),
            renuver::eval::diff::signed(it.diff.d_verifications),
            renuver::eval::diff::signed(it.diff.d_oracle_hits),
            if moves.is_empty() { "-".to_string() } else { moves.join(", ") },
        );
    }
    eprintln!(
        "stop: {} after {} iterations ({} held-out cells); best F1 {:.3} at iteration {}{}",
        report.stop.label(),
        report.iterations.len(),
        report.masked,
        report.best_f1,
        report.best_iter,
        if report.partial { " — partial result" } else { "" },
    );
    let text = report.tuned.to_text(rel.schema());
    match args.value("--out") {
        Some(out) => {
            std::fs::write(out, &text).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("wrote {} tuned RFDs to {out}", report.tuned.len());
        }
        None => print!("{text}"),
    }
    tspec.finish()
}

fn evaluate_cmd(args: &Args) -> Result<(), String> {
    let original = load(args.value("--original").ok_or("evaluate requires --original")?)?;
    let incomplete =
        load(args.value("--incomplete").ok_or("evaluate requires --incomplete")?)?;
    let imputed = load(args.value("--imputed").ok_or("evaluate requires --imputed")?)?;
    if original.len() != incomplete.len() || original.len() != imputed.len() {
        return Err("the three relations must have the same number of tuples".into());
    }
    let rules = match (args.value("--rules"), args.parse_value::<f64>("--auto-rules")?) {
        (Some(_), Some(_)) => {
            return Err("--rules and --auto-rules are mutually exclusive".into());
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_rules(&text)?
        }
        (None, Some(fraction)) => {
            if !(0.0..=1.0).contains(&fraction) {
                return Err("--auto-rules must be a fraction in 0..=1".into());
            }
            renuver::eval::auto_rules(&original, fraction)
        }
        (None, None) => RuleSet::new(),
    };
    // Ground truth: cells missing in `incomplete` but present in `original`.
    let truth: Vec<(Cell, renuver::data::Value)> = incomplete
        .missing_cells()
        .into_iter()
        .filter(|c| !original.is_missing(c.row, c.col))
        .map(|c| (c, original.value(c.row, c.col).clone()))
        .collect();
    let scores = evaluate(&imputed, &truth, &rules);
    println!("missing:   {}", scores.missing);
    println!("imputed:   {}", scores.imputed);
    println!("correct:   {}", scores.correct);
    println!("precision: {:.3}", scores.precision);
    println!("recall:    {:.3}", scores.recall);
    println!("f1:        {:.3}", scores.f1);
    let rows = renuver::eval::report::attr_breakdown(&imputed, &truth, &rules);
    if !rows.is_empty() {
        println!();
        print!("{}", renuver::eval::report::breakdown_table(&rows));
    }
    Ok(())
}

/// Resolves the RFD set for a model: `--rfds` file if given, otherwise
/// discovery with the command's discovery flags. Shared by `prepare` and
/// `serve`.
fn rfds_for_model(args: &Args, rel: &Relation) -> Result<RfdSet, String> {
    match args.value("--rfds") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            RfdSet::from_text(&text, rel.schema())
        }
        None => {
            let cfg = discovery_config(args, rel)?;
            eprintln!("no --rfds given; discovering with limit {}", cfg.limit);
            Ok(discover(rel, &cfg))
        }
    }
}

fn prepare_cmd(args: &Args) -> Result<(), String> {
    use renuver::serve::artifact;
    let path = one_positional(args)?;
    let rel = load(&path)?;
    let out = args
        .value("-o")
        .or_else(|| args.value("--out"))
        .ok_or("prepare requires -o model.rnv")?;
    let rfds = rfds_for_model(args, &rel)?;
    let config = RenuverConfig {
        index_mode: index_mode_from_args(args)?,
        ..RenuverConfig::default()
    };
    let (engine, build_time, _) = renuver::budget::measure(|| {
        renuver::core::Engine::prepare(rel, rfds, config)
    });
    // A freshly prepared model starts at durable sequence 0; `ingest`
    // advances it one WAL record at a time from there.
    let bytes = artifact::encode_engine(&engine, &path, 0);
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {out}: {} tuples, {} RFDs, {}{} (built in {})",
        engine.donor_rows(),
        engine.sigma().len(),
        if engine.index().is_some() { "indexed, " } else { "" },
        renuver::budget::format_bytes(bytes.len()),
        renuver::budget::format_duration(build_time),
    );
    // `--shards N` additionally writes the sharded layout (per-shard
    // snapshots + routing manifest) beside the model, so `serve --wal
    // --shards N` starts without re-partitioning.
    if let Some(n) = args.parse_value::<usize>("--shards")? {
        if n == 0 {
            return Err("--shards must be at least 1".into());
        }
        let layout = renuver::serve::ShardLayout::beside(out);
        let rows =
            renuver::serve::Registry::prepare_layout(engine.relation(), engine.sigma(), n, &layout, &path, 0)
                .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {n}-shard layout beside {out}: rows per shard {rows:?}");
    }
    Ok(())
}

fn inspect_cmd(args: &Args) -> Result<(), String> {
    use renuver::serve::artifact;
    let path = one_positional(args)?;
    let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
    let info = artifact::inspect(&bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("artifact: {path}");
    println!("  format:      v{}", info.version);
    println!("  fingerprint: {:#018x}", info.schema_fingerprint);
    println!("  source:      {}", info.source);
    println!("  size:        {}", renuver::budget::format_bytes(info.bytes));
    println!("  tuples:      {}", info.rows);
    println!("  rfds:        {}", info.rfds);
    println!("  index:       {}", if info.indexed { "snapshotted" } else { "none" });
    println!("  seq:         {}", info.committed_seq);
    // A sibling WAL means the snapshot may be behind the durable state;
    // `ingest`/`serve --wal` replays it, `--compact` folds it back in.
    let wal_path = format!("{path}.wal");
    if let Ok(meta) = std::fs::metadata(&wal_path) {
        println!(
            "  wal:         {wal_path} ({})",
            renuver::budget::format_bytes(meta.len() as usize)
        );
    }
    println!("  schema:      ({} attributes)", info.arity);
    for (name, ty) in &info.attrs {
        println!("    {name}: {ty}");
    }
    Ok(())
}

/// Compaction-threshold overrides shared by `ingest` and `serve --wal`.
/// The WAL lives beside the snapshot (`<model>.rnv.wal`); the snapshot
/// provenance string is carried forward into compacted rewrites.
fn durability_options(
    args: &Args,
    model_path: &str,
    source: &str,
) -> Result<renuver::serve::DurabilityOptions, String> {
    let mut opts = renuver::serve::DurabilityOptions::beside(model_path, source);
    if let Some(mb) = args.parse_value::<u64>("--compact-bytes-mb")? {
        opts.compact_bytes = mb.saturating_mul(1024 * 1024);
    }
    if let Some(n) = args.parse_value::<u64>("--compact-records")? {
        opts.compact_records = n;
    }
    Ok(opts)
}

/// Flight-recorder knobs for `serve` (`--log-out`, `--slow-threshold-ms`,
/// `--trace-max-events`, `--no-flight`).
fn flight_options(args: &Args) -> Result<renuver::serve::FlightOptions, String> {
    let defaults = renuver::serve::FlightOptions::default();
    let log = match args.value("--log-out") {
        Some(path) => {
            Some(renuver::obs::EventLog::create(path).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    Ok(renuver::serve::FlightOptions {
        enabled: !args.has("--no-flight"),
        log,
        slow_threshold_ms: args
            .parse_value("--slow-threshold-ms")?
            .unwrap_or(defaults.slow_threshold_ms),
        trace_max_events: args
            .parse_value("--trace-max-events")?
            .unwrap_or(defaults.trace_max_events),
    })
}

/// The event log for CLI commands that have no server `Ctx` (`ingest
/// --log-out`): lifecycle lines are appended directly.
fn cli_event_log(args: &Args) -> Result<Option<renuver::obs::EventLog>, String> {
    match args.value("--log-out") {
        Some(path) => Ok(Some(
            renuver::obs::EventLog::create(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => Ok(None),
    }
}

/// Appends one `server_event` line to a CLI event log, if one is open.
fn cli_event(
    log: &Option<renuver::obs::EventLog>,
    event: &'static str,
    seq: u64,
    detail: Option<String>,
) {
    use renuver::obs::schema::SERVE_SCHEMA_VERSION;
    use renuver::obs::FieldValue;
    if let Some(log) = log {
        let mut fields = vec![
            ("v", FieldValue::U64(SERVE_SCHEMA_VERSION)),
            ("event", FieldValue::Str(event)),
            ("seq", FieldValue::U64(seq)),
        ];
        if let Some(d) = detail {
            fields.push(("detail", FieldValue::Text(d)));
        }
        log.append("server_event", fields);
    }
}

/// Repairs one batch against a prepared model and commits it durably.
///
/// The ordering is the whole point: the repaired tuples are fsynced
/// into the model's WAL *before* they are folded into the in-memory
/// relation/oracle/index and before anything is printed. A crash at
/// any step leaves a state the next `ingest` or `serve --wal` run
/// recovers from — either the batch is fully present or fully absent,
/// never half-applied. (The fault-injection matrix in
/// `tests/wal_recovery.rs` kills this command at every crash point and
/// checks exactly that.)
fn ingest_cmd(args: &Args) -> Result<(), String> {
    use renuver::data::{AttrType, Value};
    use renuver::serve::{artifact, Durable};
    let (model_path, batch_path) = match args.positional() {
        [m, b] => (*m, *b),
        other => {
            return Err(format!(
                "ingest needs a model and a batch (renuver ingest model.rnv batch.csv), got {} positionals",
                other.len()
            ))
        }
    };
    if !model_path.to_ascii_lowercase().ends_with(".rnv") {
        return Err(format!(
            "{model_path}: ingest commits into a prepared artifact (.rnv); run `renuver prepare` first"
        ));
    }
    // A sharded layout (written by `prepare --shards` or `serve --shards
    // --wal`) announces itself with a manifest beside the artifact; the
    // batch then commits through the registry so every shard WAL sees it.
    let shard_layout = renuver::serve::ShardLayout::beside(model_path);
    if shard_layout.manifest().exists() {
        return ingest_sharded_cmd(args, model_path, batch_path, shard_layout);
    }
    let loaded = artifact::load(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let snapshot_seq = loaded.committed_seq;
    let source = loaded.source.clone();
    let config = RenuverConfig {
        index_mode: if loaded.index.is_some() { IndexMode::Indexed } else { IndexMode::Scan },
        ..RenuverConfig::default()
    };
    let mut engine = loaded.into_engine(config);
    let opts = durability_options(args, model_path, &source)?;
    let event_log = cli_event_log(args)?;
    let (mut durable, report) =
        Durable::recover(&mut engine, snapshot_seq, opts).map_err(|e| format!("{model_path}: {e}"))?;
    cli_event(
        &event_log,
        "recovery",
        report.seq,
        Some(format!("replayed {} record(s), {} rows", report.replayed, report.rows)),
    );
    if report.replayed > 0 {
        eprintln!(
            "recovered {} wal record(s), {} rows; model is at seq {}",
            report.replayed, report.rows, report.seq
        );
    }

    let batch = load(batch_path)?;
    let names: Vec<&str> = batch.schema().attrs().map(|a| a.name.as_str()).collect();
    let expected: Vec<&str> = engine.schema().attrs().map(|a| a.name.as_str()).collect();
    if names != expected {
        return Err(format!(
            "{batch_path}: header {names:?} does not match the model schema {expected:?}"
        ));
    }
    // The batch header may omit type annotations (columns read as text);
    // coerce to the model's types, same leniency as `/v1/ingest` CSV.
    let tuples: Vec<renuver::data::Tuple> = batch
        .tuples()
        .map(|t| {
            t.iter()
                .enumerate()
                .map(|(col, v)| {
                    let ty = engine.schema().ty(col);
                    match (v, ty) {
                        (Value::Null, _) => Value::Null,
                        (Value::Text(_), AttrType::Text)
                        | (Value::Int(_), AttrType::Int)
                        | (Value::Float(_), AttrType::Float)
                        | (Value::Bool(_), AttrType::Bool) => v.clone(),
                        (Value::Int(n), AttrType::Float) => Value::Float(*n as f64),
                        _ => Value::parse(&v.render(), ty),
                    }
                })
                .collect()
        })
        .collect();

    let config = engine.config().clone();
    let result = engine
        .impute_batch_with(tuples, &config)
        .map_err(|e| format!("{batch_path}: {e}"))?;
    let seq = durable
        .append(&result.tuples)
        .map_err(|e| format!("wal append failed, nothing committed: {e}"))?;
    let stats = engine
        .commit_tuples(result.tuples.clone())
        .map_err(|e| format!("commit failed after wal append; the next run replays seq {seq}: {e}"))?;
    eprintln!(
        "seq {seq}: imputed {}/{} missing cells, committed {} row(s) ({} donors total{})",
        result.stats.imputed,
        result.stats.missing_total,
        stats.rows,
        stats.donors,
        if stats.dict_grown > 0 {
            format!(", dictionary grew by {}", stats.dict_grown)
        } else {
            String::new()
        },
    );
    if args.has("--compact") || durable.should_compact() {
        let folded = durable.compact(&engine).map_err(|e| e.to_string())?;
        cli_event(&event_log, "compaction", folded, None);
        eprintln!("compacted: snapshot rewritten at seq {folded}, wal truncated");
    }
    let repaired = Relation::new(engine.schema().clone(), result.tuples.clone())
        .map_err(|e| e.to_string())?;
    match args.value("--out") {
        Some(path) => save(&repaired, path),
        None => {
            print!("{}", csv::write_string(&repaired));
            Ok(())
        }
    }
}

/// `ingest` against a sharded layout: recover the registry (replaying
/// every shard WAL), commit the batch through it — the repaired rows
/// are fsynced into *every* healthy shard log before anything prints —
/// and optionally fold the logs into fresh shard snapshots.
fn ingest_sharded_cmd(
    args: &Args,
    model_path: &str,
    batch_path: &str,
    layout: renuver::serve::ShardLayout,
) -> Result<(), String> {
    use renuver::data::{AttrType, Value};
    use renuver::serve::{artifact, Registry};
    let loaded = artifact::load(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let source = loaded.source.clone();
    let config = RenuverConfig {
        index_mode: if loaded.index.is_some() { IndexMode::Indexed } else { IndexMode::Scan },
        ..RenuverConfig::default()
    };
    let opts = durability_options(args, model_path, &source)?;
    let (registry, report) = Registry::open_durable(
        loaded,
        config.clone(),
        1, // the manifest's shard count wins over this placeholder
        layout,
        &source,
        opts.compact_bytes,
        opts.compact_records,
    )
    .map_err(|e| format!("{model_path}: {e}"))?;
    let event_log = cli_event_log(args)?;
    cli_event(
        &event_log,
        "recovery",
        report.seq,
        Some(format!("replayed {} record(s), {} rows", report.replayed, report.rows)),
    );
    if report.replayed > 0 || !report.degraded.is_empty() {
        eprintln!(
            "recovered {} wal record(s), {} rows; sharded model is at seq {}{}",
            report.replayed,
            report.rows,
            report.seq,
            if report.degraded.is_empty() {
                String::new()
            } else {
                format!("; degraded shards {:?}", report.degraded)
            },
        );
    }
    let snap = registry.snapshot();
    let schema = snap.schema().clone();
    drop(snap);

    let batch = load(batch_path)?;
    let names: Vec<&str> = batch.schema().attrs().map(|a| a.name.as_str()).collect();
    let expected: Vec<&str> = schema.attrs().map(|a| a.name.as_str()).collect();
    if names != expected {
        return Err(format!(
            "{batch_path}: header {names:?} does not match the model schema {expected:?}"
        ));
    }
    let tuples: Vec<renuver::data::Tuple> = batch
        .tuples()
        .map(|t| {
            t.iter()
                .enumerate()
                .map(|(col, v)| {
                    let ty = schema.ty(col);
                    match (v, ty) {
                        (Value::Null, _) => Value::Null,
                        (Value::Text(_), AttrType::Text)
                        | (Value::Int(_), AttrType::Int)
                        | (Value::Float(_), AttrType::Float)
                        | (Value::Bool(_), AttrType::Bool) => v.clone(),
                        (Value::Int(n), AttrType::Float) => Value::Float(*n as f64),
                        _ => Value::parse(&v.render(), ty),
                    }
                })
                .collect()
        })
        .collect();

    let outcome = registry
        .ingest(tuples, &config)
        .map_err(|e| format!("{batch_path}: {e}"))?;
    eprintln!(
        "seq {}: imputed {}/{} missing cells, committed {} row(s) across {} shard(s) ({} donors total)",
        outcome.seq,
        outcome.batch.stats.imputed,
        outcome.batch.stats.missing_total,
        outcome.committed_rows,
        registry.n_shards(),
        outcome.donor_rows,
    );
    if args.has("--compact") || outcome.wants_compact {
        let folded = registry.compact().map_err(|e| e.to_string())?;
        cli_event(&event_log, "compaction", folded, None);
        eprintln!(
            "compacted: {} shard snapshot(s) rewritten at seq {folded}, wals truncated",
            registry.n_shards()
        );
    }
    let repaired =
        Relation::new(schema, outcome.batch.tuples.clone()).map_err(|e| e.to_string())?;
    match args.value("--out") {
        Some(path) => save(&repaired, path),
        None => {
            print!("{}", csv::write_string(&repaired));
            Ok(())
        }
    }
}

/// The artifact's committed sequence number and provenance string —
/// present only for `.rnv` models (a dataset-built engine has no
/// snapshot to compact into).
type DurabilitySeed = Option<(u64, String)>;

/// Builds the serving engine from either an `.rnv` artifact or a raw
/// dataset (discovering RFDs and building the oracle/index in-process).
fn serve_engine(
    args: &Args,
    path: &str,
) -> Result<(renuver::core::Engine, renuver::serve::ModelInfo, DurabilitySeed), String> {
    use renuver::serve::artifact;
    if path.to_ascii_lowercase().ends_with(".rnv") {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let loaded = artifact::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
        let info = renuver::serve::ModelInfo {
            source: format!("{path} ({})", loaded.source),
            schema_fingerprint: loaded.schema_fingerprint,
            artifact_bytes: bytes.len(),
        };
        let seed = (loaded.committed_seq, loaded.source.clone());
        let config = RenuverConfig {
            // The artifact dictates whether an index exists; `Auto` would
            // lie about a model snapshotted without one.
            index_mode: if loaded.index.is_some() {
                IndexMode::Indexed
            } else {
                IndexMode::Scan
            },
            ..RenuverConfig::default()
        };
        Ok((loaded.into_engine(config), info, Some(seed)))
    } else {
        let rel = load(path)?;
        let rfds = rfds_for_model(args, &rel)?;
        let fingerprint = renuver::serve::artifact::schema_fingerprint(rel.schema());
        let config = RenuverConfig {
            index_mode: index_mode_from_args(args)?,
            ..RenuverConfig::default()
        };
        let engine = renuver::core::Engine::prepare(rel, rfds, config);
        let info = renuver::serve::ModelInfo {
            source: path.to_string(),
            schema_fingerprint: fingerprint,
            artifact_bytes: 0,
        };
        Ok((engine, info, None))
    }
}

/// Prints the startup handshake's second line. The e2e harness reads
/// exactly two stdout lines — the `listening on` banner, then this —
/// instead of polling `/healthz`, so startup is retry-free.
fn print_ready(state: &str, seq: u64) {
    use std::io::Write as _;
    println!("ready state={state} seq={seq}");
    let _ = std::io::stdout().flush();
}

fn serve_cmd(args: &Args) -> Result<(), String> {
    use renuver::serve::{
        install_signal_handlers, Ctx, Durable, Registry, ServeConfig, ServeState, Server,
        ShardLayout,
    };
    let path = one_positional(args)?;
    let shards: usize = args.parse_value("--shards")?.unwrap_or(0);
    let default_timeout_ms: Option<u64> = args.parse_value("--default-timeout-ms")?;
    let max_timeout_ms: u64 = args.parse_value("--max-timeout-ms")?.unwrap_or(60_000);
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: args.value("--addr").unwrap_or("127.0.0.1:7171").to_string(),
        workers: args.parse_value("--workers")?.unwrap_or(4),
        queue: args.parse_value("--queue")?.unwrap_or(64),
        max_body: args
            .parse_value::<usize>("--max-body-mb")?
            .unwrap_or(4)
            .saturating_mul(1024 * 1024),
        read_timeout_secs: args
            .parse_value("--read-timeout-secs")?
            .unwrap_or(defaults.read_timeout_secs),
        ..defaults
    };

    if shards > 0 {
        // Sharded topology: recovery is synchronous (the registry must be
        // whole before the first request), so the ready line follows the
        // banner immediately.
        let is_artifact = path.to_ascii_lowercase().ends_with(".rnv");
        let (registry, info, report) = if is_artifact {
            use renuver::serve::artifact;
            let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
            let loaded = artifact::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
            let info = renuver::serve::ModelInfo {
                source: format!("{path} ({})", loaded.source),
                schema_fingerprint: loaded.schema_fingerprint,
                artifact_bytes: bytes.len(),
            };
            let source = loaded.source.clone();
            let core_config = RenuverConfig {
                index_mode: if loaded.index.is_some() { IndexMode::Indexed } else { IndexMode::Scan },
                ..RenuverConfig::default()
            };
            if args.has("--wal") {
                let opts = durability_options(args, &path, &source)?;
                let (registry, report) = Registry::open_durable(
                    loaded,
                    core_config,
                    shards,
                    ShardLayout::beside(&path),
                    &source,
                    opts.compact_bytes,
                    opts.compact_records,
                )
                .map_err(|e| format!("{path}: {e}"))?;
                (registry, info, Some(report))
            } else {
                let registry =
                    Registry::build(&loaded.relation, loaded.rfds, core_config, shards);
                (registry, info, None)
            }
        } else {
            if args.has("--wal") {
                return Err(
                    "--wal needs a .rnv artifact to compact into; run `renuver prepare` first"
                        .into(),
                );
            }
            let rel = load(&path)?;
            let rfds = rfds_for_model(args, &rel)?;
            let info = renuver::serve::ModelInfo {
                source: path.to_string(),
                schema_fingerprint: renuver::serve::artifact::schema_fingerprint(rel.schema()),
                artifact_bytes: 0,
            };
            let core_config = RenuverConfig {
                index_mode: index_mode_from_args(args)?,
                ..RenuverConfig::default()
            };
            (Registry::build(&rel, rfds, core_config, shards), info, None)
        };
        if let Some(report) = &report {
            if report.replayed > 0 || !report.degraded.is_empty() {
                eprintln!(
                    "wal: replayed {} record(s), {} rows across {} shard(s); seq {}{}{}",
                    report.replayed,
                    report.rows,
                    registry.n_shards(),
                    report.seq,
                    if report.normalized { ", snapshots normalized" } else { "" },
                    if report.degraded.is_empty() {
                        String::new()
                    } else {
                        format!("; degraded shards {:?}", report.degraded)
                    },
                );
            }
        }
        let snap = registry.snapshot();
        let (rows, rfds) = (snap.rows(), snap.sigma.len());
        drop(snap);
        let mut ctx = Ctx::new_sharded(registry, info, default_timeout_ms, max_timeout_ms);
        ctx.set_flight(flight_options(args)?);
        let ctx = std::sync::Arc::new(ctx);
        if let Some(report) = &report {
            ctx.server_event("recovery", vec![
                ("seq", renuver::obs::FieldValue::U64(report.seq)),
                (
                    "detail",
                    renuver::obs::FieldValue::Text(format!(
                        "replayed {} record(s), {} rows",
                        report.replayed, report.rows
                    )),
                ),
            ]);
            for &k in &report.degraded {
                ctx.server_event("shard_degraded", vec![(
                    "shard",
                    renuver::obs::FieldValue::U64(k as u64),
                )]);
            }
        }
        if is_artifact {
            ctx.set_model_path(std::path::PathBuf::from(&path));
        }
        install_signal_handlers();
        let server = Server::bind(config, ctx.clone()).map_err(|e| e.to_string())?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        println!("listening on {addr} ({rows} tuples, {rfds} RFDs)");
        print_ready(ctx.state().label(), ctx.seq());
        let shed = server.run().map_err(|e| e.to_string())?;
        println!("shutdown complete ({shed} connections shed)");
        return Ok(());
    }

    let (engine, info, durability) = serve_engine(args, &path)?;
    let rows = engine.donor_rows();
    let rfds = engine.sigma().len();
    let mut ctx = Ctx::new(engine, info, default_timeout_ms, max_timeout_ms);
    ctx.set_flight(flight_options(args)?);
    let ctx = std::sync::Arc::new(ctx);
    if path.to_ascii_lowercase().ends_with(".rnv") {
        ctx.set_model_path(std::path::PathBuf::from(&path));
    }

    // `--wal` arms the durable write path: the server binds immediately
    // (healthz answers `"state":"recovering"`, ingest answers 503) and a
    // background thread replays the WAL before flipping the state to ok
    // and printing the ready line.
    let recovery = if args.has("--wal") {
        let Some((snapshot_seq, source)) = durability else {
            return Err(
                "--wal needs a .rnv artifact to compact into; run `renuver prepare` first".into(),
            );
        };
        let opts = durability_options(args, &path, &source)?;
        ctx.set_state(ServeState::Recovering);
        Some((snapshot_seq, opts))
    } else {
        None
    };

    install_signal_handlers();
    let server = Server::bind(config, ctx.clone()).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The e2e harness reads stdout for this line; flush so a piped
    // stdout does not buffer it past the first request.
    println!("listening on {addr} ({rows} tuples, {rfds} RFDs)");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match recovery {
        Some((snapshot_seq, opts)) => {
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                // Replay holds the engine lock, so read requests queue behind
                // it briefly; ingest is refused by the state gate either way.
                let mut engine = ctx.lock_engine();
                match Durable::recover(&mut engine, snapshot_seq, opts) {
                    Ok((durable, report)) => {
                        drop(engine);
                        eprintln!(
                            "wal: replayed {} record(s), {} rows; durable at seq {}",
                            report.replayed, report.rows, report.seq
                        );
                        ctx.install_durable(durable);
                        ctx.server_event("recovery", vec![
                            ("seq", renuver::obs::FieldValue::U64(report.seq)),
                            (
                                "detail",
                                renuver::obs::FieldValue::Text(format!(
                                    "replayed {} record(s), {} rows",
                                    report.replayed, report.rows
                                )),
                            ),
                        ]);
                    }
                    Err(e) => {
                        drop(engine);
                        eprintln!("wal: recovery failed, serving reads only (state degraded): {e}");
                        ctx.set_state(ServeState::Degraded);
                    }
                }
                print_ready(ctx.state().label(), ctx.seq());
            });
        }
        None => print_ready(ctx.state().label(), ctx.seq()),
    }
    let shed = server.run().map_err(|e| e.to_string())?;
    println!("shutdown complete ({shed} connections shed)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn positionals_survive_boolean_flags() {
        let raw = strings(&["--summary", "data.csv", "--out", "rfds.txt"]);
        let args = Args::parse(&raw, &["--out"], &["--summary"]).unwrap();
        assert_eq!(args.positional(), ["data.csv"]);
        assert_eq!(args.value("--out"), Some("rfds.txt"));
        assert!(args.has("--summary"));
    }

    #[test]
    fn unknown_flags_are_rejected_not_swallowed() {
        // The old parser assumed every unknown flag took a value, silently
        // eating the positional that followed it. Now it is a hard error.
        let raw = strings(&["--bogus", "data.csv"]);
        let err = Args::parse(&raw, &["--out"], &["--summary"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn value_flag_at_end_reports_missing_value() {
        let raw = strings(&["data.csv", "--out"]);
        let err = Args::parse(&raw, &["--out"], &[]).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn unknown_command_lists_the_valid_ones() {
        let err = run(&strings(&["imptue", "data.csv"])).unwrap_err();
        assert!(err.contains("unknown command \"imptue\""), "{err}");
        for cmd in [
            "stats", "audit", "discover", "inject", "impute", "evaluate", "compare", "tune",
            "prepare", "inspect", "ingest", "serve",
        ] {
            assert!(err.contains(cmd), "missing {cmd} in: {err}");
        }
    }

    #[test]
    fn trace_flags_belong_to_the_pipeline_commands() {
        // Accepted (parse gets past the flag vocabulary; the commands then
        // fail on the nonexistent input file, not on the flags).
        for cmd in ["discover", "impute", "compare", "tune"] {
            let err =
                run(&strings(&[cmd, "no-such.csv", "--trace-out", "t.jsonl", "--metrics"]))
                    .unwrap_err();
            assert!(err.contains("no-such.csv"), "{cmd}: {err}");
        }
        // Rejected everywhere else.
        let err = run(&strings(&["stats", "x.csv", "--metrics"])).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
        let err = run(&strings(&["inject", "x.csv", "--trace-out", "t.jsonl"])).unwrap_err();
        assert!(err.contains("--trace-out"), "{err}");
    }

    #[test]
    fn trace_spec_enables_the_tracer_only_when_asked() {
        let raw = strings(&["x.csv"]);
        let args = Args::parse(&raw, &["--trace-out"], &["--metrics"]).unwrap();
        assert!(!TraceSpec::from_args(&args).tracer.is_enabled());

        let raw = strings(&["x.csv", "--metrics"]);
        let args = Args::parse(&raw, &["--trace-out"], &["--metrics"]).unwrap();
        let tspec = TraceSpec::from_args(&args);
        assert!(tspec.tracer.is_enabled());
        assert!(tspec.out.is_none());

        // A hooked budget forwards its first trip into the trace.
        let budget = tspec.hook_budget(renuver::budget::Budget::unlimited().with_ops_limit(1));
        assert!(budget.check("cli::test").is_ok());
        assert!(budget.check("cli::test").is_err());
        let jsonl = tspec.tracer.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"budget_trip\""), "{jsonl}");
        assert!(jsonl.contains("\"trip\":\"ops\""), "{jsonl}");
    }

    #[test]
    fn run_rejects_unknown_flag_per_command() {
        // `--summary` belongs to discover, not stats.
        let err = run(&strings(&["stats", "x.csv", "--summary"])).unwrap_err();
        assert!(err.contains("--summary"), "{err}");
        // Budget flags are valid on discover/impute/compare only.
        let err = run(&strings(&["inject", "x.csv", "--ops-limit", "9"])).unwrap_err();
        assert!(err.contains("--ops-limit"), "{err}");
    }

    #[test]
    fn index_mode_flag_parses_the_three_modes() {
        for (given, want) in [
            (None, IndexMode::Auto),
            (Some("auto"), IndexMode::Auto),
            (Some("scan"), IndexMode::Scan),
            (Some("indexed"), IndexMode::Indexed),
        ] {
            let raw = match given {
                Some(v) => strings(&["x.csv", "--index-mode", v]),
                None => strings(&["x.csv"]),
            };
            let args = Args::parse(&raw, &["--index-mode"], &[]).unwrap();
            assert_eq!(index_mode_from_args(&args).unwrap(), want);
        }
        let raw = strings(&["x.csv", "--index-mode", "turbo"]);
        let args = Args::parse(&raw, &["--index-mode"], &[]).unwrap();
        let err = index_mode_from_args(&args).unwrap_err();
        assert!(err.contains("turbo"), "{err}");
    }

    #[test]
    fn budget_spec_builds_limited_budgets() {
        let raw = strings(&["x.csv", "--timeout-secs", "2.5", "--ops-limit", "100"]);
        let mut values = vec![];
        values.extend(BUDGET_VALUE_FLAGS);
        let args = Args::parse(&raw, &values, &[]).unwrap();
        let spec = BudgetSpec::from_args(&args).unwrap();
        assert!(spec.is_limited());
        assert!(spec.build().is_limited());
        // Each build() call returns an independent handle.
        let a = spec.build();
        a.cancel();
        assert!(!spec.build().is_cancelled());
    }

    #[test]
    fn budget_spec_rejects_bad_values() {
        let raw = strings(&["x.csv", "--timeout-secs", "-1"]);
        let mut values = vec![];
        values.extend(BUDGET_VALUE_FLAGS);
        let args = Args::parse(&raw, &values, &[]).unwrap();
        assert!(BudgetSpec::from_args(&args).is_err());
        let raw = strings(&["x.csv", "--ops-limit", "lots"]);
        let args = Args::parse(&raw, &values, &[]).unwrap();
        assert!(BudgetSpec::from_args(&args).is_err());
    }
}
