//! RFD satisfaction, violation enumeration, and key-RFD detection.

use renuver_data::Relation;
use renuver_distance::{DistanceOracle, SimilarityIndex};

use crate::model::Rfd;

/// `true` iff the pair `(i, j)` satisfies every LHS constraint of `rfd`:
/// both values present and within the threshold on each LHS attribute.
/// Distances go through the oracle's per-column cache.
#[inline]
pub fn pair_satisfies_lhs_with(
    oracle: &DistanceOracle,
    rel: &Relation,
    rfd: &Rfd,
    i: usize,
    j: usize,
) -> bool {
    rfd.lhs()
        .iter()
        .all(|c| oracle.distance_bounded(rel, c.attr, i, j, c.threshold).is_some())
}

/// Cache-free convenience wrapper around [`pair_satisfies_lhs_with`].
#[inline]
pub fn pair_satisfies_lhs(rel: &Relation, rfd: &Rfd, i: usize, j: usize) -> bool {
    pair_satisfies_lhs_with(&DistanceOracle::direct(rel), rel, rfd, i, j)
}

/// `true` iff the pair `(i, j)` satisfies the RHS constraint of `rfd`.
/// A pair with a missing RHS value cannot be evaluated and counts as
/// satisfying (it cannot witness a violation).
#[inline]
pub fn pair_satisfies_rhs_with(
    oracle: &DistanceOracle,
    rel: &Relation,
    rfd: &Rfd,
    i: usize,
    j: usize,
) -> bool {
    let c = rfd.rhs();
    if rel.value(i, c.attr).is_null() || rel.value(j, c.attr).is_null() {
        return true;
    }
    oracle.distance_bounded(rel, c.attr, i, j, c.threshold).is_some()
}

/// Cache-free convenience wrapper around [`pair_satisfies_rhs_with`].
#[inline]
pub fn pair_satisfies_rhs(rel: &Relation, rfd: &Rfd, i: usize, j: usize) -> bool {
    pair_satisfies_rhs_with(&DistanceOracle::direct(rel), rel, rfd, i, j)
}

/// `true` iff the pair `(i, j)` violates `rfd`: LHS-similar but RHS-distant.
#[inline]
pub fn pair_violates(rel: &Relation, rfd: &Rfd, i: usize, j: usize) -> bool {
    pair_satisfies_lhs(rel, rfd, i, j) && !pair_satisfies_rhs(rel, rfd, i, j)
}

/// `r ⊨ φ`: no tuple pair violates the dependency (Definition 3.2).
pub fn holds(rel: &Relation, rfd: &Rfd) -> bool {
    let n = rel.len();
    for i in 0..n {
        for j in (i + 1)..n {
            if pair_violates(rel, rfd, i, j) {
                return false;
            }
        }
    }
    true
}

/// All violating pairs `(i, j)` with `i < j`.
pub fn violations(rel: &Relation, rfd: &Rfd) -> Vec<(usize, usize)> {
    let n = rel.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if pair_violates(rel, rfd, i, j) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Key-RFD test (Definition 3.4): `φ` is a key iff no pair of distinct
/// tuples satisfies all its LHS constraints. (The "φ holds" part of the
/// definition is then vacuous: with no LHS-similar pair there is nothing to
/// violate.) A pair with a missing value on an LHS attribute never
/// satisfies the LHS.
///
/// Note: the paper's Example 5.2 classifies
/// `φ1: Name(≤8), Phone(≤0), Class(≤1) → Type(≤0)` as a key on the Table 2
/// sample; under plain Levenshtein distance the pair `(t5, t6)` actually
/// satisfies that LHS (Name distance 7, identical phones, equal Class), so
/// the example does not follow from Definition 3.4 as stated. We implement
/// the definition literally — the alternative readings we tried
/// (ignoring pairs with missing RHS values or with any incomplete tuple)
/// each contradict a *different* part of the paper: they would classify
/// `φ6: Name(≤6), City(≤9) → Phone(≤0)` as a key too, yet Figure 1 keeps
/// φ6 in Σ' and drives its whole walk-through with it.
pub fn is_key(rel: &Relation, rfd: &Rfd) -> bool {
    is_key_with(&DistanceOracle::direct(rel), rel, rfd)
}

/// [`is_key`] with a shared distance oracle (the hot path inside RENUVER's
/// pre-processing).
///
/// RFDs whose LHS includes a zero-threshold constraint take an exact fast
/// path: `δ ≤ 0` means equality for every distance function in use, so
/// only pairs *within an equality bucket* of that attribute can satisfy
/// the LHS — `Σ bucket²` pairs instead of `n²`. Everything else falls back
/// to the full pair scan.
pub fn is_key_with(oracle: &DistanceOracle, rel: &Relation, rfd: &Rfd) -> bool {
    let n = rel.len();
    if let Some(eq) = rfd.lhs().iter().find(|c| c.threshold == 0.0) {
        // Bucket rows by the exact value of the zero-threshold attribute;
        // rows with a missing value can never satisfy the LHS.
        let mut buckets: std::collections::HashMap<String, Vec<usize>> =
            std::collections::HashMap::new();
        for row in 0..n {
            let v = rel.value(row, eq.attr);
            if !v.is_null() {
                buckets.entry(v.render()).or_default().push(row);
            }
        }
        for rows in buckets.values() {
            for (a, &i) in rows.iter().enumerate() {
                for &j in &rows[a + 1..] {
                    if pair_satisfies_lhs_with(oracle, rel, rfd, i, j) {
                        return false;
                    }
                }
            }
        }
        return true;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if pair_satisfies_lhs_with(oracle, rel, rfd, i, j) {
                return false;
            }
        }
    }
    true
}

/// [`is_key_with`] accelerated by a [`SimilarityIndex`]: instead of the
/// `O(n²)` pair scan, each row queries the index on one LHS attribute and
/// exact-checks only the returned neighborhood (a superset of the rows
/// within that constraint — see the index's superset contract, which makes
/// the verdict identical to the scan's). Falls back to [`is_key_with`]
/// when no LHS attribute is indexed; the zero-threshold bucket fast path
/// is kept, it is already sub-quadratic.
pub fn is_key_with_index(
    oracle: &DistanceOracle,
    index: Option<&SimilarityIndex>,
    rel: &Relation,
    rfd: &Rfd,
) -> bool {
    let probe = match index {
        Some(ix) if !rfd.lhs().iter().any(|c| c.threshold == 0.0) => {
            rfd.lhs().iter().find(|c| ix.is_indexed(c.attr)).map(|c| (ix, c))
        }
        _ => None,
    };
    let Some((ix, probe)) = probe else {
        return is_key_with(oracle, rel, rfd);
    };
    for i in 0..rel.len() {
        match ix.rows_within(rel, probe.attr, i, probe.threshold) {
            Some(neighbors) => {
                for j in neighbors {
                    if j > i && pair_satisfies_lhs_with(oracle, rel, rfd, i, j) {
                        return false;
                    }
                }
            }
            // The index declined to prune for this row's value (weak
            // selectivity); scan its pairs directly.
            None => {
                for j in i + 1..rel.len() {
                    if pair_satisfies_lhs_with(oracle, rel, rfd, i, j) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Incremental key test after tuple `row` changed: `φ` stays a key iff no
/// pair *involving `row`* satisfies the LHS (pairs not involving `row` were
/// already checked when `φ` was classified). Used by RENUVER's
/// post-imputation re-evaluation (Algorithm 1 line 14, Example 5.1).
pub fn stays_key_after_update(rel: &Relation, rfd: &Rfd, row: usize) -> bool {
    stays_key_after_update_with(&DistanceOracle::direct(rel), rel, rfd, row)
}

/// [`stays_key_after_update`] with a shared distance oracle.
pub fn stays_key_after_update_with(
    oracle: &DistanceOracle,
    rel: &Relation,
    rfd: &Rfd,
    row: usize,
) -> bool {
    (0..rel.len())
        .all(|j| j == row || !pair_satisfies_lhs_with(oracle, rel, rfd, row.min(j), row.max(j)))
}

/// [`stays_key_after_update_with`] accelerated by a [`SimilarityIndex`]:
/// only the index-retrieved neighborhood of the changed row on one indexed
/// LHS attribute is exact-checked (same verdict — any LHS-satisfying pair
/// is within every LHS constraint, hence inside the queried superset).
pub fn stays_key_after_update_with_index(
    oracle: &DistanceOracle,
    index: Option<&SimilarityIndex>,
    rel: &Relation,
    rfd: &Rfd,
    row: usize,
) -> bool {
    if let Some(ix) = index {
        if let Some(probe) = rfd.lhs().iter().find(|c| ix.is_indexed(c.attr)) {
            if let Some(neighbors) = ix.rows_within(rel, probe.attr, row, probe.threshold)
            {
                return neighbors.into_iter().all(|j| {
                    j == row
                        || !pair_satisfies_lhs_with(oracle, rel, rfd, row.min(j), row.max(j))
                });
            }
        }
    }
    stays_key_after_update_with(oracle, rel, rfd, row)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::model::{Constraint, Rfd};
    use renuver_data::{AttrType, Relation, Schema, Value};

    /// The paper's Table 2 Restaurant sample (7 tuples, 5 attributes:
    /// Name, City, Phone, Type, Class).
    pub(crate) fn restaurant_sample() -> Relation {
        let schema = Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Phone", AttrType::Text),
            ("Type", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        let t = |name: &str, city: Option<&str>, phone: Option<&str>, ty: Option<&str>, class: i64| {
            vec![
                Value::from(name),
                city.map(Value::from).unwrap_or(Value::Null),
                phone.map(Value::from).unwrap_or(Value::Null),
                ty.map(Value::from).unwrap_or(Value::Null),
                Value::Int(class),
            ]
        };
        Relation::new(
            schema,
            vec![
                t("Granita", Some("Malibu"), Some("310/456-0488"), Some("Californian"), 6),
                t("Chinois Main", Some("LA"), Some("310-392-9025"), Some("French"), 5),
                t("Citrus", Some("Los Angeles"), Some("213/857-0034"), Some("Californian"), 6),
                t("Citrus", Some("Los Angeles"), None, Some("Californian"), 6),
                t("Fenix", Some("Hollywood"), Some("213/848-6677"), None, 5),
                t("Fenix Argyle", None, Some("213/848-6677"), Some("French (new)"), 5),
                t("C. Main", Some("Los Angeles"), None, Some("French"), 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn key_rfd_detection() {
        // Name(≤0), Phone(≤0) → Type(≤0) is a key on the sample: t3/t4 share
        // the name but t4's phone is missing, and no other pair has equal
        // names — no pair of distinct tuples satisfies the LHS.
        let rel = restaurant_sample();
        let key = Rfd::new(
            vec![Constraint::new(0, 0.0), Constraint::new(2, 0.0)],
            Constraint::new(3, 0.0),
        );
        assert!(is_key(&rel, &key));
        assert!(holds(&rel, &key)); // vacuously

        // φ1 of Example 5.2 is NOT a key under the literal Definition 3.4:
        // (t5, t6) satisfies its LHS (see `is_key` docs for the paper
        // discrepancy).
        let phi1 = Rfd::new(
            vec![Constraint::new(0, 8.0), Constraint::new(2, 0.0), Constraint::new(4, 1.0)],
            Constraint::new(3, 0.0),
        );
        assert!(!is_key(&rel, &phi1));
    }

    #[test]
    fn non_key_rfd_phi2() {
        // φ2: Class(≤0) → Type(≤5) has LHS-similar pairs (t3, t4).
        let rel = restaurant_sample();
        let phi2 = Rfd::new(vec![Constraint::new(4, 0.0)], Constraint::new(3, 5.0));
        assert!(!is_key(&rel, &phi2));
    }

    #[test]
    fn missing_lhs_value_never_satisfies() {
        let rel = restaurant_sample();
        // t4 and t7 both miss Phone; a Phone(≤0) LHS can't be satisfied.
        let rfd = Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(1, 100.0));
        assert!(!pair_satisfies_lhs(&rel, &rfd, 3, 6));
        // But t5 and t6 share the same phone.
        assert!(pair_satisfies_lhs(&rel, &rfd, 4, 5));
    }

    #[test]
    fn missing_rhs_value_cannot_violate() {
        let rel = restaurant_sample();
        // t5/t6 satisfy Phone(≤0); t6's City is missing → RHS not evaluable.
        let rfd = Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(1, 0.0));
        assert!(pair_satisfies_rhs(&rel, &rfd, 4, 5));
        assert!(!pair_violates(&rel, &rfd, 4, 5));
    }

    #[test]
    fn example_4_4_violation_after_bad_imputation() {
        // Imputing t7[Phone] with t1[Phone] violates
        // φ0: Phone(≤0) → City(≤10): same phone, city edit distance > 10.
        let mut rel = restaurant_sample();
        rel.set_value(6, 2, rel.value(0, 2).clone());
        let phi0 = Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(1, 10.0));
        assert!(pair_violates(&rel, &phi0, 0, 6));
        assert!(!holds(&rel, &phi0));
        assert_eq!(violations(&rel, &phi0), vec![(0, 6)]);
    }

    #[test]
    fn holds_on_consistent_rfd() {
        let rel = restaurant_sample();
        // φ7: Phone(≤1) → Class(≤0): equal/near-equal phones agree on class.
        let phi7 = Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0));
        assert!(holds(&rel, &phi7));
        assert!(violations(&rel, &phi7).is_empty());
    }

    #[test]
    fn key_fast_path_matches_full_scan() {
        // Exercise both the bucketed (zero-threshold present) and the
        // full-scan paths on the same dependencies and compare.
        let rel = restaurant_sample();
        let candidates = vec![
            // Zero-threshold on City (buckets): non-key via (t3, t4, t7).
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(4, 0.0)),
            // Zero-threshold on Phone: non-key via (t5, t6).
            Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(4, 0.0)),
            // Zero-threshold on Name AND Phone: key (t3/t4 lack phones).
            Rfd::new(
                vec![Constraint::new(0, 0.0), Constraint::new(2, 0.0)],
                Constraint::new(3, 0.0),
            ),
            // No zero threshold: full scan path, non-key.
            Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0)),
        ];
        let oracle = renuver_distance::DistanceOracle::build(&rel, 100);
        for rfd in &candidates {
            // Reference: brute-force over all pairs, LHS only.
            let n = rel.len();
            let mut brute = true;
            'outer: for i in 0..n {
                for j in (i + 1)..n {
                    if pair_satisfies_lhs(&rel, rfd, i, j) {
                        brute = false;
                        break 'outer;
                    }
                }
            }
            assert_eq!(is_key_with(&oracle, &rel, rfd), brute, "{rfd:?}");
            assert_eq!(is_key(&rel, rfd), brute, "{rfd:?}");
        }
    }

    #[test]
    fn indexed_key_checks_match_scan() {
        let mut rel = restaurant_sample();
        let candidates = vec![
            // Zero threshold: bucket fast path (index unused).
            Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(4, 0.0)),
            // Non-zero thresholds: the indexed neighborhood path.
            Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0)),
            Rfd::new(
                vec![Constraint::new(0, 2.0), Constraint::new(4, 1.0)],
                Constraint::new(3, 0.0),
            ),
            // Key under the full scan: stays a key under the index.
            Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(3, 0.0)),
        ];
        let oracle = renuver_distance::DistanceOracle::build(&rel, 100);
        let index = SimilarityIndex::build(&rel, &oracle);
        for rfd in &candidates {
            assert_eq!(
                is_key_with_index(&oracle, Some(&index), &rel, rfd),
                is_key_with(&oracle, &rel, rfd),
                "{rfd:?}"
            );
        }
        // Incremental re-check after a cell update.
        rel.set_value(3, 2, rel.value(2, 2).clone());
        let oracle = renuver_distance::DistanceOracle::build(&rel, 100);
        let index = SimilarityIndex::build(&rel, &oracle);
        for rfd in &candidates {
            for row in 0..rel.len() {
                assert_eq!(
                    stays_key_after_update_with_index(&oracle, Some(&index), &rel, rfd, row),
                    stays_key_after_update_with(&oracle, &rel, rfd, row),
                    "{rfd:?} row {row}"
                );
            }
        }
    }

    #[test]
    fn stays_key_matches_full_recheck() {
        // In the spirit of Example 5.1: Name(≤0), Phone(≤0) → Type is a key
        // until t4[Phone] is imputed with t3's value, after which (t3, t4)
        // satisfies its LHS.
        let mut rel = restaurant_sample();
        let key = Rfd::new(
            vec![Constraint::new(0, 0.0), Constraint::new(2, 0.0)],
            Constraint::new(3, 0.0),
        );
        assert!(is_key(&rel, &key));
        rel.set_value(3, 2, rel.value(2, 2).clone());
        assert!(!stays_key_after_update(&rel, &key, 3));
        assert!(!is_key(&rel, &key));
        // An unrelated update leaves it keyed w.r.t. the incremental check.
        let key2 = Rfd::new(
            vec![Constraint::new(0, 0.0), Constraint::new(1, 0.0), Constraint::new(2, 0.0)],
            Constraint::new(3, 0.0),
        );
        assert!(stays_key_after_update(&rel, &key2, 0));
    }

    #[test]
    fn empty_relation_everything_holds() {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let rel = Relation::empty(schema);
        let rfd = Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0));
        assert!(holds(&rel, &rfd));
        assert!(is_key(&rel, &rfd));
    }
}
