//! Naive RFD discovery by direct validation — the reference
//! implementation the skyline search is checked against.
//!
//! Enumerates every candidate `X_Φ1 → A_φ2` on the integer threshold grid
//! (LHS sets up to `max_lhs`, all threshold combinations) and keeps the
//! ones that [`holds`] on the instance, pruning non-maximal candidates.
//! Complexity is `O((limit+1)^(|X|+1))` per LHS set *times* an `O(n²)`
//! validation each — exponential in arity and useless beyond toy sizes,
//! but trivially correct. Tests use it as ground truth for
//! [`crate::discovery::discover`]; the discovery bench uses it to show the
//! skyline search's advantage.

use renuver_data::{AttrId, Relation};

use crate::check::holds;
use crate::model::{Constraint, Rfd};
use crate::set::RfdSet;

/// Configuration for [`discover_naive`].
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Threshold limit (integer grid `0..=limit`), as in
    /// [`crate::discovery::DiscoveryConfig::limit`].
    pub limit: u16,
    /// Maximum LHS attributes.
    pub max_lhs: usize,
}

impl NaiveConfig {
    /// Creates a config.
    pub fn new(limit: u16, max_lhs: usize) -> Self {
        NaiveConfig { limit, max_lhs }
    }
}

/// Discovers all maximal RFDs on the grid by brute-force validation.
///
/// "Maximal" matches the skyline semantics: an RFD is dropped if another
/// *holding* RFD implies it ([`Rfd::implies`]: subset LHS, looser LHS
/// thresholds, tighter RHS threshold).
pub fn discover_naive(rel: &Relation, cfg: &NaiveConfig) -> RfdSet {
    let m = rel.arity();
    let mut all: Vec<Rfd> = Vec::new();
    for rhs in 0..m {
        let lhs_attrs: Vec<AttrId> = (0..m).filter(|&a| a != rhs).collect();
        for set in subsets(&lhs_attrs, cfg.max_lhs) {
            for alphas in grid(set.len(), cfg.limit) {
                let lhs: Vec<Constraint> = set
                    .iter()
                    .zip(&alphas)
                    .map(|(&a, &t)| Constraint::new(a, t as f64))
                    .collect();
                for beta in 0..=cfg.limit {
                    let rfd = Rfd::new(lhs.clone(), Constraint::new(rhs, beta as f64));
                    if holds(rel, &rfd) {
                        all.push(rfd);
                        break; // larger β is implied by this one
                    }
                }
            }
        }
    }
    let mut set = RfdSet::from_vec(all);
    set.prune_implied();
    set
}

/// Non-empty subsets of `attrs` with at most `max` elements.
fn subsets(attrs: &[AttrId], max: usize) -> Vec<Vec<AttrId>> {
    let mut out: Vec<Vec<AttrId>> = vec![vec![]];
    for &a in attrs {
        let mut grown: Vec<Vec<AttrId>> = out
            .iter()
            .filter(|s| s.len() < max)
            .map(|s| {
                let mut s = s.clone();
                s.push(a);
                s
            })
            .collect();
        out.append(&mut grown);
    }
    out.retain(|s| !s.is_empty());
    out
}

/// All threshold vectors in `[0, limit]^k`.
fn grid(k: usize, limit: u16) -> Vec<Vec<u16>> {
    let mut out = vec![vec![]];
    for _ in 0..k {
        out = out
            .into_iter()
            .flat_map(|prefix: Vec<u16>| {
                (0..=limit).map(move |v| {
                    let mut p = prefix.clone();
                    p.push(v);
                    p
                })
            })
            .collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{discover, DiscoveryConfig};
    use renuver_data::{AttrType, Schema, Value};

    fn rel(rows: &[(i64, i64, i64)]) -> Relation {
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("B", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        Relation::new(
            schema,
            rows.iter()
                .map(|&(a, b, c)| vec![Value::Int(a), Value::Int(b), Value::Int(c)])
                .collect(),
        )
        .unwrap()
    }

    /// Two RFD sets are equivalent iff each element of one is implied by
    /// some element of the other.
    fn equivalent(a: &RfdSet, b: &RfdSet) -> bool {
        let covered = |x: &RfdSet, y: &RfdSet| {
            x.iter().all(|rx| y.iter().any(|ry| ry.implies(rx)))
        };
        covered(a, b) && covered(b, a)
    }

    #[test]
    fn skyline_discovery_matches_naive_reference() {
        let cases: Vec<Vec<(i64, i64, i64)>> = vec![
            vec![(1, 10, 5), (1, 10, 5), (2, 20, 5), (3, 30, 6)],
            vec![(1, 7, 1), (2, 7, 2), (3, 9, 3), (4, 9, 4), (5, 12, 5)],
            vec![(0, 0, 0), (1, 1, 1), (2, 2, 2)],
            vec![(1, 100, 3), (1, 200, 3), (2, 100, 4), (2, 200, 4)],
        ];
        for rows in cases {
            let r = rel(&rows);
            let naive = discover_naive(&r, &NaiveConfig::new(3, 2));
            let fast = discover(
                &r,
                &DiscoveryConfig {
                    max_lhs: 2,
                    parallel: false,
                    ..DiscoveryConfig::with_limit(3.0)
                },
            );
            assert!(
                equivalent(&naive, &fast),
                "mismatch on {rows:?}\nnaive:\n{}\nfast:\n{}",
                naive.to_text(r.schema()),
                fast.to_text(r.schema())
            );
        }
    }

    #[test]
    fn naive_handles_missing_values_like_skyline() {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let r = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Null],
                vec![Value::Null, Value::Int(12)],
                vec![Value::Int(2), Value::Int(12)],
            ],
        )
        .unwrap();
        let naive = discover_naive(&r, &NaiveConfig::new(3, 1));
        let fast = discover(
            &r,
            &DiscoveryConfig { max_lhs: 1, parallel: false, ..DiscoveryConfig::with_limit(3.0) },
        );
        assert!(
            equivalent(&naive, &fast),
            "naive:\n{}\nfast:\n{}",
            naive.to_text(r.schema()),
            fast.to_text(r.schema())
        );
    }

    #[test]
    fn subsets_and_grid_shapes() {
        assert_eq!(subsets(&[0, 1, 2], 2).len(), 6); // C(3,1)+C(3,2)
        assert_eq!(grid(2, 3).len(), 16);
        assert_eq!(grid(0, 5), vec![Vec::<u16>::new()]);
    }
}
