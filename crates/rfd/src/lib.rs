//! Relaxed functional dependencies (RFD_c): model, checking, discovery.
//!
//! An RFD_c (paper Definition 3.2) is a statement `X_Φ1 → A_φ2` where each
//! attribute carries a distance constraint: a pair of tuples that is within
//! the LHS thresholds on every `X` attribute must be within the RHS threshold
//! on `A`. Example (3.3): `Name(≤4) → Phone(≤1)` — restaurants with similar
//! names have similar phone numbers.
//!
//! This crate provides:
//! - [`model`] — the [`Rfd`] type, constraints, display/parse in the paper's
//!   notation;
//! - [`check`] — satisfaction, violation enumeration, and key-RFD detection
//!   (Definition 3.4);
//! - [`set`] — [`RfdSet`] with the RHS-attribute index and the
//!   RHS-threshold clustering (`Λ_Σ'_A`) RENUVER consumes;
//! - [`discovery`] — distance-based RFD discovery from data, standing in for
//!   the closed-source algorithm of the paper's reference \[6\];
//! - [`naive`] — brute-force reference discovery used to validate the
//!   skyline search and as a bench baseline;
//! - [`mod@coverage`] — coverage / `g1` measures for approximate RFDs
//!   (dependencies holding on a subset of the data, paper Section 3);
//! - [`implication`] — sound logical reasoning over RFD sets
//!   (subsumption + transitive composition, after ref. \[21\]).

pub mod check;
pub mod coverage;
pub mod discovery;
pub mod implication;
pub mod model;
pub mod naive;
pub mod set;

pub use check::{holds, is_key, violations};
pub use coverage::{coverage, g1_error};
pub use implication::implied_by;
pub use model::{Constraint, Rfd, RfdBuilder};
pub use set::{Cluster, RfdSet};
