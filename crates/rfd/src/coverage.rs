//! Coverage measures for approximate RFDs.
//!
//! The paper's Section 3 notes that an RFD may hold on a *subset* of the
//! data, quantified through a **coverage measure** (Caruccio et al.'s
//! survey, ref. \[7\]). RENUVER itself only consumes exact RFDs, but
//! coverage is the natural quality score for dependencies on dirty data
//! and for deciding whether a near-dependency is worth keeping. This
//! module provides the two standard measures:
//!
//! - [`g1_error`] — the fraction of *evaluable LHS-similar pairs* that
//!   violate the RHS (Kivinen–Mannila's `g1` adapted to RFDs);
//! - [`coverage`] — its complement, the fraction of LHS-similar pairs
//!   that also satisfy the RHS (`1 − g1`).
//!
//! Plus [`filter_by_coverage`], which keeps the dependencies of a set
//! whose coverage on an instance meets a floor — useful to tolerate a
//! bounded amount of noise in externally supplied RFD sets.

use renuver_data::Relation;
use renuver_distance::DistanceOracle;

use crate::check::{pair_satisfies_lhs_with, pair_satisfies_rhs_with};
use crate::model::Rfd;
use crate::set::RfdSet;

/// Pairs relevant to an RFD's coverage on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverageCounts {
    /// Pairs satisfying the LHS with both RHS values present.
    pub support: usize,
    /// Of those, pairs violating the RHS constraint.
    pub violations: usize,
}

/// Counts the LHS-similar, RHS-evaluable pairs and the violating subset.
pub fn coverage_counts(oracle: &DistanceOracle, rel: &Relation, rfd: &Rfd) -> CoverageCounts {
    let n = rel.len();
    let rhs_attr = rfd.rhs_attr();
    let mut counts = CoverageCounts::default();
    for i in 0..n {
        if rel.is_missing(i, rhs_attr) {
            continue;
        }
        for j in (i + 1)..n {
            if rel.is_missing(j, rhs_attr) {
                continue;
            }
            if pair_satisfies_lhs_with(oracle, rel, rfd, i, j) {
                counts.support += 1;
                if !pair_satisfies_rhs_with(oracle, rel, rfd, i, j) {
                    counts.violations += 1;
                }
            }
        }
    }
    counts
}

/// The `g1` error: violating pairs over supporting pairs. Zero when the
/// dependency holds exactly (or has no supporting pair at all — a key).
pub fn g1_error(rel: &Relation, rfd: &Rfd) -> f64 {
    let counts = coverage_counts(&DistanceOracle::direct(rel), rel, rfd);
    if counts.support == 0 {
        0.0
    } else {
        counts.violations as f64 / counts.support as f64
    }
}

/// Coverage: the fraction of supporting pairs that satisfy the RHS
/// (`1 − g1`). A key (no supporting pair) has coverage 1.
pub fn coverage(rel: &Relation, rfd: &Rfd) -> f64 {
    1.0 - g1_error(rel, rfd)
}

/// Keeps the RFDs of `set` whose coverage on `rel` is at least
/// `min_coverage`. Returns the kept set and the number dropped.
pub fn filter_by_coverage(set: &RfdSet, rel: &Relation, min_coverage: f64) -> (RfdSet, usize) {
    let oracle = DistanceOracle::build(rel, 3000);
    let kept: Vec<Rfd> = set
        .iter()
        .filter(|rfd| {
            let counts = coverage_counts(&oracle, rel, rfd);
            let cov = if counts.support == 0 {
                1.0
            } else {
                1.0 - counts.violations as f64 / counts.support as f64
            };
            cov >= min_coverage
        })
        .cloned()
        .collect();
    let dropped = set.len() - kept.len();
    (RfdSet::from_vec(kept), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::holds;
    use crate::model::Constraint;
    use renuver_data::{AttrType, Schema, Value};

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(
            schema,
            rows.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
        .unwrap()
    }

    fn a_to_b() -> Rfd {
        Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0))
    }

    #[test]
    fn exact_dependency_has_full_coverage() {
        let r = rel(&[(1, 10), (1, 10), (2, 20), (2, 20)]);
        assert!(holds(&r, &a_to_b()));
        assert_eq!(g1_error(&r, &a_to_b()), 0.0);
        assert_eq!(coverage(&r, &a_to_b()), 1.0);
    }

    #[test]
    fn partial_violations_measured() {
        // A=1 supports 3 pairs, one violating (10 vs 11); A=2 supports 1
        // clean pair → g1 = 1/4.
        let r = rel(&[(1, 10), (1, 10), (1, 11), (2, 20), (2, 20)]);
        let counts = coverage_counts(&DistanceOracle::direct(&r), &r, &a_to_b());
        assert_eq!(counts.support, 4);
        assert_eq!(counts.violations, 2); // (r0,r2) and (r1,r2)
        assert_eq!(g1_error(&r, &a_to_b()), 0.5);
        assert_eq!(coverage(&r, &a_to_b()), 0.5);
    }

    #[test]
    fn keys_have_coverage_one() {
        let r = rel(&[(1, 10), (2, 20), (3, 30)]);
        assert_eq!(coverage(&r, &a_to_b()), 1.0);
    }

    #[test]
    fn missing_rhs_pairs_excluded_from_support() {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let r = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Null],
            ],
        )
        .unwrap();
        let counts = coverage_counts(&DistanceOracle::direct(&r), &r, &a_to_b());
        assert_eq!(counts.support, 0);
    }

    #[test]
    fn filter_keeps_high_coverage_rfds() {
        let r = rel(&[(1, 10), (1, 10), (1, 11), (2, 20), (2, 20)]);
        let set = RfdSet::from_vec(vec![
            a_to_b(), // coverage 0.5 on this instance
            // B(≤0) → A(≤0): equal B pairs agree on A → coverage 1.
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(0, 0.0)),
        ]);
        let (kept, dropped) = filter_by_coverage(&set, &r, 0.9);
        assert_eq!(kept.len(), 1);
        assert_eq!(dropped, 1);
        assert_eq!(kept.get(0).lhs_attrs(), vec![1]);
        // A permissive floor keeps everything.
        let (all, none) = filter_by_coverage(&set, &r, 0.3);
        assert_eq!(all.len(), 2);
        assert_eq!(none, 0);
    }
}
