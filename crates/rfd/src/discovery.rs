//! Distance-based RFD_c discovery.
//!
//! The paper obtains its RFD sets from the discovery algorithm of Caruccio
//! et al. (ref. \[6\], multi-attribute dominance), which is not available as
//! open source. This module is a from-scratch replacement with the same
//! contract: given a relation and a *threshold limit* (the paper uses
//! {3, 6, 9, 12, 15}), produce the RFD_c's `X_Φ1 → A_φ2` — with all
//! thresholds on the integer grid `0..=limit` — that hold on the instance.
//!
//! ## Method
//!
//! 1. Compute the distance pattern of every tuple pair (optionally a seeded
//!    sample of pairs for large instances), quantized to the integer grid:
//!    `q = ceil(δ)` clamped to `limit + 1`, `MISSING` where either value is
//!    null. Patterns are deduplicated; only distinct patterns drive search.
//! 2. For a fixed RHS attribute `A` and RHS threshold `β`, a pair is
//!    **violating** iff `q[A] > β`. A candidate LHS `(X, α)` is valid iff no
//!    violating pair satisfies it, i.e. there is no violating pattern `p`
//!    with `p[x] ≤ α_x` on every `x ∈ X` (patterns with a missing or
//!    beyond-limit LHS coordinate never satisfy the LHS and can be ignored).
//! 3. The feasible `α` region is downward closed, so it suffices to emit its
//!    **maximal elements** (a Pareto skyline over the grid), computed from
//!    the Pareto-minimal violating points by a recursive sweep on the last
//!    coordinate. Processing `β` from `limit` down to `0` only ever *adds*
//!    violating points, so the minimal-point set is maintained
//!    incrementally.
//! 4. Finally, RFDs implied by a more general one (subset LHS, looser LHS
//!    thresholds, tighter RHS threshold — [`Rfd::implies`]) are pruned.
//!
//! The result is deterministic for a fixed config (sampling uses a seeded
//! in-crate PRNG).

use std::collections::HashMap;

use renuver_budget::{Budget, BudgetReport};
use renuver_data::{AttrId, Relation};
use renuver_distance::functions::value_distance;
use renuver_obs::{FieldValue, LocalBuffer, Tracer};

use crate::model::{Constraint, Rfd};
use crate::set::RfdSet;

/// Marker for "either value missing" in quantized patterns.
const MISSING: u16 = u16::MAX;

/// Tuple pairs examined between budget checks during pattern building.
/// The first stride always completes, so even a zero budget leaves the
/// search a (sampled) pattern table to work from rather than an empty one
/// — an empty table would make every candidate RFD look feasible.
const PATTERN_CHECK_STRIDE: usize = 1024;

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Threshold limit: every LHS and RHS threshold lies in `0..=limit`.
    /// The paper's evaluation uses limits {3, 6, 9, 12, 15} (Section 6.1).
    pub limit: f64,
    /// Optional per-attribute limits overriding `limit`, indexed by
    /// attribute id (entries beyond the vector fall back to `limit`).
    /// Implements the paper's first future-work item (Section 7):
    /// "thresholds whose upper bound depends on attribute domains and
    /// value distributions" — see [`auto_limits`] for the
    /// distribution-scaled variant.
    pub per_attr_limits: Option<Vec<f64>>,
    /// Maximum number of LHS attributes per RFD (lattice depth).
    pub max_lhs: usize,
    /// Cap on the number of tuple pairs examined; instances with more pairs
    /// are sampled deterministically. Sampling makes discovery approximate
    /// (an emitted RFD may be violated by an unsampled pair), which is the
    /// standard trade-off for n in the tens of thousands.
    pub max_pairs: usize,
    /// Seed for pair sampling.
    pub seed: u64,
    /// Remove implied RFDs before returning.
    pub prune_implied: bool,
    /// Distribute the per-`(RHS attribute, LHS set)` skyline searches
    /// across the installed thread pool. Output is identical either way —
    /// tasks are merged back in the sequential visiting order.
    pub parallel: bool,
    /// Execution budget, polled between pattern-building strides, lattice
    /// cells, and RHS-threshold sweep steps. On a trip the search stops
    /// expanding and [`discover_outcome`] returns the Pareto frontier
    /// found so far, flagged `truncated`. The default budget is unlimited.
    pub budget: Budget,
    /// Structured tracer (default: disabled). An enabled tracer records
    /// `rfd::patterns` / `rfd::lattice` spans, one `lattice_cell` event
    /// per searched lattice cell (buffered per worker thread, merged in
    /// task order so the trace is deterministic), and a final `discovery`
    /// summary event.
    pub tracer: Tracer,
}

impl DiscoveryConfig {
    /// Config with the given threshold limit and defaults for the rest.
    pub fn with_limit(limit: f64) -> Self {
        DiscoveryConfig {
            limit,
            per_attr_limits: None,
            max_lhs: 3,
            max_pairs: 400_000,
            seed: 0x5EED,
            prune_implied: true,
            parallel: true,
            budget: Budget::unlimited(),
            tracer: Tracer::disabled(),
        }
    }
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig::with_limit(3.0)
    }
}

/// Derives per-attribute threshold limits from the value distribution
/// (the paper's Section 7 future-work item): each attribute's limit is
/// `fraction` of its observed spread — the value range for numeric
/// columns, the longest value length for text columns, 1 for booleans —
/// clamped to `1..=255`. The upper clamp bounds the discovery grid: the
/// RHS threshold sweep is linear in the limit, so an unbounded numeric
/// range (say, population counts) must not translate into a
/// hundred-thousand-step grid.
pub fn auto_limits(rel: &Relation, fraction: f64) -> Vec<f64> {
    use renuver_data::AttrType;
    (0..rel.arity())
        .map(|attr| {
            let spread = match rel.schema().ty(attr) {
                AttrType::Text => rel
                    .tuples()
                    .filter_map(|t| t[attr].as_text())
                    .map(|s| s.chars().count() as f64)
                    .fold(0.0, f64::max),
                AttrType::Bool => 1.0,
                _ => {
                    let vals: Vec<f64> =
                        rel.tuples().filter_map(|t| t[attr].as_f64()).collect();
                    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    if hi > lo {
                        hi - lo
                    } else {
                        0.0
                    }
                }
            };
            (spread * fraction).floor().clamp(1.0, 255.0)
        })
        .collect()
}

/// Splitmix64: tiny deterministic PRNG for pair sampling (keeps this crate
/// free of the `rand` dependency).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0) via rejection-free mul-shift.
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

/// Quantizes a distance to the integer grid: `ceil(d)` clamped to
/// `limit + 1` (every value beyond the limit behaves identically — it can
/// satisfy no constraint and violates every RHS threshold).
#[inline]
fn quantize(d: f64, limit_q: u16) -> u16 {
    let q = d.ceil();
    if q >= limit_q as f64 {
        limit_q
    } else {
        q.max(0.0) as u16
    }
}

/// Resolves the effective per-attribute threshold limits on the integer
/// grid.
fn attr_limits(cfg: &DiscoveryConfig, m: usize) -> Vec<u16> {
    let global = cfg.limit.floor().clamp(0.0, u16::MAX as f64 - 2.0) as u16;
    match &cfg.per_attr_limits {
        None => vec![global; m],
        Some(per) => (0..m)
            .map(|a| {
                per.get(a)
                    .map(|l| l.floor().clamp(0.0, u16::MAX as f64 - 2.0) as u16)
                    .unwrap_or(global)
            })
            .collect(),
    }
}

/// Distinct quantized distance patterns with, per pattern, a multiplicity
/// count (informational) — the search input built by step 1.
struct PatternTable {
    /// One quantized entry per attribute per pattern, row-major.
    rows: Vec<u16>,
    arity: usize,
    len: usize,
}

impl PatternTable {
    #[inline]
    fn get(&self, row: usize, attr: usize) -> u16 {
        self.rows[row * self.arity + attr]
    }
}

/// Builds the deduplicated pattern table over (a sample of) tuple pairs.
/// The second component is `false` when the budget cut the pair scan
/// short — the table is then a deterministic prefix sample, which makes
/// discovery approximate in the same way `max_pairs` sampling does.
fn build_patterns(rel: &Relation, cfg: &DiscoveryConfig) -> (PatternTable, bool) {
    let n = rel.len();
    let m = rel.arity();
    let limits = attr_limits(cfg, m);
    let total_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;

    let mut seen: HashMap<Vec<u16>, u32> = HashMap::new();
    let pattern_of = |i: usize, j: usize, buf: &mut Vec<u16>| {
        buf.clear();
        let ti = rel.tuple(i);
        let tj = rel.tuple(j);
        for a in 0..m {
            let q = match value_distance(&ti[a], &tj[a]) {
                None => MISSING,
                Some(d) => quantize(d, limits[a] + 1),
            };
            buf.push(q);
        }
    };

    let mut complete = true;
    let mut processed = 0usize;
    let mut buf = Vec::with_capacity(m);
    if total_pairs <= cfg.max_pairs {
        'scan: for i in 0..n {
            for j in (i + 1)..n {
                processed += 1;
                if processed.is_multiple_of(PATTERN_CHECK_STRIDE)
                    && cfg.budget.check("rfd::patterns").is_err()
                {
                    complete = false;
                    break 'scan;
                }
                pattern_of(i, j, &mut buf);
                *seen.entry(buf.clone()).or_insert(0) += 1;
            }
        }
    } else {
        let mut rng = SplitMix64(cfg.seed);
        for _ in 0..cfg.max_pairs {
            processed += 1;
            if processed.is_multiple_of(PATTERN_CHECK_STRIDE)
                && cfg.budget.check("rfd::patterns").is_err()
            {
                complete = false;
                break;
            }
            let i = rng.below(n as u64) as usize;
            let mut j = rng.below((n - 1) as u64) as usize;
            if j >= i {
                j += 1;
            }
            pattern_of(i, j, &mut buf);
            *seen.entry(buf.clone()).or_insert(0) += 1;
        }
    }

    let len = seen.len();
    let mut rows = Vec::with_capacity(len * m);
    for (pat, _count) in seen {
        rows.extend_from_slice(&pat);
    }
    (PatternTable { rows, arity: m, len }, complete)
}

/// Pareto-minimal point set under componentwise `≤`, maintained
/// incrementally. Only minimal points constrain the feasible-α region.
struct MinimalPoints {
    points: Vec<Vec<u16>>,
}

impl MinimalPoints {
    fn new() -> Self {
        MinimalPoints { points: Vec::new() }
    }

    /// Inserts `p`, dropping it if dominated and evicting points it
    /// dominates. (`a` dominates `b` iff `a ≤ b` componentwise.)
    fn insert(&mut self, p: &[u16]) {
        for q in &self.points {
            if q.iter().zip(p).all(|(a, b)| a <= b) {
                return; // dominated by an existing minimal point
            }
        }
        self.points.retain(|q| !p.iter().zip(q.iter()).all(|(a, b)| a <= b));
        self.points.push(p.to_vec());
    }
}

/// Maximal feasible threshold vectors `α`, `α_i ∈ [0, limits[i]]`, such
/// that no point `p` satisfies `p ≤ α` componentwise. `points` must be
/// Pareto-minimal (not required for correctness, only for speed) with all
/// coordinates within the per-dimension limits.
fn maximal_alphas(points: &[Vec<u16>], k: usize, limits: &[u16]) -> Vec<Vec<u16>> {
    if points.iter().any(|p| p.iter().all(|&c| c == 0)) {
        return Vec::new(); // the all-zero point forbids every α
    }
    if points.is_empty() {
        return vec![limits[..k].to_vec()];
    }
    if k == 1 {
        let min = points.iter().map(|p| p[0]).min().unwrap();
        // min ≥ 1 here (all-zero handled above).
        return vec![vec![(min - 1).min(limits[0])]];
    }
    // Candidate values for the last coordinate: the full limit, plus one
    // below each distinct point coordinate (descending, without repeats).
    let mut cands: Vec<u16> = points
        .iter()
        .map(|p| p[k - 1].saturating_sub(1).min(limits[k - 1]))
        .collect();
    cands.push(limits[k - 1]);
    cands.sort_unstable_by(|a, b| b.cmp(a));
    cands.dedup();

    let mut result: Vec<Vec<u16>> = Vec::new();
    for &last in &cands {
        // Points still active when α_last = last: those with p_last ≤ last.
        let active: Vec<Vec<u16>> = points
            .iter()
            .filter(|p| p[k - 1] <= last)
            .map(|p| p[..k - 1].to_vec())
            .collect();
        // Re-minimize the projection (projection can break minimality).
        let mut min_active = MinimalPoints::new();
        for p in &active {
            min_active.insert(p);
        }
        for mut prefix in maximal_alphas(&min_active.points, k - 1, limits) {
            prefix.push(last);
            // Keep only Pareto-maximal vectors across all `last` choices.
            if !result
                .iter()
                .any(|r| r.iter().zip(&prefix).all(|(a, b)| a >= b))
            {
                result.retain(|r| !r.iter().zip(&prefix).all(|(a, b)| a <= b));
                result.push(prefix);
            }
        }
    }
    result
}

/// Enumerates the non-empty subsets of `attrs` with at most `max_lhs`
/// elements, smallest first.
fn lhs_sets(attrs: &[AttrId], max_lhs: usize) -> Vec<Vec<AttrId>> {
    let mut out: Vec<Vec<AttrId>> = Vec::new();
    let mut level: Vec<Vec<AttrId>> = attrs.iter().map(|&a| vec![a]).collect();
    for _ in 0..max_lhs {
        out.extend(level.iter().cloned());
        let mut next = Vec::new();
        for set in &level {
            let last = *set.last().unwrap();
            for &a in attrs.iter().filter(|&&a| a > last) {
                let mut bigger = set.clone();
                bigger.push(a);
                next.push(bigger);
            }
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }
    out
}

/// The skyline search for one `(RHS attribute, LHS attribute set)` pair —
/// the unit of work [`discover`] distributes across threads. Returns the
/// strongest RFDs of that lattice cell, raw (unpruned), plus whether the
/// budget cut the RHS-threshold sweep short (the emitted RFDs still hold;
/// they just may be weaker than a full sweep would have tightened them
/// to).
fn discover_for_rhs_set(
    patterns: &PatternTable,
    rhs: AttrId,
    set: &[AttrId],
    cfg: &DiscoveryConfig,
) -> (Vec<Rfd>, bool) {
    let m = patterns.arity;
    let limits = attr_limits(cfg, m);
    let rhs_limit = limits[rhs];
    let mut out = Vec::new();
    let mut truncated = false;
    {
        let k = set.len();
        let set_limits: Vec<u16> = set.iter().map(|&a| limits[a]).collect();
        // Project patterns onto the LHS set, keeping per projected point the
        // maximum RHS quantized distance (the tightest violation it can
        // witness). Points with a missing or beyond-limit LHS coordinate
        // never satisfy any LHS and are skipped; patterns with a missing RHS
        // cannot witness a violation and contribute rhs_q = 0.
        let mut proj: HashMap<u64, u16> = HashMap::new();
        'pattern: for row in 0..patterns.len {
            let mut key = 0u64;
            for &a in set {
                let c = patterns.get(row, a);
                if c > limits[a] {
                    continue 'pattern;
                }
                key = (key << 16) | c as u64;
            }
            let rhs_q = match patterns.get(row, rhs) {
                MISSING => 0,
                q => q,
            };
            let e = proj.entry(key).or_insert(0);
            *e = (*e).max(rhs_q);
        }

        // Sort projected points by rhs_q descending: processing β from the
        // limit downwards, a point becomes violating once β < rhs_q.
        let mut points: Vec<(u16, Vec<u16>)> = proj
            .into_iter()
            .map(|(key, rhs_q)| {
                let mut coords = vec![0u16; k];
                let mut key = key;
                for i in (0..k).rev() {
                    coords[i] = (key & 0xFFFF) as u16;
                    key >>= 16;
                }
                (rhs_q, coords)
            })
            .collect();
        points.sort_unstable_by_key(|(rhs_q, _)| std::cmp::Reverse(*rhs_q));

        let mut minimal = MinimalPoints::new();
        let mut next = 0usize;
        let mut beta = rhs_limit as i32;
        // Pending skylines: skyline vector -> smallest β at which it is
        // still feasible (a smaller β strictly strengthens the RFD).
        let mut strongest: Vec<(Vec<u16>, u16)> = Vec::new();
        while beta >= 0 {
            // The first sweep step (β = limit) always runs, so every
            // visited lattice cell emits at least its weakest skyline even
            // under an exhausted budget.
            if beta < rhs_limit as i32 && cfg.budget.check("rfd::beta_sweep").is_err() {
                truncated = true;
                break;
            }
            while next < points.len() && points[next].0 as i32 > beta {
                // rhs_q never exceeds the quantization clamp rhs_limit + 1.
                debug_assert!(points[next].0 <= rhs_limit + 1);
                minimal.insert(&points[next].1);
                next += 1;
            }
            for alpha in maximal_alphas(&minimal.points, k, &set_limits) {
                match strongest.iter_mut().find(|(a, _)| *a == alpha) {
                    Some((_, b)) => *b = beta as u16, // still feasible: tighten
                    None => strongest.push((alpha, beta as u16)),
                }
            }
            beta -= 1;
        }

        for (alpha, beta) in strongest {
            let lhs = set
                .iter()
                .zip(&alpha)
                .map(|(&a, &t)| Constraint::new(a, t as f64))
                .collect();
            out.push(Rfd::new(lhs, Constraint::new(rhs, beta as f64)));
        }
    }
    (out, truncated)
}

/// Discovers the RFD_c's holding on `rel` under `cfg` (see module docs).
///
/// ```
/// use renuver_data::{csv, Relation};
/// use renuver_rfd::check::holds;
/// use renuver_rfd::discovery::{discover, DiscoveryConfig};
///
/// let rel = csv::read_str(
///     "City:text,Zip:text\n\
///      Salerno,84084\n\
///      Salerno,84084\n\
///      Milano,20121\n",
/// ).unwrap();
/// let rfds = discover(&rel, &DiscoveryConfig::with_limit(3.0));
/// assert!(!rfds.is_empty());
/// assert!(rfds.iter().all(|rfd| holds(&rel, rfd)));
/// ```
pub fn discover(rel: &Relation, cfg: &DiscoveryConfig) -> RfdSet {
    discover_outcome(rel, cfg).rfds
}

/// What a (possibly budget-limited) discovery run produced.
#[derive(Debug)]
pub struct DiscoveryOutcome {
    /// The discovered Pareto frontier — everything found before the budget
    /// tripped.
    pub rfds: RfdSet,
    /// `true` when the budget cut actual search work (pattern pairs,
    /// lattice cells, or sweep steps) — the frontier is then a valid but
    /// partial answer.
    pub truncated: bool,
    /// Snapshot of the budget at the end of the run.
    pub budget: BudgetReport,
}

/// [`discover`] with budget-outcome reporting: on budget exhaustion the
/// search stops expanding and returns what it found so far (flagged
/// [`DiscoveryOutcome::truncated`]) instead of running unbounded. The
/// first lattice cell always runs, so even a zero budget yields the
/// relation's weakest frontier rather than nothing.
pub fn discover_outcome(rel: &Relation, cfg: &DiscoveryConfig) -> DiscoveryOutcome {
    let tracer = &cfg.tracer;
    let run_span = tracer.span("rfd::discover");
    let m = rel.arity();
    if m < 2 || rel.len() < 2 {
        tracer.event("discovery", run_span.id(), || {
            vec![
                ("rfds", FieldValue::U64(0)),
                ("truncated", FieldValue::Bool(false)),
                ("lattice_cells", FieldValue::U64(0)),
            ]
        });
        return DiscoveryOutcome {
            rfds: RfdSet::new(),
            truncated: false,
            budget: cfg.budget.report(),
        };
    }
    let (patterns, patterns_complete) = {
        let _span = run_span.child("rfd::patterns");
        build_patterns(rel, cfg)
    };
    let mut truncated = !patterns_complete;

    // One task per (RHS attribute, LHS attribute set) lattice cell, in the
    // same (rhs ascending, lhs_sets order) the sequential loop visits them.
    // Tasks are heavy and few, so the parallel path lowers the minimum
    // fan-out length to 2; the in-order merge keeps the emitted RFD order
    // identical to the sequential path.
    let tasks: Vec<(AttrId, Vec<AttrId>)> = (0..m)
        .flat_map(|rhs| {
            let lhs_attrs: Vec<AttrId> = (0..m).filter(|&a| a != rhs).collect();
            lhs_sets(&lhs_attrs, cfg.max_lhs)
                .into_iter()
                .map(move |set| (rhs, set))
        })
        .collect();
    let lattice_span = run_span.child("rfd::lattice");
    let lattice_span_id = lattice_span.id();
    // Each task carries its own event buffer: workers never contend on the
    // tracer, and absorbing the buffers in task order below keeps the
    // trace independent of thread scheduling (disabled tracers make the
    // buffers inert).
    let results: Vec<(Vec<Rfd>, bool, LocalBuffer)> = if cfg.parallel {
        rayon::par_map_indexed_with_min(tasks.len(), 2, |i| {
            let mut buf = LocalBuffer::new(tracer);
            // Cell 0 always runs; later cells are dropped wholesale once
            // the budget has tripped.
            if i > 0 && cfg.budget.check("rfd::lattice").is_err() {
                return (Vec::new(), true, buf);
            }
            let (rhs, set) = &tasks[i];
            let (cell, cut) = discover_for_rhs_set(&patterns, *rhs, set, cfg);
            buf.event("lattice_cell", lattice_span_id, || {
                vec![
                    ("cell", FieldValue::U64(i as u64)),
                    ("rfds", FieldValue::U64(cell.len() as u64)),
                ]
            });
            (cell, cut, buf)
        })
    } else {
        tasks
            .iter()
            .enumerate()
            .map(|(i, (rhs, set))| {
                let mut buf = LocalBuffer::new(tracer);
                if i > 0 && cfg.budget.check("rfd::lattice").is_err() {
                    return (Vec::new(), true, buf);
                }
                let (cell, cut) = discover_for_rhs_set(&patterns, *rhs, set, cfg);
                buf.event("lattice_cell", lattice_span_id, || {
                    vec![
                        ("cell", FieldValue::U64(i as u64)),
                        ("rfds", FieldValue::U64(cell.len() as u64)),
                    ]
                });
                (cell, cut, buf)
            })
            .collect()
    };
    let mut rfds: Vec<Rfd> = Vec::new();
    let mut buffers: Vec<LocalBuffer> = Vec::with_capacity(results.len());
    for (cell, cut, buf) in results {
        truncated |= cut;
        rfds.extend(cell);
        buffers.push(buf);
    }
    tracer.absorb_ordered(buffers);
    drop(lattice_span);

    let raw = rfds.len();
    let mut set = RfdSet::from_vec(rfds);
    if cfg.prune_implied {
        set.prune_implied();
    }
    if tracer.is_enabled() {
        let metrics = tracer.metrics();
        metrics.counter("rfd.lattice_cells").add(tasks.len() as u64);
        metrics.counter("rfd.emitted_raw").add(raw as u64);
        metrics.counter("rfd.discovered").add(set.len() as u64);
    }
    let n_rfds = set.len();
    let n_cells = tasks.len();
    tracer.event("discovery", run_span.id(), || {
        vec![
            ("rfds", FieldValue::U64(n_rfds as u64)),
            ("truncated", FieldValue::Bool(truncated)),
            ("lattice_cells", FieldValue::U64(n_cells as u64)),
        ]
    });
    DiscoveryOutcome { rfds: set, truncated, budget: cfg.budget.report() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::holds;
    use renuver_data::{AttrType, Schema, Value};

    #[test]
    fn traced_discovery_is_deterministic_across_parallelism() {
        let rel = two_col(&[(1, 10), (2, 20), (3, 30), (1, 11), (7, 70)]);
        let run = |parallel: bool| {
            let tracer = Tracer::enabled();
            let cfg = DiscoveryConfig {
                parallel,
                tracer: tracer.clone(),
                ..DiscoveryConfig::with_limit(3.0)
            };
            (discover_outcome(&rel, &cfg), tracer)
        };
        let (seq, t_seq) = run(false);
        let (par, t_par) = run(true);
        assert_eq!(seq.rfds, par.rfds);
        // Same lattice_cell payloads in the same order regardless of the
        // path: buffers are absorbed in task order, not completion order.
        let cells = |t: &Tracer| -> Vec<Vec<renuver_obs::Field>> {
            t.records()
                .iter()
                .filter(|r| r.kind == "lattice_cell")
                .map(|r| r.fields.clone())
                .collect()
        };
        assert_eq!(cells(&t_seq), cells(&t_par));
        assert!(!cells(&t_seq).is_empty());
        // One summary event; the whole trace validates against the schema.
        let summaries =
            t_par.records().iter().filter(|r| r.kind == "discovery").count();
        assert_eq!(summaries, 1);
        renuver_obs::schema::validate_trace(&t_par.to_jsonl()).unwrap();
        assert_eq!(
            t_par.metrics().counter("rfd.discovered").get(),
            par.rfds.len() as u64
        );
        // An untraced run discovers the same frontier.
        let plain =
            discover(&rel, &DiscoveryConfig { parallel: true, ..DiscoveryConfig::with_limit(3.0) });
        assert_eq!(plain, par.rfds);
    }

    fn two_col(rows: &[(i64, i64)]) -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(
            schema,
            rows.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn quantize_grid() {
        assert_eq!(quantize(0.0, 4), 0);
        assert_eq!(quantize(2.0, 4), 2);
        assert_eq!(quantize(2.1, 4), 3);
        assert_eq!(quantize(3.9, 4), 4);
        assert_eq!(quantize(97.0, 4), 4);
    }

    #[test]
    fn minimal_points_dominance() {
        let mut mp = MinimalPoints::new();
        mp.insert(&[3, 3]);
        mp.insert(&[5, 5]); // dominated
        assert_eq!(mp.points.len(), 1);
        mp.insert(&[1, 4]); // incomparable
        assert_eq!(mp.points.len(), 2);
        mp.insert(&[1, 1]); // dominates both? dominates [3,3] and [1,4]
        assert_eq!(mp.points, vec![vec![1, 1]]);
    }

    #[test]
    fn maximal_alphas_no_points() {
        assert_eq!(maximal_alphas(&[], 2, &[5, 5]), vec![vec![5, 5]]);
    }

    #[test]
    fn maximal_alphas_zero_point_blocks_all() {
        assert!(maximal_alphas(&[vec![0, 0]], 2, &[5, 5]).is_empty());
    }

    #[test]
    fn maximal_alphas_one_dim() {
        assert_eq!(maximal_alphas(&[vec![3]], 1, &[5]), vec![vec![2]]);
    }

    #[test]
    fn maximal_alphas_staircase() {
        // Points (2,5) and (4,1) with limit 5. The maximal feasible α are:
        //   (1,5) — below both points in the first coordinate;
        //   (3,4) — dodges (2,5) on y and (4,1) on x;
        //   (5,0) — below both points in the second coordinate.
        let pts = vec![vec![2, 5], vec![4, 1]];
        let mut alphas = maximal_alphas(&pts, 2, &[5, 5]);
        alphas.sort();
        assert_eq!(alphas, vec![vec![1, 5], vec![3, 4], vec![5, 0]]);
    }

    #[test]
    fn lhs_sets_enumeration() {
        let sets = lhs_sets(&[0, 2, 3], 2);
        assert_eq!(
            sets,
            vec![
                vec![0],
                vec![2],
                vec![3],
                vec![0, 2],
                vec![0, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(lhs_sets(&[1], 3), vec![vec![1]]);
    }

    #[test]
    fn discovered_rfds_hold_on_instance() {
        // B = A + noise ≤ 1 when A close; plus an outlier pair.
        let rel = two_col(&[(1, 10), (2, 11), (3, 12), (10, 40), (11, 41), (30, 90)]);
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(5.0) };
        let set = discover(&rel, &cfg);
        assert!(!set.is_empty());
        for rfd in set.iter() {
            assert!(holds(&rel, rfd), "discovered RFD violated: {:?}", rfd);
        }
    }

    #[test]
    fn exact_fd_discovered_at_threshold_zero() {
        // B is a function of A (equal A ⇒ equal B).
        let rel = two_col(&[(1, 7), (1, 7), (2, 9), (2, 9), (3, 11)]);
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(3.0) };
        let set = discover(&rel, &cfg);
        // Some RFD A(≤α) → B(≤0) with α ≥ 0 must exist.
        assert!(
            set.iter().any(|r| r.rhs_attr() == 1 && r.rhs_threshold() == 0.0
                && r.lhs_attrs() == vec![0]),
            "missing exact FD; got: {set:?}"
        );
    }

    #[test]
    fn no_rfd_claims_more_than_data_supports() {
        // B unrelated to A: pairs with same A but B far apart at every
        // threshold ≤ limit. The only A→B RFDs must have high RHS or
        // infeasibly low LHS (none, since A repeats with distance 0).
        let rel = two_col(&[(1, 0), (1, 100), (2, 50), (2, 200)]);
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(3.0) };
        let set = discover(&rel, &cfg);
        for rfd in set.iter() {
            if rfd.rhs_attr() == 1 {
                assert!(holds(&rel, rfd));
            }
        }
        // In particular A(≤0) → B(≤3) must NOT be discovered.
        assert!(!set
            .iter()
            .any(|r| r.rhs_attr() == 1 && r.lhs_attrs() == vec![0] && r.rhs_threshold() <= 3.0));
    }

    #[test]
    fn rfd_count_grows_with_limit() {
        let rel = two_col(&[(1, 10), (2, 12), (3, 14), (8, 30), (9, 31), (15, 60), (16, 62)]);
        let count = |limit: f64| {
            let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(limit) };
            discover(&rel, &cfg).len()
        };
        assert!(count(3.0) <= count(9.0));
        assert!(count(9.0) <= count(15.0));
    }

    #[test]
    fn deterministic_with_sampling() {
        let rows: Vec<(i64, i64)> = (0..60).map(|i| (i, 2 * i)).collect();
        let rel = two_col(&rows);
        let cfg = DiscoveryConfig {
            max_pairs: 100,
            parallel: false,
            ..DiscoveryConfig::with_limit(5.0)
        };
        let a = discover(&rel, &cfg);
        let b = discover(&rel, &cfg);
        let schema = rel.schema();
        assert_eq!(a.to_text(schema), b.to_text(schema));
    }

    #[test]
    fn trivial_relations_yield_empty() {
        let schema = Schema::new([("A", AttrType::Int)]).unwrap();
        let rel = Relation::new(schema, vec![vec![Value::Int(1)]]).unwrap();
        assert!(discover(&rel, &DiscoveryConfig::default()).is_empty());
    }

    #[test]
    fn one_row_relation_terminates_with_valid_frontier() {
        // Regression: a single row yields zero tuple pairs — the lattice
        // walk must terminate immediately with an empty frontier, not
        // index into an empty pattern table or loop.
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Text)]).unwrap();
        let rel =
            Relation::new(schema, vec![vec![Value::Int(1), "x".into()]]).unwrap();
        let out = discover_outcome(&rel, &DiscoveryConfig::default());
        assert!(out.rfds.is_empty());
        assert!(!out.truncated);
    }

    #[test]
    fn all_null_column_terminates_with_holding_frontier() {
        // Regression: a column that is null on every row produces MISSING
        // in every pattern coordinate. It can never witness a violation,
        // so discovery must terminate and everything it emits must hold.
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("AllNull", AttrType::Text),
            ("B", AttrType::Int),
        ])
        .unwrap();
        let rows: Vec<_> = (0..6i64)
            .map(|i| vec![Value::Int(i), Value::Null, Value::Int(2 * i)])
            .collect();
        let rel = Relation::new(schema, rows).unwrap();
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(3.0) };
        let out = discover_outcome(&rel, &cfg);
        assert!(!out.truncated);
        for rfd in out.rfds.iter() {
            assert!(holds(&rel, rfd), "{rfd:?}");
        }
    }

    #[test]
    fn exhausted_budget_still_yields_partial_frontier() {
        // A zero operation budget: the first pattern stride and the first
        // lattice cell still run, so the outcome is a non-empty truncated
        // frontier — never an unbounded run, never nothing.
        let rows: Vec<(i64, i64)> = (0..30).map(|i| (i, 2 * i)).collect();
        let rel = two_col(&rows);
        let cfg = DiscoveryConfig {
            parallel: false,
            budget: Budget::unlimited().with_ops_limit(0),
            ..DiscoveryConfig::with_limit(5.0)
        };
        let out = discover_outcome(&rel, &cfg);
        assert!(out.truncated, "zero budget must report truncation");
        assert!(!out.rfds.is_empty(), "first lattice cell must still emit");
        assert_eq!(out.budget.tripped, Some(renuver_budget::BudgetTrip::Ops));
    }

    #[test]
    fn budgeted_discovery_is_deterministic_when_sequential() {
        let rows: Vec<(i64, i64)> = (0..40).map(|i| (i % 11, (i * 3) % 13)).collect();
        let rel = two_col(&rows);
        let run = || {
            let cfg = DiscoveryConfig {
                parallel: false,
                budget: Budget::unlimited().with_ops_limit(10),
                ..DiscoveryConfig::with_limit(5.0)
            };
            let out = discover_outcome(&rel, &cfg);
            (out.rfds.to_text(rel.schema()), out.truncated)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unlimited_budget_reports_untruncated() {
        let rel = two_col(&[(1, 10), (2, 11), (3, 12)]);
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(3.0) };
        let out = discover_outcome(&rel, &cfg);
        assert!(!out.truncated);
        assert_eq!(out.budget.tripped, None);
        assert_eq!(out.rfds.to_text(rel.schema()), discover(&rel, &cfg).to_text(rel.schema()));
    }

    /// Brute force over the full grid: every feasible α, then filter to
    /// the maximal ones. Only viable for tiny grids/dimensions.
    fn maximal_alphas_brute(points: &[Vec<u16>], k: usize, limit: u16) -> Vec<Vec<u16>> {
        fn enumerate(k: usize, limit: u16) -> Vec<Vec<u16>> {
            if k == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for rest in enumerate(k - 1, limit) {
                for v in 0..=limit {
                    let mut a = rest.clone();
                    a.push(v);
                    out.push(a);
                }
            }
            out
        }
        let feasible: Vec<Vec<u16>> = enumerate(k, limit)
            .into_iter()
            .filter(|a| {
                !points
                    .iter()
                    .any(|p| p.iter().zip(a).all(|(pc, ac)| pc <= ac))
            })
            .collect();
        feasible
            .iter()
            .filter(|a| {
                !feasible.iter().any(|b| {
                    *a != b && a.iter().zip(b).all(|(ac, bc)| ac <= bc)
                })
            })
            .cloned()
            .collect()
    }

    #[test]
    fn maximal_alphas_matches_brute_force() {
        // Deterministic pseudo-random point sets in 1–3 dimensions.
        let mut rng = SplitMix64(99);
        for k in 1..=3usize {
            for limit in [2u16, 4, 6] {
                for _case in 0..40 {
                    let n_points = (rng.below(5) + 1) as usize;
                    let mut minimal = MinimalPoints::new();
                    for _ in 0..n_points {
                        let p: Vec<u16> = (0..k)
                            .map(|_| rng.below(limit as u64 + 1) as u16)
                            .collect();
                        minimal.insert(&p);
                    }
                    let mut fast = maximal_alphas(&minimal.points, k, &vec![limit; k]);
                    let mut brute = maximal_alphas_brute(&minimal.points, k, limit);
                    fast.sort();
                    brute.sort();
                    assert_eq!(
                        fast, brute,
                        "k={k} limit={limit} points={:?}",
                        minimal.points
                    );
                }
            }
        }
    }

    #[test]
    fn three_attribute_lhs_discovered_when_needed() {
        // C is determined only by the *combination* of A1, A2, A3 at
        // distance 0 — single- and two-attribute LHSs all have violating
        // pairs, so a 3-attribute RFD must appear (max_lhs = 3).
        let schema = Schema::new([
            ("A1", AttrType::Int),
            ("A2", AttrType::Int),
            ("A3", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        // Rows: every pair of rows agrees on at most 2 of the A's unless
        // they agree on all 3 (and then C agrees).
        let rows = vec![
            vec![Value::Int(0), Value::Int(0), Value::Int(0), Value::Int(10)],
            vec![Value::Int(0), Value::Int(0), Value::Int(0), Value::Int(10)],
            vec![Value::Int(0), Value::Int(0), Value::Int(9), Value::Int(90)],
            vec![Value::Int(0), Value::Int(9), Value::Int(0), Value::Int(50)],
            vec![Value::Int(9), Value::Int(0), Value::Int(0), Value::Int(70)],
        ];
        let rel = Relation::new(schema, rows).unwrap();
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(3.0) };
        let set = discover(&rel, &cfg);
        assert!(
            set.iter().any(|r| r.rhs_attr() == 3 && r.lhs_attrs() == vec![0, 1, 2]),
            "missing 3-attribute RFD in {}",
            set.to_text(rel.schema())
        );
        for rfd in set.iter() {
            assert!(holds(&rel, rfd));
        }
    }

    #[test]
    fn per_attribute_limits_cap_thresholds() {
        let rel = two_col(&[(1, 10), (2, 12), (3, 14), (8, 30), (9, 31)]);
        let cfg = DiscoveryConfig {
            parallel: false,
            per_attr_limits: Some(vec![2.0, 6.0]),
            ..DiscoveryConfig::with_limit(10.0)
        };
        let set = discover(&rel, &cfg);
        assert!(!set.is_empty());
        for rfd in set.iter() {
            for c in rfd.lhs() {
                let cap = [2.0, 6.0][c.attr];
                assert!(c.threshold <= cap, "{rfd:?} exceeds LHS cap");
            }
            let cap = [2.0, 6.0][rfd.rhs_attr()];
            assert!(rfd.rhs_threshold() <= cap, "{rfd:?} exceeds RHS cap");
            assert!(holds(&rel, rfd));
        }
    }

    #[test]
    fn per_attribute_limits_fall_back_to_global() {
        // A shorter vector than the arity: the missing entry uses `limit`.
        let rel = two_col(&[(1, 10), (2, 12), (3, 14)]);
        let cfg = DiscoveryConfig {
            parallel: false,
            per_attr_limits: Some(vec![1.0]), // only attr 0 capped
            ..DiscoveryConfig::with_limit(5.0)
        };
        let set = discover(&rel, &cfg);
        for rfd in set.iter() {
            for c in rfd.lhs() {
                if c.attr == 0 {
                    assert!(c.threshold <= 1.0);
                } else {
                    assert!(c.threshold <= 5.0);
                }
            }
        }
    }

    #[test]
    fn auto_limits_scale_with_spread() {
        use renuver_data::AttrType;
        let schema = Schema::new([
            ("Wide", AttrType::Int),
            ("Narrow", AttrType::Int),
            ("Text", AttrType::Text),
            ("Flag", AttrType::Bool),
        ])
        .unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(0), Value::Int(5), "abcdefgh".into(), Value::Bool(true)],
                vec![Value::Int(1000), Value::Int(7), "ab".into(), Value::Bool(false)],
            ],
        )
        .unwrap();
        let limits = auto_limits(&rel, 0.1);
        assert_eq!(limits[0], 100.0); // 10% of range 1000
        assert_eq!(limits[1], 1.0); // 10% of range 2, clamped to >= 1
        assert_eq!(limits[2], 1.0); // 10% of max length 8 -> 0.8 -> clamp 1
        assert_eq!(limits[3], 1.0); // booleans
        let wider = auto_limits(&rel, 0.5);
        assert_eq!(wider[0], 255.0); // 500 capped at the grid bound
        assert_eq!(wider[2], 4.0);
    }

    #[test]
    fn auto_limits_feed_discovery() {
        let rel = two_col(&[(1, 10), (2, 12), (3, 14), (80, 300), (90, 310)]);
        let cfg = DiscoveryConfig {
            parallel: false,
            per_attr_limits: Some(auto_limits(&rel, 0.05)),
            ..DiscoveryConfig::with_limit(3.0)
        };
        let set = discover(&rel, &cfg);
        for rfd in set.iter() {
            assert!(holds(&rel, rfd), "{rfd:?}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("B", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        let rows: Vec<_> = (0..20i64)
            .map(|i| vec![Value::Int(i), Value::Int(i / 2), Value::Int(i * 3 % 7)])
            .collect();
        let rel = Relation::new(schema, rows).unwrap();
        let seq = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(4.0) };
        let par = DiscoveryConfig { parallel: true, ..DiscoveryConfig::with_limit(4.0) };
        let mut a: Vec<String> = discover(&rel, &seq).iter().map(|r| format!("{r:?}")).collect();
        let mut b: Vec<String> = discover(&rel, &par).iter().map(|r| format!("{r:?}")).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
