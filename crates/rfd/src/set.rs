//! Collections of RFDs with the indexes RENUVER consumes.

use renuver_data::{AttrId, Relation, Schema};
use renuver_distance::{DistanceOracle, SimilarityIndex};

use crate::check::is_key_with_index;
use crate::model::Rfd;

/// A cluster `ρ_A^i`: all RFDs with RHS attribute `A` and the same RHS
/// threshold `i` (paper Section 5.2). Clusters order the search for
/// candidate tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// The shared RHS threshold `i`.
    pub rhs_threshold: f64,
    /// Indices into the owning [`RfdSet`].
    pub rfds: Vec<usize>,
}

/// A set of RFD_c's — the paper's `Σ` (and, after key filtering, `Σ'`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RfdSet {
    rfds: Vec<Rfd>,
}

impl RfdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RfdSet::default()
    }

    /// Builds a set from a vector of RFDs.
    pub fn from_vec(rfds: Vec<Rfd>) -> Self {
        RfdSet { rfds }
    }

    /// Adds an RFD.
    pub fn push(&mut self, rfd: Rfd) {
        self.rfds.push(rfd);
    }

    /// Number of RFDs, `|Σ|`.
    pub fn len(&self) -> usize {
        self.rfds.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rfds.is_empty()
    }

    /// Iterates over the RFDs.
    pub fn iter(&self) -> impl Iterator<Item = &Rfd> {
        self.rfds.iter()
    }

    /// The RFD at `idx`.
    pub fn get(&self, idx: usize) -> &Rfd {
        &self.rfds[idx]
    }

    /// Indices of the RFDs whose RHS attribute is `attr` — the paper's
    /// `Σ'_A` (Algorithm 1 line 8).
    pub fn rhs_index(&self, attr: AttrId) -> Vec<usize> {
        self.rfds
            .iter()
            .enumerate()
            .filter(|(_, r)| r.rhs_attr() == attr)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the RFDs whose LHS contains `attr` (used by the
    /// IS_FAULTLESS verification, Algorithm 4 line 1).
    pub fn lhs_index(&self, attr: AttrId) -> Vec<usize> {
        self.rfds
            .iter()
            .enumerate()
            .filter(|(_, r)| r.lhs_contains(attr))
            .map(|(i, _)| i)
            .collect()
    }

    /// Partitions `Σ'_A` into threshold clusters `Λ_Σ'_A = {ρ_A^th}`,
    /// returned in **ascending** RHS-threshold order (the order of the
    /// paper's Figure 1 walk-through; callers can reverse for the
    /// Algorithm 2 descending reading).
    pub fn clusters_for(&self, attr: AttrId) -> Vec<Cluster> {
        let mut by_thr: Vec<(f64, Vec<usize>)> = Vec::new();
        for idx in self.rhs_index(attr) {
            let thr = self.rfds[idx].rhs_threshold();
            match by_thr.iter_mut().find(|(t, _)| *t == thr) {
                Some((_, v)) => v.push(idx),
                None => by_thr.push((thr, vec![idx])),
            }
        }
        // total_cmp: a NaN RHS threshold (possible on hand-written rule
        // files) must sort deterministically, not panic mid-clustering.
        by_thr.sort_by(|a, b| a.0.total_cmp(&b.0));
        by_thr
            .into_iter()
            .map(|(rhs_threshold, rfds)| Cluster { rhs_threshold, rfds })
            .collect()
    }

    /// Splits the set into non-key RFDs (`Σ'`) and key RFDs with respect to
    /// the instance `rel` (Algorithm 1 line 1). Key RFDs are returned so the
    /// caller can re-admit them when an imputation turns them non-key
    /// (Example 5.1).
    pub fn partition_keys(&self, rel: &Relation) -> (Vec<usize>, Vec<usize>) {
        self.partition_keys_with(&DistanceOracle::direct(rel), rel)
    }

    /// [`RfdSet::partition_keys`] with a shared distance oracle.
    pub fn partition_keys_with(
        &self,
        oracle: &DistanceOracle,
        rel: &Relation,
    ) -> (Vec<usize>, Vec<usize>) {
        let (non_keys, keys, _) =
            self.partition_keys_budgeted(oracle, rel, &renuver_budget::Budget::unlimited());
        (non_keys, keys)
    }

    /// [`RfdSet::partition_keys_with`] under a budget: each key test polls
    /// the budget first; once it trips, the remaining RFDs are classified
    /// as non-key (kept active). That is the graceful direction — an
    /// unchecked RFD left active can still generate candidates (every
    /// imputation is verified anyway), while one wrongly parked as a key
    /// would silently drop imputations. The third component reports
    /// whether the scan was cut short.
    pub fn partition_keys_budgeted(
        &self,
        oracle: &DistanceOracle,
        rel: &Relation,
        budget: &renuver_budget::Budget,
    ) -> (Vec<usize>, Vec<usize>, bool) {
        self.partition_keys_budgeted_with(oracle, None, rel, budget)
    }

    /// [`RfdSet::partition_keys_budgeted`] with an optional
    /// [`SimilarityIndex`] accelerating each key test (identical verdicts
    /// — see [`is_key_with_index`]).
    pub fn partition_keys_budgeted_with(
        &self,
        oracle: &DistanceOracle,
        index: Option<&SimilarityIndex>,
        rel: &Relation,
        budget: &renuver_budget::Budget,
    ) -> (Vec<usize>, Vec<usize>, bool) {
        let mut non_keys = Vec::new();
        let mut keys = Vec::new();
        let mut cut = false;
        for (i, rfd) in self.rfds.iter().enumerate() {
            if !cut && budget.check("rfd::partition_keys").is_err() {
                cut = true;
            }
            if !cut && is_key_with_index(oracle, index, rel, rfd) {
                keys.push(i);
            } else {
                non_keys.push(i);
            }
        }
        (non_keys, keys, cut)
    }

    /// Removes RFDs implied by another RFD in the set (see
    /// [`Rfd::implies`]), keeping the most general representative of each
    /// implication chain. Returns the number removed.
    pub fn prune_implied(&mut self) -> usize {
        let n = self.rfds.len();
        let mut keep = vec![true; n];
        for i in 0..n {
            if !keep[i] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // `keep[j]` is written below
            for j in 0..n {
                if i == j || !keep[j] {
                    continue;
                }
                if self.rfds[i].implies(&self.rfds[j])
                    && !(self.rfds[j].implies(&self.rfds[i]) && j < i)
                {
                    keep[j] = false;
                }
            }
        }
        let before = self.rfds.len();
        let mut idx = 0;
        self.rfds.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        before - self.rfds.len()
    }

    /// Summary statistics of the set: per-RHS-attribute counts, LHS size
    /// histogram, and the RHS threshold range — the shape information
    /// Table 3's #RFDs column summarizes to a single number.
    pub fn summary(&self, schema: &Schema) -> SetSummary {
        let mut per_rhs = vec![0usize; schema.arity()];
        let mut lhs_sizes: Vec<usize> = Vec::new();
        let mut min_rhs = f64::INFINITY;
        let mut max_rhs = f64::NEG_INFINITY;
        for rfd in &self.rfds {
            if rfd.rhs_attr() < per_rhs.len() {
                per_rhs[rfd.rhs_attr()] += 1;
            }
            let k = rfd.lhs().len();
            if lhs_sizes.len() <= k {
                lhs_sizes.resize(k + 1, 0);
            }
            lhs_sizes[k] += 1;
            min_rhs = min_rhs.min(rfd.rhs_threshold());
            max_rhs = max_rhs.max(rfd.rhs_threshold());
        }
        SetSummary {
            total: self.rfds.len(),
            per_rhs: per_rhs
                .into_iter()
                .enumerate()
                .map(|(a, c)| (schema.name(a).to_owned(), c))
                .collect(),
            lhs_size_histogram: lhs_sizes,
            rhs_threshold_range: (!self.rfds.is_empty()).then_some((min_rhs, max_rhs)),
        }
    }

    /// Serializes the set, one RFD per line, in the paper notation.
    pub fn to_text(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for rfd in &self.rfds {
            out.push_str(&rfd.display(schema).to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a set serialized with [`RfdSet::to_text`]. Blank lines and
    /// `#` comment lines are skipped.
    pub fn from_text(text: &str, schema: &Schema) -> Result<Self, String> {
        let mut set = RfdSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            set.push(Rfd::parse(line, schema)?);
        }
        Ok(set)
    }
}

/// Summary statistics of an [`RfdSet`] (see [`RfdSet::summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SetSummary {
    /// Total number of RFDs.
    pub total: usize,
    /// `(attribute name, #RFDs with that RHS)` in schema order.
    pub per_rhs: Vec<(String, usize)>,
    /// `lhs_size_histogram[k]` = RFDs with `k` LHS attributes.
    pub lhs_size_histogram: Vec<usize>,
    /// `(min, max)` RHS threshold, `None` when the set is empty.
    pub rhs_threshold_range: Option<(f64, f64)>,
}

impl std::fmt::Display for SetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} RFDs", self.total)?;
        if let Some((lo, hi)) = self.rhs_threshold_range {
            writeln!(f, "RHS thresholds in [{lo}, {hi}]")?;
        }
        for (k, count) in self.lhs_size_histogram.iter().enumerate() {
            if *count > 0 {
                writeln!(f, "  {count} with {k} LHS attribute(s)")?;
            }
        }
        for (name, count) in &self.per_rhs {
            if *count > 0 {
                writeln!(f, "  {count:>6} determine {name}")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<Rfd> for RfdSet {
    fn from_iter<T: IntoIterator<Item = Rfd>>(iter: T) -> Self {
        RfdSet { rfds: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Constraint;
    use renuver_data::AttrType;

    fn schema() -> Schema {
        Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Phone", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap()
    }

    /// φ3: City(≤2) → Phone(≤2), φ4: Name(≤4) → Phone(≤1),
    /// φ6: Name(≤6), City(≤9) → Phone(≤0), φ7: Phone(≤1) → Class(≤0).
    fn sample_set() -> RfdSet {
        RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(1, 2.0)], Constraint::new(2, 2.0)),
            Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0)),
            Rfd::new(
                vec![Constraint::new(0, 6.0), Constraint::new(1, 9.0)],
                Constraint::new(2, 0.0),
            ),
            Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(3, 0.0)),
        ])
    }

    #[test]
    fn rhs_index_selects_by_rhs() {
        let set = sample_set();
        assert_eq!(set.rhs_index(2), vec![0, 1, 2]);
        assert_eq!(set.rhs_index(3), vec![3]);
        assert!(set.rhs_index(0).is_empty());
    }

    #[test]
    fn lhs_index_selects_by_lhs_membership() {
        let set = sample_set();
        assert_eq!(set.lhs_index(0), vec![1, 2]);
        assert_eq!(set.lhs_index(2), vec![3]);
    }

    #[test]
    fn clusters_ascending_by_threshold() {
        // Mirrors the paper's Figure 1: ρ⁰={φ6}, ρ¹={φ4}, ρ²={φ3}.
        let set = sample_set();
        let clusters = set.clusters_for(2);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].rhs_threshold, 0.0);
        assert_eq!(clusters[0].rfds, vec![2]);
        assert_eq!(clusters[1].rhs_threshold, 1.0);
        assert_eq!(clusters[1].rfds, vec![1]);
        assert_eq!(clusters[2].rhs_threshold, 2.0);
        assert_eq!(clusters[2].rfds, vec![0]);
    }

    #[test]
    fn text_round_trip() {
        let s = schema();
        let set = sample_set();
        let text = set.to_text(&s);
        let parsed = RfdSet::from_text(&text, &s).unwrap();
        assert_eq!(set, parsed);
    }

    #[test]
    fn from_text_skips_comments_and_blanks() {
        let s = schema();
        let text = "# header\n\nName(<=4) -> Phone(<=1)\n";
        let set = RfdSet::from_text(text, &s).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn prune_implied_removes_dominated() {
        // Name(≤4)→Phone(≤1) implies Name(≤2),City(≤5)→Phone(≤3).
        let mut set = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0)),
            Rfd::new(
                vec![Constraint::new(0, 2.0), Constraint::new(1, 5.0)],
                Constraint::new(2, 3.0),
            ),
        ]);
        assert_eq!(set.prune_implied(), 1);
        assert_eq!(set.len(), 1);
        assert_eq!(set.get(0).lhs_attrs(), vec![0]);
    }

    #[test]
    fn prune_implied_keeps_one_of_equals() {
        let rfd = Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0));
        let mut set = RfdSet::from_vec(vec![rfd.clone(), rfd]);
        assert_eq!(set.prune_implied(), 1);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn summary_counts() {
        let s = schema();
        let set = sample_set();
        let summary = set.summary(&s);
        assert_eq!(summary.total, 4);
        assert_eq!(summary.per_rhs[2], ("Phone".to_owned(), 3));
        assert_eq!(summary.per_rhs[3], ("Class".to_owned(), 1));
        assert_eq!(summary.lhs_size_histogram, vec![0, 3, 1]);
        assert_eq!(summary.rhs_threshold_range, Some((0.0, 2.0)));
        let text = summary.to_string();
        assert!(text.contains("4 RFDs"), "{text}");
        assert!(text.contains("3 determine Phone"), "{text}");

        let empty = RfdSet::new().summary(&s);
        assert_eq!(empty.total, 0);
        assert_eq!(empty.rhs_threshold_range, None);
    }

    #[test]
    fn clusters_survive_nan_thresholds() {
        // Regression: the threshold sort used `partial_cmp(..).unwrap()`,
        // which panicked on a NaN RHS threshold (reachable via a
        // hand-written rules file). NaN now sorts last, in its own
        // cluster.
        let set = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(2, f64::NAN)),
            Rfd::new(vec![Constraint::new(0, 2.0)], Constraint::new(2, 1.0)),
        ]);
        let clusters = set.clusters_for(2);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].rhs_threshold, 1.0);
        assert!(clusters[1].rhs_threshold.is_nan());
    }

    #[test]
    fn budgeted_partition_keeps_unchecked_rfds_active() {
        use crate::check::tests::restaurant_sample;
        use renuver_budget::{Budget, BudgetTrip};
        let rel = restaurant_sample();
        let set = RfdSet::from_vec(vec![
            Rfd::new(
                vec![Constraint::new(0, 0.0), Constraint::new(2, 0.0)],
                Constraint::new(3, 0.0),
            ),
            Rfd::new(vec![Constraint::new(4, 0.0)], Constraint::new(3, 5.0)),
        ]);
        let oracle = DistanceOracle::direct(&rel);
        // Tripped before any key test: everything stays active (non-key).
        let budget = Budget::unlimited().with_ops_limit(0);
        let (non_keys, keys, cut) = set.partition_keys_budgeted(&oracle, &rel, &budget);
        assert!(cut);
        assert_eq!(non_keys, vec![0, 1]);
        assert!(keys.is_empty());
        assert_eq!(budget.trip(), Some(BudgetTrip::Ops));
        // One op of budget: the first RFD is tested (it is a key), the
        // second is left active.
        let (non_keys, keys, cut) =
            set.partition_keys_budgeted(&oracle, &rel, &Budget::unlimited().with_ops_limit(1));
        assert!(cut);
        assert_eq!(keys, vec![0]);
        assert_eq!(non_keys, vec![1]);
    }

    #[test]
    fn partition_keys_on_sample() {
        use crate::check::tests::restaurant_sample;
        let rel = restaurant_sample();
        // Name(≤0), Phone(≤0) → Type(≤0) is a key on the sample;
        // φ2: Class(≤0) → Type(≤5) is not.
        let set = RfdSet::from_vec(vec![
            Rfd::new(
                vec![Constraint::new(0, 0.0), Constraint::new(2, 0.0)],
                Constraint::new(3, 0.0),
            ),
            Rfd::new(vec![Constraint::new(4, 0.0)], Constraint::new(3, 5.0)),
        ]);
        let (non_keys, keys) = set.partition_keys(&rel);
        assert_eq!(keys, vec![0]);
        assert_eq!(non_keys, vec![1]);
    }
}
