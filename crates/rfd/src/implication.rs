//! Logical implication between RFD sets.
//!
//! Two sound inference rules (the RFD/differential-dependency analogues of
//! Armstrong reflexivity and transitivity — Song & Chen, the paper's
//! ref. \[21\], study the general reasoning problem):
//!
//! - **Subsumption** ([`Rfd::implies`]): `X(α) → A(β)` implies
//!   `X'(α') → A(β')` when `X ⊆ X'`, `αᵢ ≥ α'ᵢ` on `X`, and `β ≤ β'` —
//!   every pair the weaker LHS admits is admitted by the stronger RFD,
//!   whose RHS bound is at least as tight.
//! - **Transitivity**: from `X(α) → A(β₁)` and `A(β₂) → B(β₃)` with
//!   `β₁ ≤ β₂` derive `X(α) → B(β₃)`: an LHS-similar pair is within `β₁ ≤
//!   β₂` on `A`, so the second dependency bounds it by `β₃` on `B`.
//!   (Only single-attribute middles compose soundly without extra
//!   assumptions; a multi-attribute LHS on the second dependency would
//!   need the first to bound *all* of its attributes.)
//!
//! **Missing values break transitivity.** On instances with nulls, a pair
//! can satisfy `X(α) → A(β₁)` *vacuously* — its `A` values are not both
//! present — in which case nothing bounds its `A` distance and the second
//! dependency's LHS never fires; the composed conclusion can then be
//! violated. (Minimal counterexample, found by the property test in
//! `tests/proptests.rs`: Σ = {X(≤3) → T(≤1), Y(≤0) → X(≤1)} with a null
//! `X` satisfies Σ yet violates the composed `Y(≤0) → T(≤1)`.)
//! Subsumption alone is sound unconditionally; composition is sound on
//! instances where the chained (middle) attribute has no missing values.
//! [`implied_by`] therefore takes the composition depth explicitly:
//! `max_depth = 0` gives the unconditional reasoning, larger depths add
//! chaining under the completeness precondition.

use crate::model::{Constraint, Rfd};
use crate::set::RfdSet;

/// `true` if `target` is derivable from `sigma` by subsumption and
/// transitive composition up to `max_depth` composition steps.
///
/// With `max_depth = 0` (subsumption only), a `true` answer guarantees
/// every instance satisfying `sigma` satisfies `target` — nulls included.
/// With chaining (`max_depth > 0`) the guarantee additionally requires the
/// chained middle attributes to have no missing values in the instance
/// (see the module docs for the counterexample). A `false` answer is
/// always inconclusive (the rule system is not complete).
pub fn implied_by(sigma: &RfdSet, target: &Rfd, max_depth: usize) -> bool {
    let mut derived: Vec<Rfd> = sigma.iter().cloned().collect();
    if covered(&derived, target) {
        return true;
    }
    for _ in 0..max_depth {
        let mut new: Vec<Rfd> = Vec::new();
        for first in &derived {
            for second in sigma.iter() {
                if let Some(composed) = compose(first, second) {
                    if !derived.iter().chain(new.iter()).any(|r| r.implies(&composed)) {
                        new.push(composed);
                    }
                }
            }
        }
        if new.is_empty() {
            break;
        }
        derived.append(&mut new);
        if covered(&derived, target) {
            return true;
        }
    }
    false
}

/// Transitive composition: `X(α) → A(β₁)` ∘ `A(β₂) → B(β₃)` =
/// `X(α) → B(β₃)` when the middle matches (`β₁ ≤ β₂`, single-attribute
/// second LHS) and the result is well-formed (`B ∉ X`).
pub fn compose(first: &Rfd, second: &Rfd) -> Option<Rfd> {
    let [mid] = second.lhs() else {
        return None; // multi-attribute middle: not sound to compose
    };
    if first.rhs_attr() != mid.attr || first.rhs_threshold() > mid.threshold {
        return None;
    }
    let b = second.rhs();
    if first.lhs_contains(b.attr) || first.rhs_attr() == b.attr {
        return None; // would put B on both sides (or is a no-op)
    }
    Some(Rfd::new(
        first.lhs().to_vec(),
        Constraint::new(b.attr, b.threshold),
    ))
}

fn covered(derived: &[Rfd], target: &Rfd) -> bool {
    derived.iter().any(|r| r.implies(target))
}

/// Removes from `set` every RFD implied by the *rest* of the set under
/// [`implied_by`] — a stronger reduction than
/// [`RfdSet::prune_implied`], which only uses pairwise subsumption. With
/// `max_depth > 0` the reduction inherits composition's completeness
/// precondition (no missing values on chained attributes); use depth 0
/// for a reduction valid on arbitrary instances.
/// Returns the number removed.
pub fn reduce(set: &RfdSet, max_depth: usize) -> (RfdSet, usize) {
    let mut kept: Vec<Rfd> = set.iter().cloned().collect();
    let mut removed = 0usize;
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i].clone();
        let rest: RfdSet = kept
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, r)| r.clone())
            .collect();
        if implied_by(&rest, &candidate, max_depth) {
            kept.remove(i);
            removed += 1;
        } else {
            i += 1;
        }
    }
    (RfdSet::from_vec(kept), removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfd(lhs: &[(usize, f64)], rhs: (usize, f64)) -> Rfd {
        Rfd::new(
            lhs.iter().map(|&(a, t)| Constraint::new(a, t)).collect(),
            Constraint::new(rhs.0, rhs.1),
        )
    }

    #[test]
    fn subsumption_is_found() {
        let sigma = RfdSet::from_vec(vec![rfd(&[(0, 4.0)], (1, 1.0))]);
        // Stronger LHS (extra attr, tighter threshold), looser RHS.
        let target = rfd(&[(0, 2.0), (2, 3.0)], (1, 2.0));
        assert!(implied_by(&sigma, &target, 0));
    }

    #[test]
    fn transitivity_composes() {
        // A(2) → B(1) and B(1) → C(3) give A(2) → C(3).
        let sigma = RfdSet::from_vec(vec![
            rfd(&[(0, 2.0)], (1, 1.0)),
            rfd(&[(1, 1.0)], (2, 3.0)),
        ]);
        let target = rfd(&[(0, 2.0)], (2, 3.0));
        assert!(!implied_by(&sigma, &target, 0)); // needs one composition
        assert!(implied_by(&sigma, &target, 1));
    }

    #[test]
    fn composition_requires_compatible_middle() {
        // A → B(5) but the second needs B within 1: no composition.
        let sigma = RfdSet::from_vec(vec![
            rfd(&[(0, 2.0)], (1, 5.0)),
            rfd(&[(1, 1.0)], (2, 3.0)),
        ]);
        let target = rfd(&[(0, 2.0)], (2, 3.0));
        assert!(!implied_by(&sigma, &target, 3));
    }

    #[test]
    fn multi_attribute_middle_does_not_compose() {
        let first = rfd(&[(0, 2.0)], (1, 1.0));
        let second = rfd(&[(1, 1.0), (3, 2.0)], (2, 3.0));
        assert!(compose(&first, &second).is_none());
    }

    #[test]
    fn chains_of_compositions() {
        // A → B → C → D across three hops.
        let sigma = RfdSet::from_vec(vec![
            rfd(&[(0, 1.0)], (1, 1.0)),
            rfd(&[(1, 1.0)], (2, 1.0)),
            rfd(&[(2, 1.0)], (3, 1.0)),
        ]);
        let target = rfd(&[(0, 1.0)], (3, 1.0));
        assert!(!implied_by(&sigma, &target, 1));
        assert!(implied_by(&sigma, &target, 2));
    }

    #[test]
    fn reduce_removes_transitively_redundant() {
        let sigma = RfdSet::from_vec(vec![
            rfd(&[(0, 2.0)], (1, 1.0)),
            rfd(&[(1, 1.0)], (2, 3.0)),
            // Redundant: follows from the two above.
            rfd(&[(0, 2.0)], (2, 3.0)),
        ]);
        let (kept, removed) = reduce(&sigma, 2);
        assert_eq!(removed, 1);
        assert_eq!(kept.len(), 2);
        // The survivors still imply the removed one.
        assert!(implied_by(&kept, &rfd(&[(0, 2.0)], (2, 3.0)), 2));
    }

    #[test]
    fn reduce_keeps_independent_sets() {
        let sigma = RfdSet::from_vec(vec![
            rfd(&[(0, 2.0)], (1, 1.0)),
            rfd(&[(2, 2.0)], (3, 1.0)),
        ]);
        let (kept, removed) = reduce(&sigma, 2);
        assert_eq!(removed, 0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn self_composition_rejected() {
        let a_b = rfd(&[(0, 1.0)], (1, 1.0));
        let b_a = rfd(&[(1, 1.0)], (0, 1.0));
        // Composing A→B with B→A would conclude A→A: rejected.
        assert!(compose(&a_b, &b_a).is_none());
    }
}
