//! The RFD_c type and its notation.

use std::fmt;

use renuver_data::{AttrId, Schema};

/// One distance constraint `φ[B]`: attribute `B` with distance threshold
/// `β`, always under the `≤` operator (the paper restricts `φ` to
/// `distance ≤ threshold`, Section 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// Constrained attribute.
    pub attr: AttrId,
    /// Distance threshold; a pair satisfies the constraint iff
    /// `δ(t1[B], t2[B]) ≤ threshold` and neither value is missing.
    pub threshold: f64,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(attr: AttrId, threshold: f64) -> Self {
        Constraint { attr, threshold }
    }
}

/// A relaxed functional dependency `X_Φ1 → A_φ2` with a single RHS attribute
/// (the paper's working form, Section 3).
///
/// LHS constraints are kept sorted by attribute id, so structural equality
/// and subset tests are order-insensitive.
#[derive(Debug, Clone, PartialEq)]
pub struct Rfd {
    lhs: Vec<Constraint>,
    rhs: Constraint,
}

impl Rfd {
    /// Builds an RFD from LHS constraints and the RHS constraint.
    ///
    /// # Panics
    /// Panics if the LHS is empty, contains duplicate attributes, or
    /// includes the RHS attribute — all malformed dependencies that cannot
    /// arise from discovery or the provided parser.
    pub fn new(lhs: Vec<Constraint>, rhs: Constraint) -> Self {
        match Self::try_new(lhs, rhs) {
            Ok(rfd) => rfd,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking [`Rfd::new`] for deserializers handling untrusted
    /// input (e.g. a corrupted model artifact): the same structural
    /// validation, reported as an error instead of a panic.
    pub fn try_new(mut lhs: Vec<Constraint>, rhs: Constraint) -> Result<Self, String> {
        if lhs.is_empty() {
            return Err("RFD requires a non-empty LHS".to_string());
        }
        lhs.sort_by_key(|c| c.attr);
        if !lhs.windows(2).all(|w| w[0].attr != w[1].attr) {
            return Err("duplicate LHS attribute in RFD".to_string());
        }
        if !lhs.iter().all(|c| c.attr != rhs.attr) {
            return Err("RHS attribute cannot appear in the LHS".to_string());
        }
        Ok(Rfd { lhs, rhs })
    }

    /// The LHS constraints, sorted by attribute id — `Φ1`.
    pub fn lhs(&self) -> &[Constraint] {
        &self.lhs
    }

    /// The RHS constraint — `φ2`.
    pub fn rhs(&self) -> Constraint {
        self.rhs
    }

    /// LHS attribute ids, sorted — the paper's `LHS(φ)`.
    pub fn lhs_attrs(&self) -> Vec<AttrId> {
        self.lhs.iter().map(|c| c.attr).collect()
    }

    /// RHS attribute id — the paper's `RHS(φ)`.
    pub fn rhs_attr(&self) -> AttrId {
        self.rhs.attr
    }

    /// RHS distance threshold — the paper's `RHS_th(φ)`.
    pub fn rhs_threshold(&self) -> f64 {
        self.rhs.threshold
    }

    /// LHS constraints as `(attr, threshold)` pairs, the form
    /// [`renuver_distance::DistancePattern::satisfies`] consumes.
    pub fn lhs_pairs(&self) -> Vec<(AttrId, f64)> {
        self.lhs.iter().map(|c| (c.attr, c.threshold)).collect()
    }

    /// `true` iff `attr` appears in the LHS.
    pub fn lhs_contains(&self, attr: AttrId) -> bool {
        self.lhs.iter().any(|c| c.attr == attr)
    }

    /// `true` iff `self` logically implies `other`: any instance satisfying
    /// `self` satisfies `other`. Requires the same RHS attribute, LHS
    /// attributes of `self` a subset of `other`'s with thresholds at least
    /// as large (so `other`'s LHS-similar pairs are `self`'s too), and an
    /// RHS threshold at most `other`'s.
    pub fn implies(&self, other: &Rfd) -> bool {
        if self.rhs.attr != other.rhs.attr || self.rhs.threshold > other.rhs.threshold {
            return false;
        }
        self.lhs.iter().all(|c| {
            other
                .lhs
                .iter()
                .any(|oc| oc.attr == c.attr && oc.threshold <= c.threshold)
        })
    }

    /// Renders the RFD in the paper's notation using schema attribute names,
    /// e.g. `Name(≤8), Phone(≤0) → City(≤9)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> RfdDisplay<'a> {
        RfdDisplay { rfd: self, schema }
    }

    /// Parses the notation produced by [`Rfd::display`]. Accepts both `≤`
    /// and `<=`, and both `→` and `->`.
    ///
    /// # Errors
    /// Returns a human-readable message for malformed input or unknown
    /// attribute names.
    pub fn parse(s: &str, schema: &Schema) -> Result<Rfd, String> {
        let (lhs_s, rhs_s) = s
            .split_once("->")
            .or_else(|| s.split_once('→'))
            .ok_or_else(|| format!("missing '->' in RFD {s:?}"))?;
        let parse_constraint = |tok: &str| -> Result<Constraint, String> {
            let tok = tok.trim();
            let open = tok
                .find('(')
                .ok_or_else(|| format!("missing '(' in constraint {tok:?}"))?;
            let close = tok
                .rfind(')')
                .ok_or_else(|| format!("missing ')' in constraint {tok:?}"))?;
            let name = tok[..open].trim();
            let body = tok[open + 1..close]
                .trim()
                .trim_start_matches("<=")
                .trim_start_matches('≤')
                .trim();
            let attr = schema
                .index_of(name)
                .ok_or_else(|| format!("unknown attribute {name:?}"))?;
            let threshold: f64 = body
                .parse()
                .map_err(|_| format!("bad threshold {body:?} in {tok:?}"))?;
            if !threshold.is_finite() || threshold < 0.0 {
                return Err(format!("threshold must be finite and >= 0, got {body:?}"));
            }
            Ok(Constraint::new(attr, threshold))
        };
        let mut lhs = Vec::new();
        for tok in lhs_s.split(',') {
            if tok.trim().is_empty() {
                continue;
            }
            lhs.push(parse_constraint(tok)?);
        }
        if lhs.is_empty() {
            return Err(format!("empty LHS in RFD {s:?}"));
        }
        let rhs = parse_constraint(rhs_s)?;
        lhs.sort_by_key(|c| c.attr);
        if lhs.windows(2).any(|w| w[0].attr == w[1].attr) {
            return Err(format!("duplicate LHS attribute in RFD {s:?}"));
        }
        if lhs.iter().any(|c| c.attr == rhs.attr) {
            return Err(format!("RHS attribute also on LHS in RFD {s:?}"));
        }
        Ok(Rfd { lhs, rhs })
    }
}

/// Name-based builder for [`Rfd`], resolving attribute names against a
/// schema — the ergonomic way to write dependencies in application code:
///
/// ```
/// use renuver_data::{AttrType, Schema};
/// use renuver_rfd::model::RfdBuilder;
///
/// let schema = Schema::new([
///     ("Name", AttrType::Text),
///     ("City", AttrType::Text),
///     ("Phone", AttrType::Text),
/// ]).unwrap();
/// let rfd = RfdBuilder::new(&schema)
///     .lhs("Name", 6.0)
///     .lhs("City", 9.0)
///     .rhs("Phone", 0.0)
///     .unwrap();
/// assert_eq!(rfd.display(&schema).to_string(), "Name(≤6), City(≤9) → Phone(≤0)");
/// ```
pub struct RfdBuilder<'a> {
    schema: &'a Schema,
    lhs: Vec<Constraint>,
    error: Option<String>,
}

impl<'a> RfdBuilder<'a> {
    /// Starts a builder over `schema`.
    pub fn new(schema: &'a Schema) -> Self {
        RfdBuilder { schema, lhs: Vec::new(), error: None }
    }

    /// Adds an LHS constraint by attribute name. Errors (unknown name,
    /// duplicate attribute) are deferred to [`RfdBuilder::rhs`].
    pub fn lhs(mut self, attr: &str, threshold: f64) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.index_of(attr) {
            None => self.error = Some(format!("unknown attribute {attr:?}")),
            Some(id) if self.lhs.iter().any(|c| c.attr == id) => {
                self.error = Some(format!("duplicate LHS attribute {attr:?}"));
            }
            Some(id) => self.lhs.push(Constraint::new(id, threshold)),
        }
        self
    }

    /// Finishes the dependency with its RHS constraint.
    ///
    /// # Errors
    /// Reports any deferred LHS error, an unknown RHS name, an RHS that
    /// also appears on the LHS, or an empty LHS.
    pub fn rhs(self, attr: &str, threshold: f64) -> Result<Rfd, String> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let id = self
            .schema
            .index_of(attr)
            .ok_or_else(|| format!("unknown attribute {attr:?}"))?;
        if self.lhs.is_empty() {
            return Err("an RFD needs at least one LHS constraint".into());
        }
        if self.lhs.iter().any(|c| c.attr == id) {
            return Err(format!("RHS attribute {attr:?} also appears on the LHS"));
        }
        Ok(Rfd::new(self.lhs, Constraint::new(id, threshold)))
    }
}

/// Display adapter binding an [`Rfd`] to a [`Schema`] for attribute names.
pub struct RfdDisplay<'a> {
    rfd: &'a Rfd,
    schema: &'a Schema,
}

impl fmt::Display for RfdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_thr = |t: f64| {
            if t.fract() == 0.0 {
                format!("{}", t as i64)
            } else {
                format!("{t}")
            }
        };
        for (i, c) in self.rfd.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(≤{})", self.schema.name(c.attr), fmt_thr(c.threshold))?;
        }
        write!(
            f,
            " → {}(≤{})",
            self.schema.name(self.rfd.rhs.attr),
            fmt_thr(self.rfd.rhs.threshold)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::AttrType;

    fn schema() -> Schema {
        Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Phone", AttrType::Text),
            ("Type", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn construction_sorts_lhs() {
        let rfd = Rfd::new(
            vec![Constraint::new(2, 0.0), Constraint::new(0, 6.0)],
            Constraint::new(4, 0.0),
        );
        assert_eq!(rfd.lhs_attrs(), vec![0, 2]);
        assert_eq!(rfd.rhs_attr(), 4);
        assert_eq!(rfd.rhs_threshold(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty LHS")]
    fn empty_lhs_panics() {
        let _ = Rfd::new(vec![], Constraint::new(0, 1.0));
    }

    #[test]
    #[should_panic(expected = "RHS attribute")]
    fn rhs_on_lhs_panics() {
        let _ = Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(0, 1.0));
    }

    #[test]
    fn display_paper_notation() {
        let s = schema();
        let rfd = Rfd::new(
            vec![Constraint::new(0, 8.0), Constraint::new(2, 0.0)],
            Constraint::new(1, 9.0),
        );
        assert_eq!(rfd.display(&s).to_string(), "Name(≤8), Phone(≤0) → City(≤9)");
    }

    #[test]
    fn parse_round_trip() {
        let s = schema();
        let rfd = Rfd::new(
            vec![Constraint::new(0, 4.0)],
            Constraint::new(2, 1.0),
        );
        let text = rfd.display(&s).to_string();
        assert_eq!(Rfd::parse(&text, &s).unwrap(), rfd);
        // ASCII spelling too.
        assert_eq!(Rfd::parse("Name(<=4) -> Phone(<=1)", &s).unwrap(), rfd);
    }

    #[test]
    fn parse_rejects_malformed() {
        let s = schema();
        assert!(Rfd::parse("Name(<=4)", &s).is_err());
        assert!(Rfd::parse("Bogus(<=4) -> Phone(<=1)", &s).is_err());
        assert!(Rfd::parse("Name(<=x) -> Phone(<=1)", &s).is_err());
        assert!(Rfd::parse("-> Phone(<=1)", &s).is_err());
        assert!(Rfd::parse("Phone(<=1) -> Phone(<=1)", &s).is_err());
        assert!(Rfd::parse("Name(<=1), Name(<=2) -> Phone(<=1)", &s).is_err());
        assert!(Rfd::parse("Name(<=-3) -> Phone(<=1)", &s).is_err());
    }

    #[test]
    fn implication() {
        // Name(≤4) → Phone(≤1) implies Name(≤2), City(≤5) → Phone(≤3):
        // smaller LHS with looser thresholds, tighter RHS.
        let general = Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0));
        let specific = Rfd::new(
            vec![Constraint::new(0, 2.0), Constraint::new(1, 5.0)],
            Constraint::new(2, 3.0),
        );
        assert!(general.implies(&specific));
        assert!(!specific.implies(&general));
        // Not implied when the would-be implier's LHS threshold is tighter
        // than the implied RFD's: pairs at Name distance 2 are uncovered.
        let tight = Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(2, 1.0));
        assert!(!tight.implies(&specific));
        // Different RHS attribute: no implication.
        let other = Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(3, 1.0));
        assert!(!general.implies(&other));
    }

    #[test]
    fn implies_is_reflexive() {
        let rfd = Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0));
        assert!(rfd.implies(&rfd));
    }

    #[test]
    fn builder_happy_path_and_errors() {
        let s = schema();
        let rfd = RfdBuilder::new(&s)
            .lhs("Name", 4.0)
            .rhs("Phone", 1.0)
            .unwrap();
        assert_eq!(rfd.lhs_attrs(), vec![0]);
        assert_eq!(rfd.rhs_attr(), 2);

        assert!(RfdBuilder::new(&s).lhs("Bogus", 1.0).rhs("Phone", 1.0).is_err());
        assert!(RfdBuilder::new(&s).rhs("Phone", 1.0).is_err()); // empty LHS
        assert!(RfdBuilder::new(&s)
            .lhs("Name", 1.0)
            .lhs("Name", 2.0)
            .rhs("Phone", 1.0)
            .is_err());
        assert!(RfdBuilder::new(&s)
            .lhs("Phone", 1.0)
            .rhs("Phone", 1.0)
            .is_err());
        assert!(RfdBuilder::new(&s).lhs("Name", 1.0).rhs("Bogus", 1.0).is_err());
    }

    #[test]
    fn lhs_contains() {
        let rfd = Rfd::new(
            vec![Constraint::new(0, 8.0), Constraint::new(2, 0.0)],
            Constraint::new(1, 9.0),
        );
        assert!(rfd.lhs_contains(0));
        assert!(rfd.lhs_contains(2));
        assert!(!rfd.lhs_contains(1));
    }
}
