//! Validates a JSONL trace file against the documented schema: every
//! line must parse as JSON and round-trip through the parser with
//! exactly the fields its `kind` allows. CI runs this on a trace emitted
//! by `impute --trace-out` so the schema in `renuver_obs::schema` and
//! the emitters can never drift apart.
//!
//! Usage: `validate_trace <trace.jsonl>` — exits 0 and prints the line
//! count on success, exits 1 with the offending line number otherwise.

use std::process::ExitCode;

use renuver_obs::schema::validate_trace;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: validate_trace <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text) {
        Ok(lines) => {
            println!("{path}: {lines} lines valid");
            ExitCode::SUCCESS
        }
        Err((line, err)) => {
            eprintln!("{path}:{line}: {err}");
            ExitCode::FAILURE
        }
    }
}
