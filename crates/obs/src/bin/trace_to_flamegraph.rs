//! Converts a span JSONL trace (as written by `impute --trace-out`) to
//! the collapsed-stack format understood by standard flamegraph tooling:
//! one `root;child;leaf <self-microseconds>` line per unique stack.
//!
//! Usage: `trace_to_flamegraph <trace.jsonl> [out.folded]` — writes to
//! the given output path, or stdout when omitted. Pipe the output through
//! `flamegraph.pl` (or load it into speedscope) to render.

use std::process::ExitCode;

use renuver_obs::flamegraph::collapse_jsonl;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), out) = (args.next(), args.next()) else {
        eprintln!("usage: trace_to_flamegraph <trace.jsonl> [out.folded]");
        return ExitCode::FAILURE;
    };
    if args.next().is_some() {
        eprintln!("usage: trace_to_flamegraph <trace.jsonl> [out.folded]");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_to_flamegraph: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let folded = match collapse_jsonl(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_to_flamegraph: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(out_path) => match std::fs::write(&out_path, &folded) {
            Ok(()) => {
                eprintln!("wrote {} stacks to {out_path}", folded.lines().count());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("trace_to_flamegraph: cannot write {out_path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{folded}");
            ExitCode::SUCCESS
        }
    }
}
