//! Collapsed-stack export of span traces.
//!
//! Span-close records already carry everything a flamegraph needs — the
//! span's `label`, its `parent` span id, and its inclusive `dur_us`. This
//! module folds them into the collapsed-stack text format understood by
//! standard flamegraph tooling (`flamegraph.pl`, speedscope, inferno):
//! one line per unique stack, `root;child;leaf <self-microseconds>`.
//!
//! Durations are converted from inclusive to *self* time (a frame's
//! duration minus its closed children's durations) so the flame widths
//! add up instead of double-counting nested work. The same aggregation,
//! grouped per label instead of per stack, powers the per-phase budget
//! attribution in [`renuver_budget::BudgetReport`]-producing callers —
//! see [`phase_totals`].

use std::collections::HashMap;

use crate::{json, FieldValue, TraceRecord};

/// One closed span, extracted from a `kind: "span"` record.
#[derive(Debug, Clone)]
struct ClosedSpan {
    id: u64,
    label: String,
    parent: u64,
    dur_us: u64,
}

fn field_u64(rec: &TraceRecord, name: &str) -> Option<u64> {
    rec.fields.iter().find_map(|(n, v)| {
        (*n == name).then_some(match v {
            FieldValue::U64(x) => Some(*x),
            _ => None,
        })?
    })
}

fn field_str(rec: &TraceRecord, name: &str) -> Option<String> {
    rec.fields.iter().find_map(|(n, v)| {
        (*n == name).then_some(match v {
            FieldValue::Str(s) => Some((*s).to_string()),
            FieldValue::Text(s) => Some(s.clone()),
            _ => None,
        })?
    })
}

fn closed_spans(records: &[TraceRecord]) -> Vec<ClosedSpan> {
    records
        .iter()
        .filter(|r| r.kind == "span")
        .filter_map(|r| {
            Some(ClosedSpan {
                id: r.span,
                label: field_str(r, "label")?,
                parent: field_u64(r, "parent")?,
                dur_us: field_u64(r, "dur_us")?,
            })
        })
        .collect()
}

/// Self-time per span: inclusive duration minus the inclusive durations of
/// the span's closed children (saturating — clock skew between a parent
/// and its children must not underflow).
fn self_times(spans: &[ClosedSpan]) -> Vec<u64> {
    let mut child_total: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_total.entry(s.parent).or_insert(0) += s.dur_us;
        }
    }
    spans
        .iter()
        .map(|s| s.dur_us.saturating_sub(child_total.get(&s.id).copied().unwrap_or(0)))
        .collect()
}

/// Folds the span records of a trace into collapsed stacks:
/// `(stack, self_us)` pairs with `stack` being `;`-joined labels from the
/// root down, deduplicated (same stack → summed self time) and sorted by
/// stack for deterministic output. Non-span records are ignored; a span
/// whose parent never closed (e.g. a trace cut off mid-run) roots its
/// stack at the deepest closed ancestor.
pub fn collapse(records: &[TraceRecord]) -> Vec<(String, u64)> {
    let spans = closed_spans(records);
    let selfs = self_times(&spans);
    let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut folded: HashMap<String, u64> = HashMap::new();
    for (i, span) in spans.iter().enumerate() {
        let mut labels = vec![span.label.as_str()];
        let mut parent = span.parent;
        // Walk ancestors; a cycle in corrupt input is cut by the depth cap.
        let mut depth = 0;
        while parent != 0 && depth < 1024 {
            match by_id.get(&parent) {
                Some(&pi) => {
                    labels.push(spans[pi].label.as_str());
                    parent = spans[pi].parent;
                }
                None => break,
            }
            depth += 1;
        }
        labels.reverse();
        *folded.entry(labels.join(";")).or_insert(0) += selfs[i];
    }
    let mut out: Vec<(String, u64)> = folded.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// [`collapse`] rendered as the collapsed-stack text format: one
/// `stack self_us` line per unique stack.
pub fn collapse_to_string(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for (stack, us) in collapse(records) {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Self-time aggregated per span label — the "where did the time go"
/// breakdown attached to budget reports. Sorted by time, largest first
/// (ties by label, so the output is deterministic).
pub fn phase_totals(records: &[TraceRecord]) -> Vec<(String, u64)> {
    let spans = closed_spans(records);
    let selfs = self_times(&spans);
    let mut totals: HashMap<String, u64> = HashMap::new();
    for (i, span) in spans.iter().enumerate() {
        *totals.entry(span.label.clone()).or_insert(0) += selfs[i];
    }
    let mut out: Vec<(String, u64)> = totals.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Converts a span JSONL trace (as written by
/// [`crate::Tracer::write_jsonl`]) straight to collapsed-stack text.
/// Lines that are not well-formed span records (events, the trailing
/// `metrics` line) are skipped; a line that is not JSON at all is an
/// error — the input is probably not a trace file.
pub fn collapse_jsonl(text: &str) -> Result<String, String> {
    let mut records: Vec<TraceRecord> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("kind").and_then(|k| k.as_str()) != Some("span") {
            continue;
        }
        let (Some(span), Some(label), Some(parent), Some(dur_us)) = (
            v.get("span").and_then(|x| x.as_u64()),
            v.get("label").and_then(|x| x.as_str()),
            v.get("parent").and_then(|x| x.as_u64()),
            v.get("dur_us").and_then(|x| x.as_u64()),
        ) else {
            continue;
        };
        // Reconstruct a TraceRecord; the label is owned, not static.
        records.push(TraceRecord {
            ts_us: v.get("ts_us").and_then(|x| x.as_u64()).unwrap_or(0),
            kind: "span",
            span,
            fields: vec![
                ("label", FieldValue::Text(label.to_string())),
                ("parent", FieldValue::U64(parent)),
                ("dur_us", FieldValue::U64(dur_us)),
            ],
        });
    }
    Ok(collapse_to_string(&records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    /// Hand-written trace: root (100µs) with two children — oracle (60µs,
    /// itself holding a 40µs matrix fill) and cells (30µs) — exercising
    /// self-time subtraction at two depths.
    fn hand_written() -> Vec<TraceRecord> {
        let span = |id: u64, label: &'static str, parent: u64, dur_us: u64| TraceRecord {
            ts_us: 0,
            kind: "span",
            span: id,
            fields: vec![
                ("label", FieldValue::Str(label)),
                ("parent", FieldValue::U64(parent)),
                ("dur_us", FieldValue::U64(dur_us)),
            ],
        };
        vec![
            span(3, "distance::matrix_fill", 2, 40),
            span(2, "distance::oracle_build", 1, 60),
            span(4, "core::impute_cells", 1, 30),
            span(1, "core::impute", 0, 100),
            // An event record in between must be ignored.
            TraceRecord { ts_us: 5, kind: "cell", span: 4, fields: vec![] },
        ]
    }

    #[test]
    fn collapses_hand_written_trace_with_self_times() {
        let lines = collapse_to_string(&hand_written());
        let expected = "\
core::impute 10
core::impute;core::impute_cells 30
core::impute;distance::oracle_build 20
core::impute;distance::oracle_build;distance::matrix_fill 40
";
        assert_eq!(lines, expected);
    }

    #[test]
    fn phase_totals_rank_by_self_time() {
        let totals = phase_totals(&hand_written());
        assert_eq!(
            totals,
            vec![
                ("distance::matrix_fill".to_string(), 40),
                ("core::impute_cells".to_string(), 30),
                ("distance::oracle_build".to_string(), 20),
                ("core::impute".to_string(), 10),
            ]
        );
    }

    #[test]
    fn duplicate_stacks_merge() {
        let span = |id: u64, label: &'static str, parent: u64, dur: u64| TraceRecord {
            ts_us: 0,
            kind: "span",
            span: id,
            fields: vec![
                ("label", FieldValue::Str(label)),
                ("parent", FieldValue::U64(parent)),
                ("dur_us", FieldValue::U64(dur)),
            ],
        };
        // Two sibling spans with the same label fold into one stack line.
        let recs =
            vec![span(2, "chunk", 1, 7), span(3, "chunk", 1, 5), span(1, "root", 0, 20)];
        assert_eq!(
            collapse(&recs),
            vec![("root".to_string(), 8), ("root;chunk".to_string(), 12)]
        );
    }

    #[test]
    fn jsonl_round_trip_matches_in_memory_collapse() {
        let t = Tracer::enabled();
        {
            let root = t.span("core::impute");
            let _child = root.child("core::partition_keys");
        }
        let from_jsonl = collapse_jsonl(&t.to_jsonl()).unwrap();
        let in_memory = collapse_to_string(&t.records());
        assert_eq!(from_jsonl, in_memory);
        assert!(from_jsonl.contains("core::impute;core::partition_keys "), "{from_jsonl}");
    }

    #[test]
    fn non_trace_input_is_an_error() {
        assert!(collapse_jsonl("this is not json\n").is_err());
        // Valid JSON that is not a span record is skipped, not an error.
        assert_eq!(collapse_jsonl("{\"kind\":\"metrics\"}\n").unwrap(), "");
    }
}
