//! Minimal JSON writer + parser — just enough for the trace schema.
//!
//! The workspace has no serde (offline container), so the trace sink
//! hand-writes its JSON and this module provides the inverse: a strict
//! recursive-descent parser used by the schema validator and the tests
//! that round-trip emitted lines. It accepts exactly RFC 8259 JSON with
//! two deliberate simplifications: numbers are parsed through `f64`
//! (every number the tracer emits is exactly representable or was an
//! `f64` to begin with), and `\uXXXX` escapes outside the BMP must come
//! as surrogate pairs.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` — also what non-finite floats serialize to.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` — key order is not significant in JSON and
    /// a sorted map makes test assertions stable.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (a trace line must be exactly one object).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].first() != Some(&b'\\')
                                    || self.bytes[self.pos + 1..].first() != Some(&b'u')
                                {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("lone low surrogate")?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte at {}", self.pos));
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched;
                    // the input is a &str so they are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

/// Writes `s` as a JSON string (quoted, escaped) into `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number — or `null` when non-finite, since
/// JSON has no NaN/∞ (distances in this codebase can be both).
pub fn write_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "{\"a\":1}x", "\"\\q\"",
            "{\"a\":1,\"a\":2}", "01e", "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["", "plain", "q\"q", "back\\slash", "tab\t nl\n", "unicode €漢 🎉", "\u{1}"] {
            let mut out = String::new();
            write_str(&mut out, s);
            assert_eq!(parse(&out).unwrap().as_str(), Some(s), "via {out:?}");
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        assert_eq!(parse(r#""\ud83c\udf89""#).unwrap().as_str(), Some("🎉"));
        assert!(parse(r#""\ud83c""#).is_err(), "lone surrogate must fail");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        write_f64(&mut out, 0.5);
        assert_eq!(out, "0.5");
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
