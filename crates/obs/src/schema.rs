//! The trace-file schema: which kinds exist and which fields each kind
//! carries. This is the machine-checkable half of the contract DESIGN.md
//! documents; CI runs every emitted line through [`validate_line`] (via
//! the `validate_trace` binary) so the schema cannot drift silently.
//!
//! The schema is **closed**: a line with an unknown `kind`, a missing
//! required field, a mistyped field, or a field not listed for its kind
//! is an error. Every line carries the reserved keys `ts_us` (u64),
//! `kind` (string), and `span` (u64, 0 = outside any span).

use crate::json::{self, Value};

/// Field type expected by the schema.
#[derive(Debug, Clone, Copy)]
pub enum Ty {
    /// Non-negative integer.
    U64,
    /// Number or `null` (non-finite floats serialize as `null`).
    F64,
    /// Any string.
    Str,
    /// One of an enumerated set of strings.
    Enum(&'static [&'static str]),
    /// Boolean.
    Bool,
    /// Array of non-negative integers.
    U64Arr,
    /// Array of numbers-or-nulls.
    F64Arr,
    /// Object (nested; members unchecked).
    Obj,
}

/// Cell outcomes as they appear in `cell` records — mirrors
/// `renuver_core::CellOutcome`.
pub const OUTCOMES: &[&str] = &["imputed", "no_candidates", "skipped_budget", "cancelled"];

/// Dry-up reasons for cells that were not imputed — mirrors
/// `renuver_core::DryReason`.
pub const DRY_REASONS: &[&str] =
    &["no_active_rfds", "no_candidates", "all_rejected", "budget", "cancelled"];

/// Server lifecycle events as they appear in `server_event` records —
/// mirrors the emit sites in `renuver-serve` (registry, router, accept
/// loop) and the CLI recovery path.
pub const SERVER_EVENTS: &[&str] = &[
    "recovery",
    "swap",
    "compaction",
    "shard_degraded",
    "shard_healed",
    "shed",
    "read_timeout",
    "wal_degraded",
    "tune_started",
    "tune_finished",
    "tune_cancelled",
];

/// Why a tune run stopped — mirrors `renuver_tune::StopReason`.
pub const TUNE_STOPS: &[&str] = &["target", "converged", "budget", "cancelled", "max_iters"];

/// Schema version stamped (as `v`) on the serving-layer record kinds
/// (`access`, `server_event`) so consumers can detect field changes.
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// One kind's contract: `(kind, required fields, optional fields)`.
type KindSpec = (&'static str, &'static [(&'static str, Ty)], &'static [(&'static str, Ty)]);

/// The full schema. Kinds, per kind: required fields, then optional.
pub const SPEC: &[KindSpec] = &[
    // Span close: emitted when a span guard drops (children before
    // parents in the file; `parent` rebuilds the hierarchy).
    (
        "span",
        &[("label", Ty::Str), ("parent", Ty::U64), ("dur_us", Ty::U64)],
        &[],
    ),
    // Run bracketing, emitted by the engine / CLI.
    (
        "run_start",
        &[("subject", Ty::Str), ("rows", Ty::U64), ("attrs", Ty::U64)],
        &[("missing", Ty::U64), ("rfds", Ty::U64)],
    ),
    (
        "run_end",
        &[("subject", Ty::Str)],
        &[
            ("imputed", Ty::U64),
            ("unimputed", Ty::U64),
            ("missing", Ty::U64),
            ("rfds", Ty::U64),
        ],
    ),
    // One per column during oracle construction.
    (
        "oracle_column",
        &[
            ("attr", Ty::U64),
            ("mode", Ty::Enum(&["matrix", "direct", "numeric"])),
            ("distinct", Ty::U64),
        ],
        &[],
    ),
    // One per attribute during similarity-index construction.
    (
        "index_attr",
        &[("attr", Ty::U64), ("mode", Ty::Enum(&["text", "numeric", "unindexed"]))],
        &[],
    ),
    // One per missing cell: the outcome plus (when `--explain`-level
    // detail is on) the explain payload.
    (
        "cell",
        &[("row", Ty::U64), ("attr", Ty::U64), ("outcome", Ty::Enum(OUTCOMES))],
        &[
            ("clusters", Ty::U64),
            ("candidates", Ty::U64),
            ("donor_row", Ty::U64),
            ("via_rfd", Ty::U64),
            ("distance", Ty::F64),
            ("margin", Ty::F64),
            ("rfds", Ty::U64Arr),
            ("lhs_dists", Ty::F64Arr),
            ("reason", Ty::Enum(DRY_REASONS)),
            ("trip", Ty::Str),
        ],
    ),
    // The moment the budget first trips (from the budget trip hook).
    ("budget_trip", &[("trip", Ty::Str), ("phase", Ty::Str)], &[]),
    // End-of-run budget accounting.
    (
        "budget_report",
        &[("ops", Ty::U64), ("tripped", Ty::Bool)],
        &[("trip", Ty::Str), ("phase", Ty::Str)],
    ),
    // RFD discovery summary.
    (
        "discovery",
        &[("rfds", Ty::U64), ("truncated", Ty::Bool)],
        &[("lattice_cells", Ty::U64)],
    ),
    // One per lattice cell during discovery (recorded into per-thread
    // buffers, merged in chunk order).
    ("lattice_cell", &[("cell", Ty::U64), ("rfds", Ty::U64)], &[]),
    // The final line: the metrics registry snapshot.
    (
        "metrics",
        &[("counters", Ty::Obj), ("gauges", Ty::Obj), ("histograms", Ty::Obj)],
        &[],
    ),
    // One per shard fan-out leg of a traced sharded impute: cumulative
    // candidate-scan time attributed to that shard over the request.
    ("shard_leg", &[("shard", Ty::U64), ("scan_us", Ty::U64)], &[]),
    // One per served request: the flight recorder's access-log summary.
    // `phases` (budget phase self-times) is present when the request ran
    // with an enabled tracer (`?trace=1` or a limited budget); `shards`
    // lists the fan-out legs a traced sharded request touched.
    (
        "access",
        &[
            ("v", Ty::U64),
            ("id", Ty::Str),
            ("endpoint", Ty::Str),
            ("status", Ty::U64),
            ("latency_us", Ty::U64),
        ],
        &[
            ("bytes_in", Ty::U64),
            ("bytes_out", Ty::U64),
            ("phases", Ty::Obj),
            ("cells_imputed", Ty::U64),
            ("cells_missing", Ty::U64),
            ("shards", Ty::U64Arr),
            ("trace_events", Ty::U64),
        ],
    ),
    // Server lifecycle: recovery done, model swap (with the layout
    // generation when sharded+durable), compaction, shard degradation
    // and heal, accept-loop shed, read-deadline timeout, WAL fault trip.
    (
        "server_event",
        &[("v", Ty::U64), ("event", Ty::Enum(SERVER_EVENTS))],
        &[
            ("seq", Ty::U64),
            ("generation", Ty::U64),
            ("shard", Ty::U64),
            ("job", Ty::U64),
            ("detail", Ty::Str),
        ],
    ),
    // Tune-run bracketing: one `tune_start` per run with the masking
    // parameters that make the run reproducible.
    (
        "tune_start",
        &[("seed", Ty::U64), ("masked", Ty::U64), ("rfds", Ty::U64)],
        &[("target_f1", Ty::F64), ("max_iters", Ty::U64), ("sample_rate", Ty::F64)],
    ),
    // One per tune iteration: the held-out score, the per-attribute
    // threshold moves chosen from it (`attrs`/`old`/`new` in lockstep),
    // and the work deltas vs the previous iteration that justified them
    // (signed, so F64 — the schema has no signed-integer type).
    (
        "tune_iter",
        &[("iter", Ty::U64), ("f1", Ty::F64)],
        &[
            ("precision", Ty::F64),
            ("recall", Ty::F64),
            ("attrs", Ty::U64Arr),
            ("old", Ty::F64Arr),
            ("new", Ty::F64Arr),
            ("d_f1", Ty::F64),
            ("d_candidates", Ty::F64),
            ("d_verifications", Ty::F64),
            ("d_oracle_hits", Ty::F64),
        ],
    ),
    // Tune-run summary: iterations executed, best held-out F1, and why
    // the loop stopped.
    (
        "tune_end",
        &[("iters", Ty::U64), ("f1", Ty::F64), ("stop", Ty::Enum(TUNE_STOPS))],
        &[("best_iter", Ty::U64), ("partial", Ty::Bool)],
    ),
];

/// All kinds the schema knows.
pub fn kinds() -> Vec<&'static str> {
    SPEC.iter().map(|(k, _, _)| *k).collect()
}

fn check_type(v: &Value, ty: Ty) -> Result<(), String> {
    let ok = match ty {
        Ty::U64 => v.as_u64().is_some(),
        Ty::F64 => matches!(v, Value::Num(_) | Value::Null),
        Ty::Str => v.as_str().is_some(),
        Ty::Enum(allowed) => v.as_str().is_some_and(|s| allowed.contains(&s)),
        Ty::Bool => v.as_bool().is_some(),
        Ty::U64Arr => v
            .as_array()
            .is_some_and(|a| a.iter().all(|x| x.as_u64().is_some())),
        Ty::F64Arr => v
            .as_array()
            .is_some_and(|a| a.iter().all(|x| matches!(x, Value::Num(_) | Value::Null))),
        Ty::Obj => v.as_object().is_some(),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("expected {ty:?}, got {v:?}"))
    }
}

/// Validates one trace line against the schema.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    let obj = v.as_object().ok_or("line is not a JSON object")?;
    let kind = obj
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing string field \"kind\"")?;
    for reserved in ["ts_us", "span"] {
        let field = obj.get(reserved).ok_or_else(|| format!("missing field {reserved:?}"))?;
        check_type(field, Ty::U64).map_err(|e| format!("field {reserved:?}: {e}"))?;
    }
    let (_, required, optional) = SPEC
        .iter()
        .find(|(k, _, _)| *k == kind)
        .ok_or_else(|| format!("unknown kind {kind:?}"))?;
    for (name, ty) in *required {
        let field = obj
            .get(*name)
            .ok_or_else(|| format!("kind {kind:?}: missing required field {name:?}"))?;
        check_type(field, *ty).map_err(|e| format!("kind {kind:?}, field {name:?}: {e}"))?;
    }
    for (key, val) in obj {
        if matches!(key.as_str(), "ts_us" | "kind" | "span") {
            continue;
        }
        if required.iter().any(|(n, _)| n == key) {
            continue;
        }
        match optional.iter().find(|(n, _)| n == key) {
            Some((_, ty)) => check_type(val, *ty)
                .map_err(|e| format!("kind {kind:?}, field {key:?}: {e}"))?,
            None => return Err(format!("kind {kind:?}: unexpected field {key:?}")),
        }
    }
    Ok(())
}

/// Validates a whole JSONL trace. Returns the number of lines on
/// success, or `(line_number, error)` for the first invalid line.
pub fn validate_trace(text: &str) -> Result<usize, (usize, String)> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| (i + 1, e))?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_lines_pass() {
        for line in [
            r#"{"ts_us":1,"kind":"span","span":2,"label":"core::impute","parent":0,"dur_us":100}"#,
            r#"{"ts_us":1,"kind":"cell","span":3,"row":5,"attr":1,"outcome":"imputed","donor_row":7,"distance":0.5,"rfds":[0,2],"lhs_dists":[0,null]}"#,
            r#"{"ts_us":1,"kind":"cell","span":3,"row":5,"attr":1,"outcome":"no_candidates","reason":"all_rejected"}"#,
            r#"{"ts_us":1,"kind":"budget_trip","span":0,"trip":"DeadlineExceeded","phase":"core::cell"}"#,
            r#"{"ts_us":1,"kind":"metrics","span":0,"counters":{"a":1},"gauges":{},"histograms":{}}"#,
            r#"{"ts_us":1,"kind":"shard_leg","span":4,"shard":2,"scan_us":120}"#,
            r#"{"ts_us":1,"kind":"access","span":0,"v":1,"id":"9f3a-1","endpoint":"impute","status":200,"latency_us":850,"bytes_in":64,"bytes_out":512,"phases":{"core::scan":500},"cells_imputed":1,"cells_missing":2,"shards":[0,3]}"#,
            r#"{"ts_us":1,"kind":"access","span":0,"v":1,"id":"x","endpoint":"error","status":400,"latency_us":5}"#,
            r#"{"ts_us":1,"kind":"server_event","span":0,"v":1,"event":"swap","seq":9,"generation":2}"#,
            r#"{"ts_us":1,"kind":"server_event","span":0,"v":1,"event":"shard_degraded","shard":1,"detail":"wal append failed"}"#,
            r#"{"ts_us":1,"kind":"server_event","span":0,"v":1,"event":"shed"}"#,
            r#"{"ts_us":1,"kind":"server_event","span":0,"v":1,"event":"tune_started","job":3,"detail":"seed 42"}"#,
            r#"{"ts_us":1,"kind":"tune_start","span":1,"seed":42,"masked":12,"rfds":3,"target_f1":0.95,"max_iters":12}"#,
            r#"{"ts_us":1,"kind":"tune_iter","span":1,"iter":2,"f1":0.8,"precision":1.0,"recall":0.66,"attrs":[0,4],"old":[0,1],"new":[1,2],"d_f1":-0.1,"d_candidates":40,"d_verifications":-3,"d_oracle_hits":2}"#,
            r#"{"ts_us":1,"kind":"tune_end","span":1,"iters":5,"f1":0.97,"stop":"target","best_iter":4,"partial":false}"#,
        ] {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn invalid_lines_fail() {
        for (line, why) in [
            (r#"{"ts_us":1,"span":0}"#, "no kind"),
            (r#"{"ts_us":1,"kind":"mystery","span":0}"#, "unknown kind"),
            (r#"{"ts_us":1,"kind":"span","span":2,"label":"x","parent":0}"#, "missing dur_us"),
            (
                r#"{"ts_us":1,"kind":"cell","span":0,"row":1,"attr":0,"outcome":"guessed"}"#,
                "outcome not in enum",
            ),
            (
                r#"{"ts_us":1,"kind":"cell","span":0,"row":1,"attr":0,"outcome":"imputed","bogus":1}"#,
                "unexpected field",
            ),
            (
                r#"{"kind":"budget_trip","span":0,"trip":"x","phase":"y"}"#,
                "missing ts_us",
            ),
            (
                r#"{"ts_us":1,"kind":"cell","span":0,"row":-1,"attr":0,"outcome":"imputed"}"#,
                "negative row",
            ),
            ("not json", "parse error"),
            (
                r#"{"ts_us":1,"kind":"access","span":0,"v":1,"id":"x","endpoint":"impute","status":200}"#,
                "access missing latency_us",
            ),
            (
                r#"{"ts_us":1,"kind":"server_event","span":0,"v":1,"event":"rebooted"}"#,
                "event not in enum",
            ),
            (
                r#"{"ts_us":1,"kind":"server_event","span":0,"event":"shed"}"#,
                "missing schema version",
            ),
            (
                r#"{"ts_us":1,"kind":"tune_end","span":1,"iters":5,"f1":0.97,"stop":"bored"}"#,
                "stop reason not in enum",
            ),
            (
                r#"{"ts_us":1,"kind":"tune_start","span":1,"seed":42,"masked":12}"#,
                "tune_start missing rfds",
            ),
        ] {
            assert!(validate_line(line).is_err(), "accepted invalid line ({why}): {line}");
        }
    }

    #[test]
    fn whole_trace_validation_reports_line_numbers() {
        let good = r#"{"ts_us":1,"kind":"budget_trip","span":0,"trip":"x","phase":"y"}"#;
        let text = format!("{good}\n\n{good}\nbroken\n");
        match validate_trace(&text) {
            Err((line, _)) => assert_eq!(line, 4),
            Ok(n) => panic!("accepted {n} lines"),
        }
        assert_eq!(validate_trace(&format!("{good}\n{good}\n")), Ok(2));
    }

    #[test]
    fn every_kind_is_unique() {
        let mut ks = kinds();
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(ks.len(), SPEC.len());
    }
}
