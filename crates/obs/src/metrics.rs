//! Named counters, gauges, and histograms for end-of-run reporting.
//!
//! A [`Metrics`] registry hands out cheap cloneable handles backed by
//! `Arc<AtomicU64>`s. Hot paths register a handle once (outside the
//! loop) and increment with relaxed atomics — the registry lock is only
//! taken at registration and snapshot time. Counts are exact; only their
//! observation order across threads is not, which is fine because
//! metrics are aggregates, not a trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins value (thread counts, final ops totals, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values 0, 1, 2–3, 4–7, … up to `u64::MAX`.
const BUCKETS: usize = 65;

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram of `u64` observations (candidate counts per
/// cell, superset sizes, …). Tracks count / sum / max exactly and the
/// distribution at power-of-two resolution.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize; // 0 → bucket 0
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket, in
    /// ascending order. Bucket 0 holds exactly the value 0; bucket b > 0
    /// holds values in `[2^(b-1), 2^b)`, so its lower bound is `2^(b-1)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|b| {
                let n = self.0.buckets[b].load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let lower = if b == 0 { 0 } else { 1u64 << (b - 1) };
                Some((lower, n))
            })
            .collect()
    }
}

/// Ring slots covering one second each. Must exceed [`WINDOW_SECS`] so a
/// slot being recycled is always already outside the window.
const WINDOW_SLOTS: usize = 64;
/// Quantile snapshots cover the last this-many seconds.
pub const WINDOW_SECS: u64 = 60;
/// Slot stamp meaning "never written".
const SLOT_EMPTY: u64 = u64::MAX;

struct WindowSlot {
    /// Absolute second (since the instrument's epoch) this slot covers,
    /// or [`SLOT_EMPTY`].
    stamp: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

struct WindowedInner {
    epoch: Instant,
    total: Histogram,
    slots: [WindowSlot; WINDOW_SLOTS],
}

/// A latency histogram with two views: an all-time log2 [`Histogram`]
/// and a ring of per-second slots over which rolling-window quantiles
/// (p50/p95/p99 over the last [`WINDOW_SECS`] seconds) are computed on
/// demand. Observation is lock-free; the slot covering the current
/// second is claimed with a stamp CAS, whose loser at a second boundary
/// may drop a handful of counts from the window view (never from the
/// all-time view) — an accepted smudge for an approximate quantile.
///
/// Quantiles are reported at the log2 bucket resolution: the returned
/// value is the *upper bound* of the bucket containing the target rank,
/// so `quantile(0.5)` of observations all equal to 300 reports 511.
#[derive(Clone)]
pub struct WindowedHistogram(Arc<WindowedInner>);

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram")
            .field("count", &self.0.total.count())
            .field("p50", &self.quantile(0.5))
            .finish()
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram(Arc::new(WindowedInner {
            epoch: Instant::now(),
            total: Histogram::default(),
            slots: std::array::from_fn(|_| WindowSlot {
                stamp: AtomicU64::new(SLOT_EMPTY),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }))
    }
}

/// Upper bound of log2 bucket `b`: bucket 0 holds exactly 0, bucket
/// b > 0 holds `[2^(b-1), 2^b)`.
fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        _ if b >= 64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl WindowedHistogram {
    /// Records one observation into the all-time histogram and the
    /// current second's window slot.
    pub fn observe(&self, v: u64) {
        self.0.total.observe(v);
        let sec = self.0.epoch.elapsed().as_secs();
        let slot = &self.0.slots[(sec % WINDOW_SLOTS as u64) as usize];
        let stamp = slot.stamp.load(Ordering::Acquire);
        if stamp != sec {
            // Claim the slot for this second; the winner resets it.
            // Losers that raced an older stamp re-check and fall through
            // (the slot is either ours now or was claimed for `sec` by
            // another thread — both fine to add into).
            if slot
                .stamp
                .compare_exchange(stamp, sec, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for b in &slot.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                slot.count.store(0, Ordering::Relaxed);
                slot.sum.store(0, Ordering::Relaxed);
            } else if slot.stamp.load(Ordering::Acquire) != sec {
                // A different second won the slot; count only all-time.
                return;
            }
        }
        let bucket = (64 - v.leading_zeros()) as usize;
        slot.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The all-time histogram view (shares storage with this handle).
    pub fn all_time(&self) -> Histogram {
        self.0.total.clone()
    }

    /// Per-bucket counts and the total over the live window.
    fn window_buckets(&self) -> ([u64; BUCKETS], u64, u64) {
        let now = self.0.epoch.elapsed().as_secs();
        let oldest = now.saturating_sub(WINDOW_SECS.saturating_sub(1));
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0;
        let mut sum = 0;
        for slot in &self.0.slots {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == SLOT_EMPTY || stamp < oldest || stamp > now {
                continue;
            }
            for (b, n) in slot.buckets.iter().enumerate() {
                buckets[b] += n.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += slot.sum.load(Ordering::Relaxed);
        }
        (buckets, count, sum)
    }

    /// Number of observations inside the window.
    pub fn window_count(&self) -> u64 {
        self.window_buckets().1
    }

    /// The `q`-quantile (`0 < q <= 1`) over the window, as the upper
    /// bound of the log2 bucket holding the target rank. 0 when the
    /// window is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let (buckets, count, _) = self.window_buckets();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0;
        for (b, n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// `(p50, p95, p99)` over the window in one pass.
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
    windows: BTreeMap<&'static str, WindowedHistogram>,
}

/// The registry. Cloning shares the underlying maps; two clones register
/// and read the same instruments.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<Registry>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Metrics")
            .field("counters", &reg.counters.len())
            .field("gauges", &reg.gauges.len())
            .field("histograms", &reg.histograms.len())
            .finish()
    }
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Returns the counter named `name`, creating it at 0 on first use.
    /// Same name → same underlying counter, across clones.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .counters
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it at 0 on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .gauges
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .histograms
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the windowed (rolling-quantile) histogram named `name`,
    /// creating it empty on first use.
    pub fn windowed(&self, name: &'static str) -> WindowedHistogram {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .windows
            .entry(name)
            .or_default()
            .clone()
    }

    /// Serializes the registry as the trace file's final line:
    /// `{"ts_us":…,"kind":"metrics","span":0,"counters":{…},"gauges":{…},
    /// "histograms":{name:{"count":…,"sum":…,"max":…,"buckets":[[ub,n],…]}}}`.
    pub fn to_json_line(&self, ts_us: u64) -> String {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let _ = write!(out, "{{\"ts_us\":{ts_us},\"kind\":\"metrics\",\"span\":0,\"counters\":{{");
        for (i, (name, c)) in reg.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in reg.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{}", g.get());
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &reg.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            json::write_str(&mut out, name);
            let _ = write!(out, ":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[", h.count(), h.sum(), h.max());
            for (j, (upper, n)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{n}]");
            }
            out.push_str("]}");
        }
        // Windowed histograms join the same object: all-time moments plus
        // the rolling-window quantile snapshot.
        for (name, w) in &reg.windows {
            if !first {
                out.push(',');
            }
            first = false;
            let h = w.all_time();
            let (p50, p95, p99) = w.quantiles();
            json::write_str(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"window_secs\":{WINDOW_SECS},\"window_count\":{},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}}}",
                h.count(),
                h.sum(),
                h.max(),
                w.window_count(),
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders a human-readable summary table (the `--metrics` output).
    /// Instruments appear in name order; empty sections are omitted.
    pub fn render_table(&self) -> String {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let name_w = reg
            .counters
            .keys()
            .chain(reg.gauges.keys())
            .chain(reg.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        if !reg.counters.is_empty() || !reg.gauges.is_empty() {
            let _ = writeln!(out, "{:<name_w$}  {:>12}", "metric", "value");
            let _ = writeln!(out, "{}  {}", "-".repeat(name_w), "-".repeat(12));
            for (name, c) in &reg.counters {
                let _ = writeln!(out, "{name:<name_w$}  {:>12}", c.get());
            }
            for (name, g) in &reg.gauges {
                let _ = writeln!(out, "{name:<name_w$}  {:>12}", g.get());
            }
        }
        if !reg.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8} {:>10} {:>8}",
                "histogram", "count", "mean", "max"
            );
            let _ = writeln!(out, "{}  {}", "-".repeat(name_w), "-".repeat(28));
            for (name, h) in &reg.histograms {
                let _ = writeln!(
                    out,
                    "{name:<name_w$}  {:>8} {:>10.2} {:>8}",
                    h.count(),
                    h.mean(),
                    h.max()
                );
            }
        }
        if !reg.windows.is_empty() {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8} {:>8} {:>8} {:>8} {:>8}",
                format!("latency ({WINDOW_SECS}s window)"),
                "count",
                "p50",
                "p95",
                "p99",
                "max"
            );
            let _ = writeln!(out, "{}  {}", "-".repeat(name_w), "-".repeat(44));
            for (name, w) in &reg.windows {
                let (p50, p95, p99) = w.quantiles();
                let _ = writeln!(
                    out,
                    "{name:<name_w$}  {:>8} {:>8} {:>8} {:>8} {:>8}",
                    w.all_time().count(),
                    p50,
                    p95,
                    p99,
                    w.all_time().max()
                );
            }
        }
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`). Dotted instrument names become
    /// underscore-separated metric names; plain and windowed histograms
    /// render as native Prometheus histograms with cumulative `le`
    /// buckets at the log2 bucket upper bounds.
    pub fn render_prometheus(&self) -> String {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, c) in &reg.counters {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in &reg.gauges {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        let plain = reg.histograms.iter().map(|(n, h)| (*n, h.clone()));
        let windowed = reg.windows.iter().map(|(n, w)| (*n, w.all_time()));
        for (name, h) in plain.chain(windowed) {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (lower, n) in h.nonzero_buckets() {
                cumulative += n;
                let le = if lower == 0 { 0 } else { lower.saturating_mul(2) - 1 };
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

/// Maps a dotted instrument name onto the Prometheus name charset
/// `[a-zA-Z0-9_:]` (leading digits get an underscore prefix).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        match ch {
            'a'..='z' | 'A'..='Z' | ':' | '_' => out.push(ch),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(ch);
            }
            _ => out.push('_'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_instrument() {
        let m = Metrics::new();
        let a = m.counter("oracle.matrix_hits");
        let b = m.clone().counter("oracle.matrix_hits");
        a.inc();
        b.add(2);
        assert_eq!(m.counter("oracle.matrix_hits").get(), 3);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let m = Metrics::new();
        let h = m.histogram("core.candidates_per_cell");
        for v in [0, 1, 1, 3, 8] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 2.6).abs() < 1e-12);
        // 0 → bucket 0 (ub 0); 1,1 → ub 1; 3 → ub 2; 8 → ub 8.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (2, 1), (8, 1)]);
    }

    #[test]
    fn json_line_parses_and_carries_everything() {
        let m = Metrics::new();
        m.counter("a.hits").add(7);
        m.gauge("b.threads").set(4);
        m.histogram("c.sizes").observe(5);
        let line = m.to_json_line(123);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").and_then(json::Value::as_str), Some("metrics"));
        assert_eq!(v.get("ts_us").and_then(json::Value::as_u64), Some(123));
        assert_eq!(v.get("counters").unwrap().get("a.hits").and_then(json::Value::as_u64), Some(7));
        assert_eq!(v.get("gauges").unwrap().get("b.threads").and_then(json::Value::as_u64), Some(4));
        let h = v.get("histograms").unwrap().get("c.sizes").unwrap();
        assert_eq!(h.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(h.get("sum").and_then(json::Value::as_u64), Some(5));
    }

    #[test]
    fn windowed_histogram_quantiles_cover_recent_observations() {
        let m = Metrics::new();
        let w = m.windowed("serve.latency.impute.2xx");
        assert_eq!(w.quantile(0.5), 0, "empty window reports 0");
        for _ in 0..90 {
            w.observe(300); // bucket [256, 512) → upper bound 511
        }
        for _ in 0..10 {
            w.observe(5_000); // bucket [4096, 8192) → upper bound 8191
        }
        assert_eq!(w.window_count(), 100);
        assert_eq!(w.quantile(0.50), 511);
        assert_eq!(w.quantile(0.95), 8191);
        assert_eq!(w.quantile(0.99), 8191);
        assert_eq!(w.all_time().count(), 100);
        assert_eq!(w.all_time().max(), 5_000);
        // Same name → same instrument, like every other registry entry.
        assert_eq!(m.windowed("serve.latency.impute.2xx").window_count(), 100);
    }

    #[test]
    fn windowed_histogram_joins_the_json_metrics_line() {
        let m = Metrics::new();
        m.windowed("w.lat").observe(100);
        m.histogram("h.plain").observe(3);
        let v = json::parse(&m.to_json_line(9)).unwrap();
        let w = v.get("histograms").unwrap().get("w.lat").unwrap();
        assert_eq!(w.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(w.get("window_count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(w.get("p50").and_then(json::Value::as_u64), Some(127));
        assert!(v.get("histograms").unwrap().get("h.plain").is_some());
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let m = Metrics::new();
        m.counter("http.requests").add(3);
        m.gauge("serve.shard0.rows").set(12);
        m.windowed("serve.latency.impute.2xx").observe(300);
        m.windowed("serve.latency.impute.2xx").observe(5);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE http_requests counter\nhttp_requests 3\n"), "{text}");
        assert!(text.contains("# TYPE serve_shard0_rows gauge\nserve_shard0_rows 12\n"));
        assert!(text.contains("# TYPE serve_latency_impute_2xx histogram"), "{text}");
        assert!(text.contains("serve_latency_impute_2xx_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("serve_latency_impute_2xx_bucket{le=\"511\"} 2\n"));
        assert!(text.contains("serve_latency_impute_2xx_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_latency_impute_2xx_sum 305\n"));
        assert!(text.contains("serve_latency_impute_2xx_count 2\n"));
        // Every line is `# ...` or `name[{labels}] value` with a legal name.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample value: {line}");
            let name = name_part.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name.chars().next().unwrap().is_ascii_alphabetic()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name: {line}"
            );
        }
    }

    #[test]
    fn table_lists_instruments_in_name_order() {
        let m = Metrics::new();
        m.counter("z.last").inc();
        m.counter("a.first").inc();
        m.histogram("h.sizes").observe(2);
        let table = m.render_table();
        let a = table.find("a.first").unwrap();
        let z = table.find("z.last").unwrap();
        assert!(a < z);
        assert!(table.contains("h.sizes"));
    }
}
