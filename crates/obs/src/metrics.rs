//! Named counters, gauges, and histograms for end-of-run reporting.
//!
//! A [`Metrics`] registry hands out cheap cloneable handles backed by
//! `Arc<AtomicU64>`s. Hot paths register a handle once (outside the
//! loop) and increment with relaxed atomics — the registry lock is only
//! taken at registration and snapshot time. Counts are exact; only their
//! observation order across threads is not, which is fine because
//! metrics are aggregates, not a trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins value (thread counts, final ops totals, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values 0, 1, 2–3, 4–7, … up to `u64::MAX`.
const BUCKETS: usize = 65;

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram of `u64` observations (candidate counts per
/// cell, superset sizes, …). Tracks count / sum / max exactly and the
/// distribution at power-of-two resolution.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize; // 0 → bucket 0
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket, in
    /// ascending order. Bucket 0 holds exactly the value 0; bucket b > 0
    /// holds values in `[2^(b-1), 2^b)`, so its lower bound is `2^(b-1)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|b| {
                let n = self.0.buckets[b].load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let lower = if b == 0 { 0 } else { 1u64 << (b - 1) };
                Some((lower, n))
            })
            .collect()
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// The registry. Cloning shares the underlying maps; two clones register
/// and read the same instruments.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<Registry>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Metrics")
            .field("counters", &reg.counters.len())
            .field("gauges", &reg.gauges.len())
            .field("histograms", &reg.histograms.len())
            .finish()
    }
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Returns the counter named `name`, creating it at 0 on first use.
    /// Same name → same underlying counter, across clones.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .counters
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it at 0 on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .gauges
            .entry(name)
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .histograms
            .entry(name)
            .or_default()
            .clone()
    }

    /// Serializes the registry as the trace file's final line:
    /// `{"ts_us":…,"kind":"metrics","span":0,"counters":{…},"gauges":{…},
    /// "histograms":{name:{"count":…,"sum":…,"max":…,"buckets":[[ub,n],…]}}}`.
    pub fn to_json_line(&self, ts_us: u64) -> String {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let _ = write!(out, "{{\"ts_us\":{ts_us},\"kind\":\"metrics\",\"span\":0,\"counters\":{{");
        for (i, (name, c)) in reg.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in reg.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{}", g.get());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in reg.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            let _ = write!(out, ":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[", h.count(), h.sum(), h.max());
            for (j, (upper, n)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders a human-readable summary table (the `--metrics` output).
    /// Instruments appear in name order; empty sections are omitted.
    pub fn render_table(&self) -> String {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let name_w = reg
            .counters
            .keys()
            .chain(reg.gauges.keys())
            .chain(reg.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        if !reg.counters.is_empty() || !reg.gauges.is_empty() {
            let _ = writeln!(out, "{:<name_w$}  {:>12}", "metric", "value");
            let _ = writeln!(out, "{}  {}", "-".repeat(name_w), "-".repeat(12));
            for (name, c) in &reg.counters {
                let _ = writeln!(out, "{name:<name_w$}  {:>12}", c.get());
            }
            for (name, g) in &reg.gauges {
                let _ = writeln!(out, "{name:<name_w$}  {:>12}", g.get());
            }
        }
        if !reg.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8} {:>10} {:>8}",
                "histogram", "count", "mean", "max"
            );
            let _ = writeln!(out, "{}  {}", "-".repeat(name_w), "-".repeat(28));
            for (name, h) in &reg.histograms {
                let _ = writeln!(
                    out,
                    "{name:<name_w$}  {:>8} {:>10.2} {:>8}",
                    h.count(),
                    h.mean(),
                    h.max()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_instrument() {
        let m = Metrics::new();
        let a = m.counter("oracle.matrix_hits");
        let b = m.clone().counter("oracle.matrix_hits");
        a.inc();
        b.add(2);
        assert_eq!(m.counter("oracle.matrix_hits").get(), 3);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let m = Metrics::new();
        let h = m.histogram("core.candidates_per_cell");
        for v in [0, 1, 1, 3, 8] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 2.6).abs() < 1e-12);
        // 0 → bucket 0 (ub 0); 1,1 → ub 1; 3 → ub 2; 8 → ub 8.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (2, 1), (8, 1)]);
    }

    #[test]
    fn json_line_parses_and_carries_everything() {
        let m = Metrics::new();
        m.counter("a.hits").add(7);
        m.gauge("b.threads").set(4);
        m.histogram("c.sizes").observe(5);
        let line = m.to_json_line(123);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").and_then(json::Value::as_str), Some("metrics"));
        assert_eq!(v.get("ts_us").and_then(json::Value::as_u64), Some(123));
        assert_eq!(v.get("counters").unwrap().get("a.hits").and_then(json::Value::as_u64), Some(7));
        assert_eq!(v.get("gauges").unwrap().get("b.threads").and_then(json::Value::as_u64), Some(4));
        let h = v.get("histograms").unwrap().get("c.sizes").unwrap();
        assert_eq!(h.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(h.get("sum").and_then(json::Value::as_u64), Some(5));
    }

    #[test]
    fn table_lists_instruments_in_name_order() {
        let m = Metrics::new();
        m.counter("z.last").inc();
        m.counter("a.first").inc();
        m.histogram("h.sizes").observe(2);
        let table = m.render_table();
        let a = table.find("a.first").unwrap();
        let z = table.find("z.last").unwrap();
        assert!(a < z);
        assert!(table.contains("h.sizes"));
    }
}
