//! Structured tracing and run metrics for the imputation pipeline.
//!
//! Zero external dependencies (the build environment is offline — this
//! crate is std-only, like `renuver-budget`). Three pieces:
//!
//! * [`Tracer`] — a cheaply cloneable handle that records timestamped
//!   events and hierarchical [`Span`]s. A disabled tracer (the default)
//!   is a `None` inside and every operation short-circuits before
//!   building any payload, so instrumented hot paths cost one branch.
//! * [`Metrics`] — a registry of named counters / gauges / histograms.
//!   Handles are `Arc<Atomic…>` clones, so hot loops cache a handle once
//!   and increment with relaxed atomics.
//! * the JSONL sink ([`Tracer::write_jsonl`]) plus a hand-rolled JSON
//!   parser ([`json`]) and schema validator ([`schema`]) used by the
//!   `validate_trace` binary and CI.
//!
//! # Determinism
//!
//! Trace *timings* are wall-clock and never deterministic; trace
//! *structure* (which events, in which order, with which fields) is.
//! Parallel sections record into per-thread [`LocalBuffer`]s that the
//! owner absorbs in chunk-index order ([`Tracer::absorb_ordered`]) — the
//! same ordered-chunk discipline the rayon stub uses for results — so
//! event order does not depend on thread interleaving.
//!
//! # Schema
//!
//! Every line of a trace file is one JSON object with at least
//! `{"ts_us": <u64>, "kind": <str>}`. The full per-kind field contract
//! lives in [`schema`] and is documented in DESIGN.md ("Observability").

pub mod eventlog;
pub mod flamegraph;
pub mod json;
pub mod metrics;
pub mod schema;

pub use eventlog::EventLog;
pub use metrics::{Counter, Gauge, Histogram, Metrics, WindowedHistogram};

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A single field value attached to a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (row ids, counts, span ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float — serialized as `null` when non-finite (JSON has no NaN).
    F64(f64),
    /// Static string (labels, outcome names, modes).
    Str(&'static str),
    /// Owned string (values that are not compile-time constants).
    Text(String),
    /// Boolean flag.
    Bool(bool),
    /// Array of unsigned integers (e.g. the sigma indices of the RFDs
    /// that generated candidates for a cell).
    U64s(Vec<u64>),
    /// Array of floats (e.g. a winning candidate's LHS distance vector).
    F64s(Vec<f64>),
    /// String-keyed map of unsigned integers, serialized as a JSON
    /// object (e.g. an access-log line's per-phase self-times).
    U64Map(Vec<(String, u64)>),
}

/// Shorthand used by instrumentation sites: a named field.
pub type Field = (&'static str, FieldValue);

/// One recorded event. `span` is the id of the enclosing span (0 = root /
/// no span). Span-close records use `kind: "span"` and carry `label`,
/// `parent`, and `dur_us` fields.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Microseconds since the tracer's epoch (monotonic clock).
    pub ts_us: u64,
    /// Event kind — one of the kinds enumerated in [`schema::KINDS`].
    pub kind: &'static str,
    /// Id of the enclosing span (0 when emitted outside any span).
    pub span: u64,
    /// Named payload fields; flattened into the JSON object.
    pub fields: Vec<Field>,
}

impl TraceRecord {
    /// This record as one schema-shaped JSON object (no trailing
    /// newline) — the same serialization [`Tracer::to_jsonl`] uses.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_record(&mut out, self);
        out
    }
}

struct Inner {
    epoch: Instant,
    next_span: AtomicU64,
    records: Mutex<Vec<TraceRecord>>,
    metrics: Metrics,
}

/// Handle to the trace buffer. `Tracer::default()` is disabled: every
/// method short-circuits on a `None` check and field closures are never
/// invoked, so a no-op tracer adds near-zero overhead to the hot paths.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// An enabled tracer with a fresh buffer, span counter, and metrics
    /// registry.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                records: Mutex::new(Vec::new()),
                metrics: Metrics::new(),
            })),
        }
    }

    /// A disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// `true` when events are being recorded. Instrumentation sites that
    /// need to precompute payloads (rather than pass a closure to
    /// [`Tracer::event`]) should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry backing this tracer. Disabled tracers return
    /// a detached registry whose handles still work (increments go
    /// nowhere observable) so callers never need a second code path.
    pub fn metrics(&self) -> Metrics {
        match &self.inner {
            Some(inner) => inner.metrics.clone(),
            None => Metrics::new(),
        }
    }

    /// Records an event under `span`. The field closure only runs when
    /// the tracer is enabled — pass the payload construction in it.
    #[inline]
    pub fn event(&self, kind: &'static str, span: u64, fields: impl FnOnce() -> Vec<Field>) {
        if let Some(inner) = &self.inner {
            let rec = TraceRecord {
                ts_us: inner.epoch.elapsed().as_micros() as u64,
                kind,
                span,
                fields: fields(),
            };
            inner.records.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
        }
    }

    /// Opens a span. Returns an inert guard when disabled. The span
    /// record (with `dur_us`) is emitted when the guard drops, so child
    /// spans appear before their parents in the file; `parent` links the
    /// hierarchy back together.
    pub fn span(&self, label: &'static str) -> Span {
        self.span_under(label, 0)
    }

    /// Opens a span as a child of `parent` (a span id from [`Span::id`]).
    pub fn span_under(&self, label: &'static str, parent: u64) -> Span {
        match &self.inner {
            Some(inner) => Span {
                tracer: self.clone(),
                label,
                id: inner.next_span.fetch_add(1, Ordering::Relaxed),
                parent,
                start: Some(Instant::now()),
            },
            None => Span { tracer: Tracer::disabled(), label, id: 0, parent: 0, start: None },
        }
    }

    /// Absorbs per-thread buffers **in the order given**. Callers must
    /// pass buffers in chunk-index order (the same order the rayon stub
    /// merges results) so the trace is independent of thread scheduling.
    pub fn absorb_ordered(&self, buffers: impl IntoIterator<Item = LocalBuffer>) {
        if let Some(inner) = &self.inner {
            let mut records = inner.records.lock().unwrap_or_else(|e| e.into_inner());
            for buf in buffers {
                records.extend(buf.records);
            }
        }
    }

    /// Snapshot of all records so far (cloned; the buffer keeps growing).
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => inner.records.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            None => Vec::new(),
        }
    }

    /// Serializes every record (plus a final `metrics` line) as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.records() {
            write_record(&mut out, &rec);
            out.push('\n');
        }
        if let Some(inner) = &self.inner {
            let ts = inner.epoch.elapsed().as_micros() as u64;
            out.push_str(&inner.metrics.to_json_line(ts));
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL trace to `path`. Returns the number of lines.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<usize> {
        let text = self.to_jsonl();
        let lines = text.lines().count();
        std::fs::write(path, text)?;
        Ok(lines)
    }
}

/// RAII span guard: emits a `kind: "span"` record with `dur_us` on drop.
pub struct Span {
    tracer: Tracer,
    label: &'static str,
    id: u64,
    parent: u64,
    start: Option<Instant>,
}

impl Span {
    /// This span's id — pass to [`Tracer::span_under`] or
    /// [`Tracer::event`] to attach children / events to it. 0 when the
    /// tracer is disabled.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span.
    pub fn child(&self, label: &'static str) -> Span {
        self.tracer.span_under(label, self.id)
    }

    /// Records an event inside this span.
    #[inline]
    pub fn event(&self, kind: &'static str, fields: impl FnOnce() -> Vec<Field>) {
        self.tracer.event(kind, self.id, fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_us = start.elapsed().as_micros() as u64;
            let label = self.label;
            let parent = self.parent;
            self.tracer.event("span", self.id, || {
                vec![
                    ("label", FieldValue::Str(label)),
                    ("parent", FieldValue::U64(parent)),
                    ("dur_us", FieldValue::U64(dur_us)),
                ]
            });
        }
    }
}

/// A per-thread record buffer for parallel sections: workers push into
/// their own buffer (no lock contention), and the owner merges buffers in
/// chunk-index order via [`Tracer::absorb_ordered`]. Timestamps are
/// stamped relative to the parent tracer's epoch at absorption time would
/// be wrong — they are stamped at push time against the epoch captured
/// when the buffer was created, so timings stay monotonic per buffer.
#[derive(Debug, Default)]
pub struct LocalBuffer {
    epoch: Option<Instant>,
    records: Vec<TraceRecord>,
}

impl LocalBuffer {
    /// A buffer bound to `tracer`'s epoch. For a disabled tracer the
    /// buffer records nothing.
    pub fn new(tracer: &Tracer) -> Self {
        LocalBuffer {
            epoch: tracer.inner.as_ref().map(|i| i.epoch),
            records: Vec::new(),
        }
    }

    /// Records an event under `span`; the closure only runs when the
    /// parent tracer was enabled.
    #[inline]
    pub fn event(&mut self, kind: &'static str, span: u64, fields: impl FnOnce() -> Vec<Field>) {
        if let Some(epoch) = self.epoch {
            self.records.push(TraceRecord {
                ts_us: epoch.elapsed().as_micros() as u64,
                kind,
                span,
                fields: fields(),
            });
        }
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Serializes one record as a single-line JSON object: the reserved keys
/// `ts_us`, `kind`, `span`, then the payload fields in recorded order.
fn write_record(out: &mut String, rec: &TraceRecord) {
    let _ = write!(out, "{{\"ts_us\":{},\"kind\":", rec.ts_us);
    json::write_str(out, rec.kind);
    let _ = write!(out, ",\"span\":{}", rec.span);
    for (name, value) in &rec.fields {
        out.push(',');
        json::write_str(out, name);
        out.push(':');
        write_value(out, value);
    }
    out.push('}');
}

fn write_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => json::write_f64(out, *v),
        FieldValue::Str(s) => json::write_str(out, s),
        FieldValue::Text(s) => json::write_str(out, s),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::U64s(vs) => {
            out.push('[');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        FieldValue::F64s(vs) => {
            out.push('[');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_f64(out, *v);
            }
            out.push(']');
        }
        FieldValue::U64Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(out, k);
                out.push(':');
                let _ = write!(out, "{v}");
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_skips_closures() {
        let t = Tracer::disabled();
        let mut ran = false;
        t.event("cell", 0, || {
            ran = true;
            vec![]
        });
        assert!(!ran, "field closure must not run when disabled");
        assert!(t.records().is_empty());
        assert_eq!(t.to_jsonl(), "");
        let span = t.span("core::impute");
        assert_eq!(span.id(), 0);
        drop(span);
        assert!(t.records().is_empty());
    }

    #[test]
    fn span_hierarchy_links_parent_ids() {
        let t = Tracer::enabled();
        {
            let root = t.span("core::impute");
            let child = root.child("core::oracle_build");
            child.event("oracle_column", || vec![("attr", FieldValue::U64(0))]);
            drop(child);
        }
        let recs = t.records();
        // oracle_column, span(child), span(root) — children close first.
        assert_eq!(recs.iter().map(|r| r.kind).collect::<Vec<_>>(), ["oracle_column", "span", "span"]);
        let child_span = &recs[1];
        let root_span = &recs[2];
        let parent_of_child = child_span
            .fields
            .iter()
            .find(|(n, _)| *n == "parent")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(parent_of_child, FieldValue::U64(root_span.span));
        assert_eq!(recs[0].span, child_span.span);
    }

    #[test]
    fn absorb_ordered_is_deterministic_in_buffer_order() {
        let t = Tracer::enabled();
        let mut bufs: Vec<LocalBuffer> = (0..4).map(|_| LocalBuffer::new(&t)).collect();
        // Simulate out-of-order thread completion: push in reverse.
        for (i, buf) in bufs.iter_mut().enumerate().rev() {
            buf.event("lattice_cell", 0, || vec![("chunk", FieldValue::U64(i as u64))]);
        }
        t.absorb_ordered(bufs);
        let chunks: Vec<u64> = t
            .records()
            .iter()
            .map(|r| match r.fields[0].1 {
                FieldValue::U64(v) => v,
                _ => panic!("expected u64"),
            })
            .collect();
        assert_eq!(chunks, [0, 1, 2, 3], "merge must follow buffer order, not push order");
    }

    #[test]
    fn jsonl_lines_parse_and_round_trip_fields() {
        let t = Tracer::enabled();
        t.event("cell", 7, || {
            vec![
                ("row", FieldValue::U64(3)),
                ("outcome", FieldValue::Str("imputed")),
                ("distance", FieldValue::F64(1.5)),
                ("nan_field", FieldValue::F64(f64::NAN)),
                ("rfds", FieldValue::U64s(vec![0, 2])),
                ("lhs_dists", FieldValue::F64s(vec![0.0, 2.0])),
                ("quote", FieldValue::Text("a\"b\\c".to_string())),
                ("ok", FieldValue::Bool(true)),
            ]
        });
        let text = t.to_jsonl();
        let mut lines = text.lines();
        let cell = json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(cell.get("kind").and_then(json::Value::as_str), Some("cell"));
        assert_eq!(cell.get("span").and_then(json::Value::as_u64), Some(7));
        assert_eq!(cell.get("row").and_then(json::Value::as_u64), Some(3));
        assert_eq!(cell.get("distance").and_then(json::Value::as_f64), Some(1.5));
        assert!(matches!(cell.get("nan_field"), Some(json::Value::Null)), "NaN must serialize as null");
        assert_eq!(cell.get("quote").and_then(json::Value::as_str), Some("a\"b\\c"));
        let metrics_line = json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(metrics_line.get("kind").and_then(json::Value::as_str), Some("metrics"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn buffers_on_disabled_tracer_stay_empty() {
        let t = Tracer::disabled();
        let mut buf = LocalBuffer::new(&t);
        buf.event("lattice_cell", 0, Vec::new);
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
    }
}
