//! A structured JSONL server event log.
//!
//! [`EventLog`] is the serving layer's append-only sink: one schema-
//! shaped line ([`crate::schema`]) per server event or access-log
//! summary, written through a shared handle that any thread may clone.
//! Unlike the [`crate::Tracer`] — which buffers a whole run and writes
//! once — the event log appends and flushes *per line*, so a `tail -f`
//! (or the e2e reconciliation test) sees each request as it completes
//! and a crash loses at most the line being written.
//!
//! Timestamps are microseconds since the log was opened, matching the
//! tracer's epoch convention; every line validates against
//! [`crate::schema::validate_line`].

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::{Field, TraceRecord};

struct Inner {
    epoch: Instant,
    path: PathBuf,
    file: Mutex<File>,
}

/// A thread-safe, append-per-line JSONL event sink. Cloning shares the
/// underlying file; lines from concurrent writers never interleave
/// (each line is written whole under the file lock).
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog").field("path", &self.inner.path).finish()
    }
}

impl EventLog {
    /// Creates (truncating) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<EventLog> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(EventLog {
            inner: Arc::new(Inner { epoch: Instant::now(), path, file: Mutex::new(file) }),
        })
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Appends one record (kind + payload fields, span 0) stamped at
    /// the current offset from the log's epoch, and flushes. Write
    /// failures are swallowed: telemetry must never take down serving.
    pub fn append(&self, kind: &'static str, fields: Vec<Field>) {
        let rec = TraceRecord {
            ts_us: self.inner.epoch.elapsed().as_micros() as u64,
            kind,
            span: 0,
            fields,
        };
        let mut line = rec.to_json();
        line.push('\n');
        let mut file = self.inner.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{validate_trace, SERVE_SCHEMA_VERSION};
    use crate::FieldValue;

    fn temp_log(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("renuver-eventlog-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn appended_lines_validate_against_the_schema() {
        let path = temp_log("validates");
        let log = EventLog::create(&path).unwrap();
        log.append("server_event", vec![
            ("v", FieldValue::U64(SERVE_SCHEMA_VERSION)),
            ("event", FieldValue::Str("recovery")),
            ("seq", FieldValue::U64(7)),
        ]);
        log.append("access", vec![
            ("v", FieldValue::U64(SERVE_SCHEMA_VERSION)),
            ("id", FieldValue::Text("abc-1".into())),
            ("endpoint", FieldValue::Str("impute")),
            ("status", FieldValue::U64(200)),
            ("latency_us", FieldValue::U64(321)),
        ]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_trace(&text), Ok(2), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clones_share_the_file_and_lines_stay_whole() {
        let path = temp_log("shared");
        let log = EventLog::create(&path).unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    log.append("server_event", vec![
                        ("v", FieldValue::U64(SERVE_SCHEMA_VERSION)),
                        ("event", FieldValue::Str("shed")),
                        ("seq", FieldValue::U64(t * 100 + i)),
                    ]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_trace(&text), Ok(100), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
