//! Synthetic Hospital dataset (n × 15), modeled on the US HHS hospital
//! quality data — the canonical benchmark of the Holoclean line of work
//! (the paper's ref. \[20\] evaluates on it) and a natural companion to
//! the four RENUVER datasets.
//!
//! Hospitals repeat across measure rows (one row per quality measure per
//! hospital), so the provider attributes are massively redundant — the
//! regime where dependency-driven repair shines. Planted dependencies:
//! ProviderNumber → every provider attribute (name, address, city, state,
//! zip, county, phone, ownership, emergency service), MeasureCode ↔
//! MeasureName, State → StateAvg prefix.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use renuver_data::{AttrType, Relation, Schema, Value};
use renuver_rulekit::{parse_rules, RuleSet};

use crate::names::{CITIES, LAST_NAMES, STREETS};

/// The quality measures hospitals report, as (code, name) pairs.
const MEASURES: &[(&str, &str)] = &[
    ("AMI-1", "aspirin at arrival"),
    ("AMI-2", "aspirin at discharge"),
    ("AMI-3", "ace inhibitor for lvsd"),
    ("AMI-4", "adult smoking cessation advice"),
    ("AMI-5", "beta blocker at discharge"),
    ("HF-1", "discharge instructions"),
    ("HF-2", "evaluation of lvs function"),
    ("HF-3", "ace inhibitor or arb for lvsd"),
    ("PN-2", "pneumococcal vaccination"),
    ("PN-3B", "blood culture before antibiotic"),
    ("PN-4", "adult smoking cessation advice"),
    ("PN-5C", "initial antibiotic within 6 hours"),
    ("SCIP-INF-1", "prophylactic antibiotic within 1 hour"),
    ("SCIP-INF-2", "prophylactic antibiotic selection"),
];

const OWNERSHIP: &[&str] = &[
    "government - federal",
    "government - state",
    "proprietary",
    "voluntary non-profit - church",
    "voluntary non-profit - private",
];

/// Builds the 15-attribute schema.
pub fn schema() -> Schema {
    Schema::new([
        ("ProviderNumber", AttrType::Int),
        ("HospitalName", AttrType::Text),
        ("Address", AttrType::Text),
        ("City", AttrType::Text),
        ("State", AttrType::Text),
        ("Zip", AttrType::Text),
        ("County", AttrType::Text),
        ("Phone", AttrType::Text),
        ("HospitalType", AttrType::Text),
        ("Ownership", AttrType::Text),
        ("EmergencyService", AttrType::Bool),
        ("MeasureCode", AttrType::Text),
        ("MeasureName", AttrType::Text),
        ("Score", AttrType::Int),
        ("Sample", AttrType::Int),
    ])
    .expect("static schema is valid")
}

/// One hospital's provider attributes, shared by all its measure rows.
struct Hospital {
    provider: i64,
    name: String,
    address: String,
    city: String,
    state: String,
    zip: String,
    county: String,
    phone: String,
    ownership: &'static str,
    emergency: bool,
}

/// Generates `n` measure rows over `n / 10` hospitals, deterministically.
pub fn generate(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x405917A1);
    let n_hospitals = (n / 10).max(1);
    let hospitals: Vec<Hospital> = (0..n_hospitals)
        .map(|i| {
            let (city, area, _) = CITIES[rng.random_range(0..CITIES.len())];
            let county = LAST_NAMES[rng.random_range(0..LAST_NAMES.len())];
            Hospital {
                provider: 10_000 + i as i64,
                name: format!(
                    "{} {} hospital",
                    LAST_NAMES[i % LAST_NAMES.len()].to_lowercase(),
                    ["memorial", "regional", "community", "general"]
                        [rng.random_range(0..4)]
                ),
                address: format!(
                    "{} {}",
                    100 + rng.random_range(0..900),
                    STREETS[rng.random_range(0..STREETS.len())].to_lowercase()
                ),
                city: city.to_lowercase(),
                state: ["al", "ak", "az", "ca", "ny", "tx"][rng.random_range(0..6)]
                    .to_owned(),
                zip: format!("{:05}", 10000 + i * 37 % 90000),
                county: county.to_lowercase(),
                phone: format!("{area}{:07}", rng.random_range(0..9_999_999)),
                ownership: OWNERSHIP[rng.random_range(0..OWNERSHIP.len())],
                emergency: rng.random_bool(0.7),
            }
        })
        .collect();

    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let h = &hospitals[rng.random_range(0..hospitals.len())];
        let (code, name) = MEASURES[rng.random_range(0..MEASURES.len())];
        tuples.push(vec![
            Value::Int(h.provider),
            Value::Text(h.name.clone()),
            Value::Text(h.address.clone()),
            Value::Text(h.city.clone()),
            Value::Text(h.state.clone()),
            Value::Text(h.zip.clone()),
            Value::Text(h.county.clone()),
            Value::Text(h.phone.clone()),
            Value::Text("acute care hospitals".to_owned()),
            Value::Text(h.ownership.to_owned()),
            Value::Bool(h.emergency),
            Value::Text(code.to_owned()),
            Value::Text(name.to_owned()),
            Value::Int(rng.random_range(40..100)),
            Value::Int(rng.random_range(10..500)),
        ]);
    }
    Relation::new(schema(), tuples).expect("generated tuples fit the schema")
}

/// Validation rules: phone digits modulo separators, zip digits, score and
/// sample within survey tolerances.
pub fn rules() -> RuleSet {
    parse_rules(
        "# Hospital validation rules\n\
         attr Phone\n  regex \\d{10} project digits\n\
         attr Zip\n  regex \\d{5} project digits\n\
         attr Score\n  delta 5\n\
         attr Sample\n  delta 50\n",
    )
    .expect("static rule file parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_determines_every_provider_attribute() {
        let rel = generate(400, 1);
        let mut by_provider: std::collections::HashMap<String, Vec<String>> =
            std::collections::HashMap::new();
        for t in rel.tuples() {
            let key = t[0].render();
            let provider_attrs: Vec<String> =
                (1..=10).map(|a| t[a].render()).collect();
            match by_provider.get(&key) {
                None => {
                    by_provider.insert(key, provider_attrs);
                }
                Some(prev) => assert_eq!(prev, &provider_attrs, "provider {key}"),
            }
        }
        // Rows per hospital ≈ 10: real redundancy exists.
        assert!(by_provider.len() >= 30);
    }

    #[test]
    fn measure_code_determines_name() {
        let rel = generate(300, 2);
        let s = rel.schema();
        let (code, name) = (
            s.require("MeasureCode").unwrap(),
            s.require("MeasureName").unwrap(),
        );
        let mut map = std::collections::HashMap::new();
        for t in rel.tuples() {
            let k = t[code].render();
            let v = t[name].render();
            assert_eq!(map.entry(k).or_insert_with(|| v.clone()), &v);
        }
    }

}
