//! Synthetic Bridges dataset (108 × 13), modeled on the Pittsburgh bridges
//! data.
//!
//! Attributes: Id, River, Location, Erected, Purpose, Length, Lanes,
//! ClearG, TOrD, Material, Span, RelL, Type. Categorical correlations are
//! planted the way the real data exhibits them: the construction era
//! determines the material (wood → iron → steel), the material constrains
//! the bridge type, span follows length, and lanes follow purpose — a
//! categorical-heavy profile where RFD thresholds bite (Section 6.2's
//! Bridges discussion).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use renuver_data::{AttrType, Relation, Schema, Value};
use renuver_rulekit::{parse_rules, RuleSet};

use crate::names::RIVERS;

/// Total rows, matching Table 3.
pub const TUPLES: usize = 108;

/// Builds the 13-attribute schema.
pub fn schema() -> Schema {
    Schema::new([
        ("Id", AttrType::Text),
        ("River", AttrType::Text),
        ("Location", AttrType::Int),
        ("Erected", AttrType::Int),
        ("Purpose", AttrType::Text),
        ("Length", AttrType::Int),
        ("Lanes", AttrType::Int),
        ("ClearG", AttrType::Text),
        ("TOrD", AttrType::Text),
        ("Material", AttrType::Text),
        ("Span", AttrType::Text),
        ("RelL", AttrType::Text),
        ("Type", AttrType::Text),
    ])
    .expect("static schema is valid")
}

/// Generates the paper-sized dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Relation {
    generate_n(TUPLES, seed)
}

/// Generates `n` rows; `generate_n(TUPLES, seed)` is exactly
/// [`generate`]`(seed)`.
pub fn generate_n(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB41D6E);
    let mut tuples = Vec::with_capacity(n);
    for i in 1..=n {
        let erected = 1818 + rng.random_range(0..170i64);
        // Era determines material; material constrains the bridge type.
        let material = if erected < 1870 {
            "WOOD"
        } else if erected < 1910 {
            "IRON"
        } else {
            "STEEL"
        };
        let ty = match material {
            "WOOD" => "WOOD",
            "IRON" => {
                if rng.random_bool(0.6) {
                    "SUSPEN"
                } else {
                    "SIMPLE-T"
                }
            }
            _ => match rng.random_range(0..3) {
                0 => "ARCH",
                1 => "CANTILEV",
                _ => "CONT-T",
            },
        };
        let purpose = match rng.random_range(0..10) {
            0..=5 => "HIGHWAY",
            6..=8 => "RR",
            _ => "AQUEDUCT",
        };
        let lanes: i64 = match purpose {
            "HIGHWAY" => {
                if erected > 1940 {
                    4
                } else {
                    2
                }
            }
            "RR" => 2,
            _ => 1,
        };
        let length = 800 + rng.random_range(0..2500i64);
        let span = if length < 1200 {
            "SHORT"
        } else if length < 2400 {
            "MEDIUM"
        } else {
            "LONG"
        };
        let rel_l = if length < 1200 {
            "S"
        } else if length < 2400 {
            "S-F"
        } else {
            "F"
        };
        let t_or_d = if matches!(ty, "SUSPEN" | "ARCH") { "THROUGH" } else { "DECK" };
        let clear_g = if purpose == "HIGHWAY" { "G" } else { "N" };
        tuples.push(vec![
            Value::Text(format!("E{i}")),
            Value::Text(RIVERS[rng.random_range(0..RIVERS.len())].to_owned()),
            Value::Int(rng.random_range(1..53i64)),
            Value::Int(erected),
            Value::Text(purpose.to_owned()),
            Value::Int(length),
            Value::Int(lanes),
            Value::Text(clear_g.to_owned()),
            Value::Text(t_or_d.to_owned()),
            Value::Text(material.to_owned()),
            Value::Text(span.to_owned()),
            Value::Text(rel_l.to_owned()),
            Value::Text(ty.to_owned()),
        ]);
    }
    Relation::new(schema(), tuples).expect("generated tuples fit the schema")
}

/// Validation rules: the numeric attributes admit deltas at the precision a
/// historical record supports; categorical attributes must match exactly
/// (no rules registered).
pub fn rules() -> RuleSet {
    parse_rules(
        "# Bridges validation rules\n\
         attr Erected\n  delta 5\n\
         attr Length\n  delta 200\n\
         attr Location\n  delta 2\n",
    )
    .expect("static rule file parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_determines_material() {
        let rel = generate(1);
        let s = rel.schema();
        let (erected, material) = (s.require("Erected").unwrap(), s.require("Material").unwrap());
        for t in rel.tuples() {
            let year = t[erected].as_f64().unwrap() as i64;
            let mat = t[material].as_text().unwrap();
            match mat {
                "WOOD" => assert!(year < 1870),
                "IRON" => assert!((1870..1910).contains(&year)),
                "STEEL" => assert!(year >= 1910),
                other => panic!("unexpected material {other}"),
            }
        }
    }

    #[test]
    fn span_follows_length() {
        let rel = generate(2);
        let s = rel.schema();
        let (length, span) = (s.require("Length").unwrap(), s.require("Span").unwrap());
        for t in rel.tuples() {
            let len = t[length].as_f64().unwrap() as i64;
            let sp = t[span].as_text().unwrap();
            match sp {
                "SHORT" => assert!(len < 1200),
                "MEDIUM" => assert!((1200..2400).contains(&len)),
                "LONG" => assert!(len >= 2400),
                other => panic!("unexpected span {other}"),
            }
        }
    }

    #[test]
    fn ids_unique() {
        let rel = generate(3);
        let mut ids: Vec<String> = rel
            .tuples()
            .map(|t| t[0].as_text().unwrap().to_owned())
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), TUPLES);
    }
}
