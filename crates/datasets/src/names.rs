//! Shared word pools for the synthetic generators.

/// Cities with their phone area code and the spelling variants the
/// Restaurant duplicates use (the canonical spelling first).
pub const CITIES: &[(&str, &str, &[&str])] = &[
    ("Los Angeles", "213", &["Los Angeles", "LA", "L.A."]),
    ("New York", "212", &["New York", "New York City", "NY"]),
    ("San Francisco", "415", &["San Francisco", "SF", "San Fran"]),
    ("Malibu", "310", &["Malibu"]),
    ("Hollywood", "323", &["Hollywood", "W. Hollywood"]),
    ("Pasadena", "626", &["Pasadena"]),
    ("Santa Monica", "424", &["Santa Monica", "Sta. Monica"]),
    ("Atlanta", "404", &["Atlanta"]),
    ("Brooklyn", "718", &["Brooklyn"]),
    ("Chicago", "312", &["Chicago"]),
    ("Boston", "617", &["Boston"]),
    ("Queens", "917", &["Queens"]),
];

/// Cuisine types with their numeric class id (the Restaurant `Class`
/// column is "a numeric id associated to the type of cuisine").
pub const CUISINES: &[(&str, i64)] = &[
    ("American", 1),
    ("Italian", 2),
    ("Chinese", 3),
    ("Mexican", 4),
    ("French", 5),
    ("Californian", 6),
    ("Japanese", 7),
    ("Indian", 8),
    ("Thai", 9),
    ("Seafood", 10),
    ("Steakhouse", 11),
    ("Mediterranean", 12),
    ("Cajun", 13),
    ("Vegetarian", 14),
    ("Continental", 15),
];

/// First words of restaurant names.
pub const NAME_HEADS: &[&str] = &[
    "Granita", "Citrus", "Fenix", "Chinois", "Campanile", "Spago", "Patina",
    "Lespinasse", "Aquavit", "Nobu", "Carmine", "Remi", "Zarela", "Palio",
    "Dawat", "Arcadia", "Montrachet", "Chanterelle", "Provence", "Verbena",
    "Maxim", "Tavola", "Bouley", "Daniel", "Lutece", "Oceana", "Solera",
    "Tribeca", "Vernon", "Zoe", "Cascabel", "Delmonico", "Gotham", "Mesa",
    "Parioli", "Rainbow", "Savoy", "Terrace", "Union", "Vong",
];

/// Second words of restaurant names (empty means single-word name).
pub const NAME_TAILS: &[&str] = &[
    "", "Grill", "Main", "on Main", "Bistro", "Cafe", "Kitchen", "Room",
    "House", "Garden", "Argyle", "East", "West", "Club", "Tavern", "Express",
];

/// Street names for addresses.
pub const STREETS: &[&str] = &[
    "Ocean Ave", "Main St", "Melrose Ave", "Broadway", "Sunset Blvd",
    "Wilshire Blvd", "Madison Ave", "Lexington Ave", "Columbus Ave",
    "Hudson St", "Spring St", "Canal St", "La Brea Ave", "Pico Blvd",
    "3rd St", "57th St",
];

/// Rivers for the Bridges dataset.
pub const RIVERS: &[&str] = &["Allegheny", "Monongahela", "Ohio", "Youghiogheny"];

/// US state codes used by the Physician dataset.
pub const STATES: &[&str] = &["CA", "NY", "TX", "FL", "PA", "OH", "IL", "MA", "GA", "WA"];

/// Medical schools for the Physician dataset.
pub const SCHOOLS: &[&str] = &[
    "HARVARD MEDICAL SCHOOL",
    "JOHNS HOPKINS UNIVERSITY",
    "STANFORD UNIVERSITY",
    "UNIVERSITY OF PENNSYLVANIA",
    "DUKE UNIVERSITY",
    "COLUMBIA UNIVERSITY",
    "YALE UNIVERSITY",
    "UNIVERSITY OF MICHIGAN",
    "EMORY UNIVERSITY",
    "BAYLOR COLLEGE OF MEDICINE",
    "OTHER",
];

/// Medical specialties for the Physician dataset.
pub const SPECIALTIES: &[&str] = &[
    "INTERNAL MEDICINE",
    "FAMILY PRACTICE",
    "CARDIOLOGY",
    "DERMATOLOGY",
    "ORTHOPEDIC SURGERY",
    "PEDIATRICS",
    "PSYCHIATRY",
    "RADIOLOGY",
    "ANESTHESIOLOGY",
    "NEUROLOGY",
    "OPHTHALMOLOGY",
    "UROLOGY",
];

/// Given names for physicians.
pub const FIRST_NAMES: &[&str] = &[
    "JAMES", "MARY", "JOHN", "PATRICIA", "ROBERT", "JENNIFER", "MICHAEL",
    "LINDA", "WILLIAM", "ELIZABETH", "DAVID", "BARBARA", "RICHARD", "SUSAN",
    "JOSEPH", "JESSICA", "THOMAS", "SARAH", "CARLOS", "KAREN",
];

/// Family names for physicians.
pub const LAST_NAMES: &[&str] = &[
    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER",
    "DAVIS", "RODRIGUEZ", "MARTINEZ", "HERNANDEZ", "LOPEZ", "GONZALEZ",
    "WILSON", "ANDERSON", "THOMAS", "TAYLOR", "MOORE", "JACKSON", "MARTIN",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_distinct() {
        assert!(CITIES.len() >= 10);
        let mut names: Vec<_> = CITIES.iter().map(|c| c.0).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CITIES.len());

        let mut classes: Vec<_> = CUISINES.iter().map(|c| c.1).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), CUISINES.len(), "class ids must be unique");
    }

    #[test]
    fn city_variants_include_canonical() {
        for (name, _, variants) in CITIES {
            assert_eq!(&variants[0], name);
        }
    }
}
