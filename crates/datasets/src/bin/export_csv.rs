//! Writes a generated dataset to a typed-header CSV file. The committed
//! fixture `data/restaurant_sample.csv` (used by the README's "Inspecting
//! a run" walkthrough and the CI trace-validation step) comes from:
//!
//! ```text
//! cargo run -p renuver-datasets --bin export_csv -- restaurant 60 42 data/restaurant_sample.csv
//! ```

use std::process::ExitCode;

use renuver_datasets::Dataset;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [name, rows, seed, out] = args.as_slice() else {
        eprintln!("usage: export_csv <restaurant|cars|glass|bridges> <rows> <seed> <out.csv>");
        return ExitCode::FAILURE;
    };
    let ds = match name.as_str() {
        "restaurant" => Dataset::Restaurant,
        "cars" => Dataset::Cars,
        "glass" => Dataset::Glass,
        "bridges" => Dataset::Bridges,
        other => {
            eprintln!("unknown dataset {other:?} (expected restaurant, cars, glass, or bridges)");
            return ExitCode::FAILURE;
        }
    };
    let (Ok(n), Ok(seed)) = (rows.parse::<usize>(), seed.parse::<u64>()) else {
        eprintln!("rows and seed must be integers");
        return ExitCode::FAILURE;
    };
    let rel = ds.relation_n(n, seed);
    if let Err(e) = renuver_data::csv::write_path(&rel, out) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} rows of {} to {out}", rel.len(), ds.name());
    ExitCode::SUCCESS
}
