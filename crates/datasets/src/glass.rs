//! Synthetic Glass dataset (214 × 11), modeled on the UCI glass
//! identification data.
//!
//! Attributes: Id, RI (refractive index), and the oxide weight percentages
//! Na, Mg, Al, Si, K, Ca, Ba, Fe, plus the glass Type (1–7). Each type is a
//! cluster in composition space (per-type oxide means + small noise), and
//! RI is a linear function of Ca and Na — giving the tight numeric
//! correlations whose *closeness* the paper blames for RENUVER's
//! threshold-insensitive behaviour on this dataset (Section 6.2).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use renuver_data::{AttrType, Relation, Schema, Value};
use renuver_rulekit::{parse_rules, RuleSet};

/// Total rows, matching Table 3.
pub const TUPLES: usize = 214;

/// Per-type composition means: (Na, Mg, Al, Si, K, Ca, Ba, Fe), loosely
/// following the real dataset's cluster structure.
const TYPE_MEANS: &[(i64, [f64; 8])] = &[
    (1, [13.2, 3.5, 1.2, 72.6, 0.45, 8.8, 0.0, 0.06]),
    (2, [13.1, 3.0, 1.4, 72.6, 0.52, 9.1, 0.05, 0.08]),
    (3, [13.4, 3.5, 1.2, 72.4, 0.43, 8.8, 0.0, 0.06]),
    (5, [12.8, 0.8, 2.0, 72.4, 1.4, 10.1, 0.2, 0.06]),
    (6, [14.5, 1.3, 1.4, 73.0, 0.0, 9.4, 0.0, 0.0]),
    (7, [14.4, 0.5, 2.1, 72.9, 0.32, 8.5, 1.0, 0.01]),
];

/// Builds the 11-attribute schema.
pub fn schema() -> Schema {
    Schema::new([
        ("Id", AttrType::Int),
        ("RI", AttrType::Float),
        ("Na", AttrType::Float),
        ("Mg", AttrType::Float),
        ("Al", AttrType::Float),
        ("Si", AttrType::Float),
        ("K", AttrType::Float),
        ("Ca", AttrType::Float),
        ("Ba", AttrType::Float),
        ("Fe", AttrType::Float),
        ("Type", AttrType::Int),
    ])
    .expect("static schema is valid")
}

/// Generates the paper-sized dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Relation {
    generate_n(TUPLES, seed)
}

/// Generates `n` rows; `generate_n(TUPLES, seed)` is exactly
/// [`generate`]`(seed)`.
pub fn generate_n(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x61A55);
    let mut tuples = Vec::with_capacity(n);
    for id in 1..=(n as i64) {
        let (ty, means) = TYPE_MEANS[rng.random_range(0..TYPE_MEANS.len())];
        let mut oxides = [0.0f64; 8];
        for (o, mean) in oxides.iter_mut().zip(means) {
            let spread = (mean * 0.06).max(0.02);
            *o = (mean + (rng.random::<f64>() - 0.5) * 2.0 * spread).max(0.0);
        }
        // The real Glass data has overlapping classes and outliers; with
        // some probability an oxide reading is contaminated by another
        // type's composition, so nearest-neighbour averages get pulled
        // across cluster boundaries the way they do on the UCI data.
        if rng.random_bool(0.25) {
            let (_, other) = TYPE_MEANS[rng.random_range(0..TYPE_MEANS.len())];
            let k = rng.random_range(0..8);
            oxides[k] = (other[k] * (0.8 + 0.4 * rng.random::<f64>())).max(0.0);
        }
        let [na, mg, al, si, k, ca, ba, fe] = oxides;
        // Refractive index rises with calcium, falls slightly with sodium.
        let ri = 1.4998 + 0.0022 * (ca - 8.8) - 0.0004 * (na - 13.2)
            + (rng.random::<f64>() - 0.5) * 0.0008;
        tuples.push(vec![
            Value::Int(id),
            Value::Float(round(ri, 5)),
            Value::Float(round(na, 2)),
            Value::Float(round(mg, 2)),
            Value::Float(round(al, 2)),
            Value::Float(round(si, 2)),
            Value::Float(round(k, 2)),
            Value::Float(round(ca, 2)),
            Value::Float(round(ba, 2)),
            Value::Float(round(fe, 2)),
            Value::Int(ty),
        ]);
    }
    Relation::new(schema(), tuples).expect("generated tuples fit the schema")
}

fn round(x: f64, places: u32) -> f64 {
    let p = 10f64.powi(places as i32);
    (x * p).round() / p
}

/// Validation rules: each oxide admits a small delta scaled to its spread;
/// RI is judged at its measurement precision; Type must be exact.
pub fn rules() -> RuleSet {
    parse_rules(
        "# Glass validation rules\n\
         attr RI\n  delta 0.001\n\
         attr Na\n  delta 0.5\n\
         attr Mg\n  delta 0.5\n\
         attr Al\n  delta 0.3\n\
         attr Si\n  delta 0.5\n\
         attr K\n  delta 0.2\n\
         attr Ca\n  delta 0.5\n\
         attr Ba\n  delta 0.2\n\
         attr Fe\n  delta 0.05\n",
    )
    .expect("static rule file parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sequential() {
        let rel = generate(1);
        for (i, t) in rel.tuples().enumerate() {
            assert_eq!(t[0], Value::Int(i as i64 + 1));
        }
    }

    #[test]
    fn types_come_from_the_catalog() {
        let rel = generate(2);
        let valid: Vec<i64> = TYPE_MEANS.iter().map(|(t, _)| *t).collect();
        for t in rel.tuples() {
            let ty = match t[10] {
                Value::Int(v) => v,
                ref other => panic!("non-int type {other:?}"),
            };
            assert!(valid.contains(&ty));
        }
    }

    #[test]
    fn clusters_are_separable() {
        // Type 7 glass has high barium; type 1 essentially none.
        let rel = generate(3);
        let ba = rel.schema().require("Ba").unwrap();
        let ty = rel.schema().require("Type").unwrap();
        let avg = |want: i64| -> f64 {
            let v: Vec<f64> = rel
                .tuples()
                .filter(|t| t[ty] == Value::Int(want))
                .map(|t| t[ba].as_f64().unwrap())
                .collect();
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        assert!(avg(7) > avg(1) + 0.5);
    }

    #[test]
    fn ri_tracks_calcium() {
        let rel = generate(4);
        let (ri, ca) = (1, 7);
        // Pearson-free check: top-quartile Ca rows have higher mean RI.
        let mut rows: Vec<(f64, f64)> = rel
            .tuples()
            .map(|t| (t[ca].as_f64().unwrap(), t[ri].as_f64().unwrap()))
            .collect();
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let q = rows.len() / 4;
        let low: f64 = rows[..q].iter().map(|r| r.1).sum::<f64>() / q as f64;
        let high: f64 = rows[rows.len() - q..].iter().map(|r| r.1).sum::<f64>() / q as f64;
        assert!(high > low);
    }
}
