//! Synthetic Physician dataset (n × 18), modeled on the Medicare
//! *Physician Compare* extract the paper uses for its scaling study
//! (Table 5: 104 … 10359 tuples, 18 attributes, mixed text and numbers).
//!
//! Physicians cluster into practice organizations: members of one
//! organization share the street address, city, state, zip, and phone
//! prefix — exactly the redundancy dependency-driven imputation thrives
//! on. Planted dependencies: Zip → City/State, Org → Street/City/Phone
//! prefix, GradYear → Experience (exact), School ↔ SchoolCode (exact).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use renuver_data::{AttrType, Relation, Schema, Value};
use renuver_rulekit::{parse_rules, RuleSet};

use crate::names::{FIRST_NAMES, LAST_NAMES, SCHOOLS, SPECIALTIES, STATES, STREETS};

/// Reference year for deriving years of experience from graduation year.
const CURRENT_YEAR: i64 = 2021;

/// Builds the 18-attribute schema.
pub fn schema() -> Schema {
    Schema::new([
        ("Npi", AttrType::Int),
        ("FirstName", AttrType::Text),
        ("LastName", AttrType::Text),
        ("Gender", AttrType::Text),
        ("Credential", AttrType::Text),
        ("School", AttrType::Text),
        ("SchoolCode", AttrType::Int),
        ("GradYear", AttrType::Int),
        ("Experience", AttrType::Int),
        ("Specialty", AttrType::Text),
        ("OrgName", AttrType::Text),
        ("Street", AttrType::Text),
        ("City", AttrType::Text),
        ("State", AttrType::Text),
        ("Zip", AttrType::Text),
        ("Phone", AttrType::Text),
        ("GroupSize", AttrType::Int),
        ("AcceptsMedicare", AttrType::Bool),
    ])
    .expect("static schema is valid")
}

/// One practice organization shared by several physicians.
struct Org {
    name: String,
    street: String,
    city: String,
    state: &'static str,
    zip: String,
    phone_prefix: String,
    size: i64,
}

/// Generates `n` physician rows deterministically from `seed`.
pub fn generate(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD0C70B);
    // One organization per ~6 physicians.
    let n_orgs = (n / 6).max(1);
    let cities: Vec<(String, &'static str, String)> = (0..(n_orgs / 3).max(1))
        .map(|i| {
            let state = STATES[rng.random_range(0..STATES.len())];
            let city = format!("{}VILLE {}", LAST_NAMES[i % LAST_NAMES.len()], i);
            // Unique by construction so Zip → City/State holds exactly.
            let zip = format!("{:05}", 10000 + i % 90000);
            (city, state, zip)
        })
        .collect();
    let orgs: Vec<Org> = (0..n_orgs)
        .map(|i| {
            let (city, state, zip) = cities[rng.random_range(0..cities.len())].clone();
            Org {
                name: format!("{} MEDICAL GROUP {}", LAST_NAMES[i % LAST_NAMES.len()], i),
                street: format!(
                    "{} {}",
                    100 + rng.random_range(0..900),
                    STREETS[rng.random_range(0..STREETS.len())].to_uppercase()
                ),
                city,
                state,
                zip,
                phone_prefix: format!("{}-{}", rng.random_range(200..999), rng.random_range(200..999)),
                size: rng.random_range(2..40i64),
            }
        })
        .collect();

    let mut tuples = Vec::with_capacity(n);
    for i in 0..n {
        let org = &orgs[rng.random_range(0..orgs.len())];
        let grad_year = 1960 + rng.random_range(0..55i64);
        let school_idx = rng.random_range(0..SCHOOLS.len());
        let gender = if rng.random_bool(0.5) { "M" } else { "F" };
        tuples.push(vec![
            Value::Int(1_000_000_000 + i as i64),
            Value::Text(FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())].to_owned()),
            Value::Text(LAST_NAMES[rng.random_range(0..LAST_NAMES.len())].to_owned()),
            Value::Text(gender.to_owned()),
            Value::Text(if rng.random_bool(0.8) { "MD" } else { "DO" }.to_owned()),
            Value::Text(SCHOOLS[school_idx].to_owned()),
            Value::Int(school_idx as i64 + 1),
            Value::Int(grad_year),
            Value::Int(CURRENT_YEAR - grad_year),
            Value::Text(SPECIALTIES[rng.random_range(0..SPECIALTIES.len())].to_owned()),
            Value::Text(org.name.clone()),
            Value::Text(org.street.clone()),
            Value::Text(org.city.clone()),
            Value::Text(org.state.to_owned()),
            Value::Text(org.zip.clone()),
            Value::Text(format!("{}-{:04}", org.phone_prefix, rng.random_range(0..9999))),
            Value::Int(org.size),
            Value::Bool(rng.random_bool(0.9)),
        ]);
    }
    Relation::new(schema(), tuples).expect("generated tuples fit the schema")
}

/// The tuple counts of the paper's Table 5 scaling ladder.
pub const TABLE_5_SIZES: [usize; 5] = [104, 208, 1036, 2072, 10359];

/// Validation rules: phone digits modulo separators, zip by digits,
/// graduation year and experience within ±2, school admissible through its
/// code pairing.
pub fn rules() -> RuleSet {
    parse_rules(
        "# Physician validation rules\n\
         attr Phone\n  regex \\d{3}[- ]\\d{3}[- ]\\d{4} project digits\n\
         attr Zip\n  regex \\d{5} project digits\n\
         attr GradYear\n  delta 2\n\
         attr Experience\n  delta 2\n\
         attr GroupSize\n  delta 5\n",
    )
    .expect("static rule file parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_sizes_generate() {
        for &n in &[104usize, 208] {
            let rel = generate(n, 1);
            assert_eq!(rel.len(), n);
            assert_eq!(rel.arity(), 18);
        }
    }

    #[test]
    fn experience_is_function_of_grad_year() {
        let rel = generate(200, 2);
        let s = rel.schema();
        let (gy, exp) = (s.require("GradYear").unwrap(), s.require("Experience").unwrap());
        for t in rel.tuples() {
            let year = t[gy].as_f64().unwrap() as i64;
            assert_eq!(t[exp], Value::Int(CURRENT_YEAR - year));
        }
    }

    #[test]
    fn organization_members_share_address() {
        let rel = generate(300, 3);
        let s = rel.schema();
        let (org, street, city, zip) = (
            s.require("OrgName").unwrap(),
            s.require("Street").unwrap(),
            s.require("City").unwrap(),
            s.require("Zip").unwrap(),
        );
        let mut by_org: std::collections::HashMap<String, (String, String, String)> =
            std::collections::HashMap::new();
        for t in rel.tuples() {
            let key = t[org].as_text().unwrap().to_owned();
            let addr = (
                t[street].as_text().unwrap().to_owned(),
                t[city].as_text().unwrap().to_owned(),
                t[zip].as_text().unwrap().to_owned(),
            );
            match by_org.get(&key) {
                None => {
                    by_org.insert(key, addr);
                }
                Some(prev) => assert_eq!(prev, &addr, "org {key} has two addresses"),
            }
        }
    }

    #[test]
    fn zip_determines_city_and_state() {
        let rel = generate(400, 4);
        let s = rel.schema();
        let (zip, city, state) = (
            s.require("Zip").unwrap(),
            s.require("City").unwrap(),
            s.require("State").unwrap(),
        );
        let mut by_zip: std::collections::HashMap<String, (String, String)> =
            std::collections::HashMap::new();
        for t in rel.tuples() {
            let key = t[zip].as_text().unwrap().to_owned();
            let loc = (
                t[city].as_text().unwrap().to_owned(),
                t[state].as_text().unwrap().to_owned(),
            );
            match by_zip.get(&key) {
                None => {
                    by_zip.insert(key, loc);
                }
                Some(prev) => assert_eq!(prev, &loc, "zip {key} maps to two places"),
            }
        }
    }

    #[test]
    fn npis_unique() {
        let rel = generate(500, 5);
        let mut npis: Vec<i64> = rel
            .tuples()
            .map(|t| t[0].as_f64().unwrap() as i64)
            .collect();
        npis.sort_unstable();
        npis.dedup();
        assert_eq!(npis.len(), 500);
    }

    #[test]
    fn rules_admit_separator_variants() {
        let rules = rules();
        assert!(rules.validate("Phone", "555-123 4567", "555-123-4567"));
        assert!(rules.validate("GradYear", "1990", "1992"));
        assert!(!rules.validate("GradYear", "1990", "1995"));
    }
}
