//! Synthetic Restaurant dataset (864 × 6).
//!
//! Mirrors the RIDDLE restaurant dataset the paper uses: guide listings
//! merged from two sources, so ~35% of restaurants appear twice with
//! spelling variants — abbreviated names ("Chinois on Main" → "Chinois
//! Main"), city nicknames ("Los Angeles" → "LA"), and phone-separator
//! changes ("310/456-0488" → "310-456-0488"). Planted dependencies:
//!
//! - duplicates make *similar names* imply *similar phones* (φ4-style);
//! - a phone's area code is a function of the city, and duplicates share
//!   digits, so *equal phones* imply *similar cities* (φ0-style);
//! - `Class` is the numeric id of the cuisine `Type` (exact FD both ways);
//! - addresses repeat with their restaurant (Name → Address).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use renuver_data::{AttrType, Relation, Schema, Value};
use renuver_rulekit::{parse_rules, RuleSet};

use crate::names::{CITIES, CUISINES, NAME_HEADS, NAME_TAILS, STREETS};

/// Total rows, matching Table 3.
pub const TUPLES: usize = 864;

/// Builds the 6-attribute schema: Name, Address, City, Phone, Type, Class.
pub fn schema() -> Schema {
    Schema::new([
        ("Name", AttrType::Text),
        ("Address", AttrType::Text),
        ("City", AttrType::Text),
        ("Phone", AttrType::Text),
        ("Type", AttrType::Text),
        ("Class", AttrType::Int),
    ])
    .expect("static schema is valid")
}

/// One base restaurant before duplication.
struct Base {
    name: String,
    address: String,
    city_idx: usize,
    phone_digits: (u32, u32), // exchange, line
    cuisine_idx: usize,
}

/// Generates the paper-sized dataset (864 rows) deterministically.
pub fn generate(seed: u64) -> Relation {
    generate_n(TUPLES, seed)
}

/// Generates `n` rows with the same duplicate proportion as the paper-sized
/// dataset (~26% duplicated listings). `generate_n(864, seed)` is exactly
/// [`generate`]`(seed)`.
pub fn generate_n(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    // Same base/duplicate split as the 640 + 224 = 864 original.
    let n_dup = (n * 224 / TUPLES).min(n.saturating_sub(1));
    let n_base = (n - n_dup).max(1);

    let mut bases = Vec::with_capacity(n_base);
    for i in 0..n_base {
        let head = NAME_HEADS[rng.random_range(0..NAME_HEADS.len())];
        let tail = NAME_TAILS[rng.random_range(0..NAME_TAILS.len())];
        let name = if tail.is_empty() {
            format!("{head} {}", i % 97) // numeric suffix keeps names distinct
        } else {
            format!("{head} {tail}")
        };
        let city_idx = rng.random_range(0..CITIES.len());
        let street = STREETS[rng.random_range(0..STREETS.len())];
        bases.push(Base {
            name,
            address: format!("{} {street}", 100 + rng.random_range(0..900)),
            city_idx,
            phone_digits: (rng.random_range(200..999), rng.random_range(1000..9999)),
            cuisine_idx: rng.random_range(0..CUISINES.len()),
        });
    }

    let mut tuples = Vec::with_capacity(n);
    let render = |b: &Base, variant: bool, rng: &mut StdRng| -> Vec<Value> {
        let (city_name, area, variants) = CITIES[b.city_idx];
        let city = if variant && variants.len() > 1 {
            variants[1 + rng.random_range(0..variants.len() - 1)]
        } else {
            city_name
        };
        // Both sources list the same number; separators differ.
        let (exch, line) = b.phone_digits;
        let phone = if variant {
            format!("{area}-{exch}-{line}")
        } else {
            format!("{area}/{exch}-{line}")
        };
        let name = if variant {
            abbreviate(&b.name)
        } else {
            b.name.clone()
        };
        let (cuisine, class) = CUISINES[b.cuisine_idx];
        let cuisine = if variant && rng.random_bool(0.3) {
            format!("{cuisine} (new)")
        } else {
            cuisine.to_owned()
        };
        vec![
            Value::Text(name),
            Value::Text(b.address.clone()),
            Value::Text(city.to_owned()),
            Value::Text(phone),
            Value::Text(cuisine),
            Value::Int(class),
        ]
    };

    for b in &bases {
        tuples.push(render(b, false, &mut rng));
    }
    for i in 0..n_dup {
        // Duplicate evenly spread base restaurants.
        let b = &bases[(i * n_base / n_dup) % n_base];
        tuples.push(render(b, true, &mut rng));
    }

    Relation::new(schema(), tuples).expect("generated tuples fit the schema")
}

/// Produces the second source's spelling of a name: drops connective words
/// and trims long tails, like "Chinois on Main" → "Chinois Main".
fn abbreviate(name: &str) -> String {
    let words: Vec<&str> = name
        .split_whitespace()
        .filter(|w| !matches!(*w, "on" | "the" | "of"))
        .collect();
    words.join(" ")
}

/// Validation rules (paper Section 6.1): phones match on digits regardless
/// of separators; city nickname groups; `(new)` suffixes on cuisine types
/// are immaterial; Class must be exact (delta 0 adds nothing beyond
/// equality, so no rule is registered for it).
pub fn rules() -> RuleSet {
    let mut text = String::from(
        "# Restaurant validation rules\n\
         attr Phone\n  regex \\d{3}[-/ ]\\d{3}[- ]\\d{4} project digits\n\
         attr City\n",
    );
    for (_, _, variants) in CITIES {
        if variants.len() > 1 {
            text.push_str("  set");
            for v in *variants {
                text.push_str(&format!(" \"{v}\""));
            }
            text.push('\n');
        }
    }
    text.push_str("attr Type\n");
    for (cuisine, _) in CUISINES {
        text.push_str(&format!("  set \"{cuisine}\" \"{cuisine} (new)\"\n"));
    }
    parse_rules(&text).expect("static rule file parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_is_function_of_type() {
        let rel = generate(1);
        let ty = rel.schema().require("Type").unwrap();
        let class = rel.schema().require("Class").unwrap();
        for t in rel.tuples() {
            let cuisine = t[ty].as_text().unwrap().trim_end_matches(" (new)").to_owned();
            let expected = CUISINES.iter().find(|(c, _)| *c == cuisine).unwrap().1;
            assert_eq!(t[class], Value::Int(expected));
        }
    }

    #[test]
    fn phone_area_code_matches_city() {
        let rel = generate(2);
        let city = rel.schema().require("City").unwrap();
        let phone = rel.schema().require("Phone").unwrap();
        for t in rel.tuples() {
            let city_v = t[city].as_text().unwrap();
            let (_, area, _) = CITIES
                .iter()
                .find(|(_, _, vs)| vs.contains(&city_v))
                .unwrap_or_else(|| panic!("unknown city {city_v}"));
            assert!(t[phone].as_text().unwrap().starts_with(area));
        }
    }

    #[test]
    fn duplicates_share_digits() {
        // Each duplicated pair lists the same 10 digits.
        let rel = generate(3);
        let phone = rel.schema().require("Phone").unwrap();
        let digits = |s: &str| -> String { s.chars().filter(char::is_ascii_digit).collect() };
        let mut by_digits = std::collections::HashMap::new();
        for t in rel.tuples() {
            *by_digits
                .entry(digits(t[phone].as_text().unwrap()))
                .or_insert(0usize) += 1;
        }
        let dupes = by_digits.values().filter(|&&c| c >= 2).count();
        assert!(dupes >= 150, "expected many duplicated numbers, got {dupes}");
    }

    #[test]
    fn abbreviation_examples() {
        assert_eq!(abbreviate("Chinois on Main"), "Chinois Main");
        assert_eq!(abbreviate("Granita"), "Granita");
    }

    #[test]
    fn rules_accept_separator_variants() {
        let rules = rules();
        assert!(rules.validate("Phone", "310/456-0488", "310-456-0488"));
        assert!(!rules.validate("Phone", "310/456-0489", "310-456-0488"));
        assert!(rules.validate("City", "LA", "Los Angeles"));
        assert!(rules.validate("Type", "French (new)", "French"));
    }
}
