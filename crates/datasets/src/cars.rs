//! Synthetic Cars dataset (406 × 9), modeled on the classic Auto-MPG data.
//!
//! Attributes: Mpg, Cylinders, Displacement, Horsepower, Weight,
//! Acceleration, ModelYear, Origin, Name. Physical correlations are
//! planted so distance-based dependencies exist: displacement scales with
//! cylinders, horsepower with displacement, weight with displacement,
//! mpg inversely with weight, acceleration inversely with horsepower —
//! the structure RFDs like `Displacement(≤x) → Horsepower(≤y)` capture.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use renuver_data::{AttrType, Relation, Schema, Value};
use renuver_rulekit::{parse_rules, RuleSet};

/// Total rows, matching Table 3.
pub const TUPLES: usize = 406;

const MAKES: &[&str] = &[
    "chevrolet", "ford", "plymouth", "dodge", "amc", "toyota", "datsun",
    "honda", "volkswagen", "buick", "pontiac", "mazda", "mercury", "fiat",
    "peugeot", "audi", "volvo", "saab", "subaru", "renault",
];

const MODELS: &[&str] = &[
    "rebel", "custom", "deluxe", "special", "gl", "dl", "sw", "wagon",
    "coupe", "sedan", "brougham", "classic", "sport", "limited", "gt", "xe",
];

/// Builds the 9-attribute schema.
pub fn schema() -> Schema {
    Schema::new([
        ("Mpg", AttrType::Float),
        ("Cylinders", AttrType::Int),
        ("Displacement", AttrType::Float),
        ("Horsepower", AttrType::Float),
        ("Weight", AttrType::Float),
        ("Acceleration", AttrType::Float),
        ("ModelYear", AttrType::Int),
        ("Origin", AttrType::Int),
        ("Name", AttrType::Text),
    ])
    .expect("static schema is valid")
}

/// Generates the paper-sized dataset deterministically from `seed`.
pub fn generate(seed: u64) -> Relation {
    generate_n(TUPLES, seed)
}

/// Generates `n` rows; `generate_n(TUPLES, seed)` is exactly
/// [`generate`]`(seed)`.
pub fn generate_n(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA125);
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let origin = rng.random_range(1..=3i64); // 1 US, 2 Europe, 3 Japan
        // US cars skew to more cylinders.
        let cylinders: i64 = match origin {
            1 => *[4, 6, 8, 8, 6].get(rng.random_range(0..5)).unwrap(),
            _ => *[4, 4, 4, 6].get(rng.random_range(0..4)).unwrap(),
        };
        let noise = |rng: &mut StdRng, scale: f64| (rng.random::<f64>() - 0.5) * scale;
        let displacement = (cylinders as f64) * 38.0 + noise(&mut rng, 40.0);
        let horsepower = 18.0 + displacement * 0.42 + noise(&mut rng, 18.0);
        let weight = 1400.0 + displacement * 8.5 + noise(&mut rng, 350.0);
        let mpg = (46.0 - weight / 130.0 + noise(&mut rng, 4.0)).max(9.0);
        let acceleration = (23.0 - horsepower / 12.0 + noise(&mut rng, 2.0)).max(8.0);
        let year = 70 + rng.random_range(0..13i64);
        let name = format!(
            "{} {}",
            MAKES[rng.random_range(0..MAKES.len())],
            MODELS[rng.random_range(0..MODELS.len())]
        );
        tuples.push(vec![
            Value::Float(round1(mpg)),
            Value::Int(cylinders),
            Value::Float(round1(displacement)),
            Value::Float(round1(horsepower)),
            Value::Float(round1(weight)),
            Value::Float(round1(acceleration)),
            Value::Int(year),
            Value::Int(origin),
            Value::Text(name),
        ]);
    }
    Relation::new(schema(), tuples).expect("generated tuples fit the schema")
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Validation rules: numeric attributes admit the deltas the paper
/// describes (±25 horsepower is the paper's own example); the car name is
/// admissible when the make (first word) matches.
pub fn rules() -> RuleSet {
    parse_rules(
        "# Cars validation rules\n\
         attr Mpg\n  delta 3\n\
         attr Displacement\n  delta 30\n\
         attr Horsepower\n  delta 25\n\
         attr Weight\n  delta 250\n\
         attr Acceleration\n  delta 2\n\
         attr ModelYear\n  delta 2\n",
    )
    .expect("static rule file parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_correlations_hold() {
        let rel = generate(1);
        let s = rel.schema();
        let (cyl, disp, hp, weight, mpg) = (
            s.require("Cylinders").unwrap(),
            s.require("Displacement").unwrap(),
            s.require("Horsepower").unwrap(),
            s.require("Weight").unwrap(),
            s.require("Mpg").unwrap(),
        );
        // 8-cylinder cars are heavier, thirstier, and stronger on average
        // than 4-cylinder cars.
        let avg = |col: usize, want_cyl: i64| -> f64 {
            let vals: Vec<f64> = rel
                .tuples()
                .filter(|t| t[cyl] == Value::Int(want_cyl))
                .map(|t| t[col].as_f64().unwrap())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(avg(disp, 8) > avg(disp, 4) + 100.0);
        assert!(avg(hp, 8) > avg(hp, 4) + 40.0);
        assert!(avg(weight, 8) > avg(weight, 4) + 800.0);
        assert!(avg(mpg, 8) < avg(mpg, 4) - 5.0);
    }

    #[test]
    fn values_in_plausible_ranges() {
        let rel = generate(2);
        let s = rel.schema();
        let mpg = s.require("Mpg").unwrap();
        let hp = s.require("Horsepower").unwrap();
        for t in rel.tuples() {
            let m = t[mpg].as_f64().unwrap();
            assert!((5.0..60.0).contains(&m), "mpg {m}");
            let h = t[hp].as_f64().unwrap();
            assert!((30.0..260.0).contains(&h), "hp {h}");
        }
    }

    #[test]
    fn horsepower_delta_rule() {
        let rules = rules();
        assert!(rules.validate("Horsepower", "150", "170"));
        assert!(!rules.validate("Horsepower", "150", "180"));
    }
}
