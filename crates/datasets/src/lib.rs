//! Synthetic datasets mirroring the paper's evaluation data.
//!
//! The paper evaluates on four real-world datasets (Restaurant, Cars,
//! Glass, Bridges — Table 3) plus the Medicare *Physician Compare* extract
//! (Table 5). None of them is redistributable here, so this crate generates
//! synthetic stand-ins with the **same schema arity, tuple counts, type
//! mix, duplicate structure, and planted approximate dependencies** (see
//! DESIGN.md, substitution 1). The imputation algorithms only observe value
//! distributions and distance structure, both of which the generators
//! control, so the paper's relative comparisons are preserved.
//!
//! Every generator is deterministic in its seed. Each dataset also ships
//! the validation rules (Section 6.1) used to judge imputation results.

pub mod bridges;
pub mod cars;
pub mod glass;
pub mod hospital;
pub mod names;
pub mod physician;
pub mod restaurant;

use renuver_data::Relation;
use renuver_rulekit::RuleSet;

/// The four benchmark datasets of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Restaurant guide listings with duplicates (864 × 6, textual).
    Restaurant,
    /// Auto-MPG style car records (406 × 9, numeric + one text column).
    Cars,
    /// Glass oxide compositions (214 × 11, numeric).
    Glass,
    /// Pittsburgh bridge records (108 × 13, categorical-heavy).
    Bridges,
}

impl Dataset {
    /// All four benchmark datasets, in the paper's Table 3 order.
    pub fn all() -> [Dataset; 4] {
        [Dataset::Restaurant, Dataset::Cars, Dataset::Glass, Dataset::Bridges]
    }

    /// The dataset's display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Restaurant => "Restaurant",
            Dataset::Cars => "Cars",
            Dataset::Glass => "Glass",
            Dataset::Bridges => "Bridges",
        }
    }

    /// Generates the dataset with the canonical paper-matched tuple count.
    pub fn relation(self, seed: u64) -> Relation {
        self.relation_n(self.paper_tuples(), seed)
    }

    /// Generates the dataset scaled to `n` tuples (same structure, planted
    /// dependencies, and duplicate proportions as the paper-sized
    /// instance); `relation_n(paper_tuples(), seed)` equals
    /// `relation(seed)`.
    pub fn relation_n(self, n: usize, seed: u64) -> Relation {
        match self {
            Dataset::Restaurant => restaurant::generate_n(n, seed),
            Dataset::Cars => cars::generate_n(n, seed),
            Dataset::Glass => glass::generate_n(n, seed),
            Dataset::Bridges => bridges::generate_n(n, seed),
        }
    }

    /// The validation rules for this dataset.
    pub fn rules(self) -> RuleSet {
        match self {
            Dataset::Restaurant => restaurant::rules(),
            Dataset::Cars => cars::rules(),
            Dataset::Glass => glass::rules(),
            Dataset::Bridges => bridges::rules(),
        }
    }

    /// Tuple count reported in the paper's Table 3 (the generators produce
    /// exactly this many rows).
    pub fn paper_tuples(self) -> usize {
        match self {
            Dataset::Restaurant => 864,
            Dataset::Cars => 406,
            Dataset::Glass => 214,
            Dataset::Bridges => 108,
        }
    }

    /// Attribute count reported in the paper's Table 3.
    pub fn paper_attributes(self) -> usize {
        match self {
            Dataset::Restaurant => 6,
            Dataset::Cars => 9,
            Dataset::Glass => 11,
            Dataset::Bridges => 13,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table_3() {
        for ds in Dataset::all() {
            let rel = ds.relation(1);
            assert_eq!(rel.len(), ds.paper_tuples(), "{}", ds.name());
            assert_eq!(rel.arity(), ds.paper_attributes(), "{}", ds.name());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for ds in Dataset::all() {
            assert_eq!(ds.relation(7), ds.relation(7), "{}", ds.name());
        }
    }

    #[test]
    fn seeds_vary_content() {
        for ds in Dataset::all() {
            assert_ne!(ds.relation(1), ds.relation(2), "{}", ds.name());
        }
    }

    #[test]
    fn generated_data_is_complete() {
        // Missing values are *injected* by the eval harness; the generators
        // themselves produce complete instances so ground truth exists for
        // every cell.
        for ds in Dataset::all() {
            assert_eq!(ds.relation(3).missing_count(), 0, "{}", ds.name());
        }
    }

    #[test]
    fn scaled_generation_matches_paper_size_exactly() {
        for ds in Dataset::all() {
            assert_eq!(
                ds.relation_n(ds.paper_tuples(), 5),
                ds.relation(5),
                "{}",
                ds.name()
            );
        }
    }

    #[test]
    fn scaling_produces_requested_sizes() {
        for ds in Dataset::all() {
            for n in [10usize, 50, 300] {
                let rel = ds.relation_n(n, 1);
                assert_eq!(rel.len(), n, "{} at {n}", ds.name());
                assert_eq!(rel.arity(), ds.paper_attributes());
                assert_eq!(rel.missing_count(), 0);
            }
        }
    }

    #[test]
    fn rules_exist_for_every_dataset() {
        for ds in Dataset::all() {
            assert!(!ds.rules().is_empty(), "{}", ds.name());
        }
    }
}
