//! Tune-run records: per-iteration explain data, the final report, and
//! its JSON rendering (the `/v1/tune` result payload).

use std::time::Duration;

use renuver_data::{AttrId, Schema};
use renuver_eval::{MetricsDiff, Scores, WorkMetrics};
use renuver_obs::json;
use renuver_rfd::RfdSet;

/// Why the tune loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The held-out F1 reached the configured target.
    Target,
    /// No attribute had a legal move left.
    Converged,
    /// The run's budget tripped.
    Budget,
    /// The run was cancelled (`Budget::cancel`).
    Cancelled,
    /// The iteration cap was reached.
    MaxIters,
}

impl StopReason {
    /// The schema label (`obs::schema::TUNE_STOPS`).
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Target => "target",
            StopReason::Converged => "converged",
            StopReason::Budget => "budget",
            StopReason::Cancelled => "cancelled",
            StopReason::MaxIters => "max_iters",
        }
    }
}

/// One recorded threshold move: the width offset applied to the LHS
/// thresholds of every RFD targeting `attr`, before → after.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdMove {
    /// The RHS attribute whose imputation the move serves.
    pub attr: AttrId,
    /// Width offset before the move.
    pub old: f64,
    /// Width offset after the move.
    pub new: f64,
}

/// One tune iteration: the score it measured, the work it did, the
/// deltas vs the previous iteration, and the moves chosen from them.
#[derive(Debug, Clone)]
pub struct TuneIteration {
    /// Iteration index, 0-based (iteration 0 runs the unmodified
    /// discovery thresholds — the baseline).
    pub iter: usize,
    /// Held-out scores under this iteration's thresholds.
    pub scores: Scores,
    /// Work counters of this iteration's imputation run.
    pub work: WorkMetrics,
    /// Work deltas vs the previous iteration (all-zero for iteration 0).
    pub diff: MetricsDiff,
    /// Threshold moves chosen *after* scoring this iteration (empty when
    /// the loop stopped here).
    pub moves: Vec<ThresholdMove>,
    /// Wall time of the iteration (reporting only; never a decision
    /// input).
    pub elapsed: Duration,
}

/// The full outcome of a tune run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Seed that produced the mask (and therefore the whole run).
    pub seed: u64,
    /// Held-out cells masked.
    pub masked: usize,
    /// Scores of the unmodified discovery thresholds (iteration 0).
    pub baseline: Scores,
    /// Best held-out F1 reached.
    pub best_f1: f64,
    /// Iteration that reached it (earliest on ties).
    pub best_iter: usize,
    /// Every executed iteration, in order.
    pub iterations: Vec<TuneIteration>,
    /// The RFD set rebuilt with the best iteration's width offsets —
    /// what an install step should serve.
    pub tuned: RfdSet,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// `true` when the run stopped early on a budget trip or
    /// cancellation — the report covers only the iterations that ran.
    pub partial: bool,
}

impl TuneReport {
    /// Renders the report as the JSON object `/v1/tune/<id>` returns.
    /// Purely derived from the report (no clocks), except the per-
    /// iteration `elapsed_us` timing field.
    pub fn to_json(&self, schema: &Schema) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"seed\":{},\"masked\":{}", self.seed, self.masked));
        out.push_str(",\"stop\":");
        json::write_str(&mut out, self.stop.label());
        out.push_str(&format!(",\"partial\":{}", self.partial));
        out.push_str(",\"baseline\":");
        write_scores(&mut out, &self.baseline);
        out.push_str(&format!(",\"best\":{{\"iter\":{},\"f1\":", self.best_iter));
        json::write_f64(&mut out, self.best_f1);
        out.push_str("},\"iterations\":[");
        for (i, it) in self.iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"iter\":{},\"scores\":", it.iter));
            write_scores(&mut out, &it.scores);
            out.push_str(&format!(
                ",\"elapsed_us\":{},\"candidates\":{},\"verifications\":{},\"oracle_hits\":{}",
                it.elapsed.as_micros(),
                it.work.candidates_scored,
                it.work.verifications,
                it.work.oracle_hits,
            ));
            out.push_str(&format!(
                ",\"d_candidates\":{},\"d_verifications\":{},\"d_oracle_hits\":{}",
                it.diff.d_candidates_scored, it.diff.d_verifications, it.diff.d_oracle_hits,
            ));
            out.push_str(",\"moves\":[");
            for (j, mv) in it.moves.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"attr\":");
                json::write_str(&mut out, schema.name(mv.attr));
                out.push_str(",\"old\":");
                json::write_f64(&mut out, mv.old);
                out.push_str(",\"new\":");
                json::write_f64(&mut out, mv.new);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("],\"thresholds\":");
        json::write_str(&mut out, &self.tuned.to_text(schema));
        out.push('}');
        out
    }
}

fn write_scores(out: &mut String, s: &Scores) {
    out.push_str("{\"precision\":");
    json::write_f64(out, s.precision);
    out.push_str(",\"recall\":");
    json::write_f64(out, s.recall);
    out.push_str(",\"f1\":");
    json::write_f64(out, s.f1);
    out.push_str(&format!(
        ",\"missing\":{},\"imputed\":{},\"correct\":{}}}",
        s.missing, s.imputed, s.correct
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema};
    use renuver_obs::schema::TUNE_STOPS;
    use renuver_rfd::{Constraint, Rfd};

    #[test]
    fn stop_labels_match_the_trace_schema() {
        let all = [
            StopReason::Target,
            StopReason::Converged,
            StopReason::Budget,
            StopReason::Cancelled,
            StopReason::MaxIters,
        ];
        let labels: Vec<&str> = all.iter().map(|s| s.label()).collect();
        assert_eq!(labels, TUNE_STOPS);
    }

    #[test]
    fn report_json_is_valid_and_carries_the_thresholds() {
        let schema = Schema::new([("Name", AttrType::Text), ("City", AttrType::Text)]).unwrap();
        let tuned = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 2.0)],
            Constraint::new(1, 0.0),
        )]);
        let report = TuneReport {
            seed: 42,
            masked: 6,
            baseline: Scores::from_counts(6, 2, 1),
            best_f1: 0.9,
            best_iter: 2,
            iterations: vec![TuneIteration {
                iter: 0,
                scores: Scores::from_counts(6, 2, 1),
                work: WorkMetrics::default(),
                diff: MetricsDiff::default(),
                moves: vec![ThresholdMove { attr: 0, old: 0.0, new: 1.0 }],
                elapsed: Duration::from_micros(1200),
            }],
            tuned,
            stop: StopReason::Target,
            partial: false,
        };
        let text = report.to_json(&schema);
        let v = json::parse(&text).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(obj.get("stop").unwrap().as_str(), Some("target"));
        let thresholds = obj.get("thresholds").unwrap().as_str().unwrap();
        assert!(thresholds.contains("Name"), "{thresholds}");
        let iters = obj.get("iterations").unwrap().as_array().unwrap();
        let mv = iters[0].as_object().unwrap().get("moves").unwrap().as_array().unwrap();
        assert_eq!(mv[0].as_object().unwrap().get("attr").unwrap().as_str(), Some("Name"));
    }
}
