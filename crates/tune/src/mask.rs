//! Seeded, stratified masking of known cells into a held-out sample.
//!
//! Tuning needs ground truth the engine cannot see. We take it from the
//! instance itself: for every attribute the RFD set can impute (every
//! RHS attribute), a seeded sample of that attribute's *known* cells is
//! blanked and remembered. Stratifying per attribute keeps the sample
//! balanced — a wide table with one rarely-missing column still gets
//! held-out cells there — and seeding per attribute makes the mask a
//! pure function of `(relation, targets, seed, rate)`: byte-identical
//! across runs, thread counts, and machines.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use renuver_data::{AttrId, Cell, Relation, Value};
use renuver_eval::GroundTruth;

/// Masks a stratified sample of known cells in the `targets` attributes.
/// Returns the masked relation and the ground truth (cells in attribute-
/// major, then row order — deterministic).
///
/// Per attribute, `max(1, round(rate * known))` cells are hidden (when
/// the attribute has any known cells at all). Each attribute draws from
/// its own seeded generator, so adding a target attribute never changes
/// which cells another attribute masks.
pub fn mask_sample(
    rel: &Relation,
    targets: &[AttrId],
    seed: u64,
    rate: f64,
) -> (Relation, GroundTruth) {
    let mut masked = rel.clone();
    let mut truth: GroundTruth = Vec::new();
    for &attr in targets {
        let mut rows: Vec<usize> =
            (0..rel.len()).filter(|&r| !rel.is_missing(r, attr)).collect();
        if rows.is_empty() {
            continue;
        }
        let take = ((rows.len() as f64 * rate).round() as usize).clamp(1, rows.len());
        let mut rng = StdRng::seed_from_u64(
            seed ^ (attr as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        rows.shuffle(&mut rng);
        rows.truncate(take);
        rows.sort_unstable();
        for row in rows {
            truth.push((Cell::new(row, attr), rel.value(row, attr).clone()));
            masked.set_value(row, attr, Value::Null);
        }
    }
    (masked, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::csv;

    fn rel() -> Relation {
        let mut text = String::from("Name:text,City:text\n");
        for i in 0..20 {
            text.push_str(&format!("name{i},city{}\n", i % 4));
        }
        csv::read_str(&text).unwrap()
    }

    #[test]
    fn masking_is_stratified_and_deterministic() {
        let rel = rel();
        let (masked, truth) = mask_sample(&rel, &[0, 1], 42, 0.2);
        // 20 known cells per attribute, 20% → 4 per attribute.
        assert_eq!(truth.len(), 8);
        for attr in [0usize, 1] {
            assert_eq!(truth.iter().filter(|(c, _)| c.col == attr).count(), 4);
        }
        for (cell, value) in &truth {
            assert!(masked.is_missing(cell.row, cell.col));
            assert_eq!(rel.value(cell.row, cell.col), value);
        }
        // Same inputs, same mask; a different seed moves it.
        let (again, truth2) = mask_sample(&rel, &[0, 1], 42, 0.2);
        assert_eq!(truth, truth2);
        assert_eq!(masked, again);
        let (_, other) = mask_sample(&rel, &[0, 1], 43, 0.2);
        assert_ne!(truth, other);
    }

    #[test]
    fn attributes_draw_independently() {
        let rel = rel();
        let (_, both) = mask_sample(&rel, &[0, 1], 7, 0.2);
        let (_, city_only) = mask_sample(&rel, &[1], 7, 0.2);
        let both_city: GroundTruth =
            both.into_iter().filter(|(c, _)| c.col == 1).collect();
        assert_eq!(both_city, city_only, "adding a target must not reshuffle others");
    }

    #[test]
    fn at_least_one_cell_per_nonempty_target() {
        let rel = csv::read_str("A:text,B:text\nx,y\nx,y\nx,\n").unwrap();
        let (_, truth) = mask_sample(&rel, &[0, 1], 1, 0.01);
        assert_eq!(truth.iter().filter(|(c, _)| c.col == 0).count(), 1);
        assert_eq!(truth.iter().filter(|(c, _)| c.col == 1).count(), 1);
        // Attribute 1 only has two known cells; the masked one is known.
        assert!(truth.iter().all(|(_, v)| !v.is_null()));
    }
}
