//! TRIARD-style threshold auto-tuning (`renuver tune`, `POST /v1/tune`).
//!
//! RENUVER's imputation quality hinges on the per-attribute similarity
//! thresholds of its RFDs, but discovery freezes them at model-build
//! time. This crate treats them as quantities to *fit* against held-out
//! data instead:
//!
//! 1. **Mask** a seeded, stratified sample of known cells in every
//!    attribute the RFD set can impute ([`mask::mask_sample`]).
//! 2. **Impute** the masked relation with the current thresholds.
//! 3. **Score** the result against the hidden truth with `eval`'s
//!    precision/recall machinery.
//! 4. **Adjust**: per target attribute, widen the LHS thresholds of the
//!    RFDs that impute it when the attribute is recall-starved, tighten
//!    when precision bleeds below the floor; repeat from 2 until the
//!    quality target, convergence, the iteration cap, or a budget trip.
//!
//! Every iteration is a budget checkpoint, and every threshold move is
//! recorded with the score- and work-deltas that justified it (the
//! shared [`renuver_eval::MetricsDiff`] engine). The whole run is a pure
//! function of `(relation, rfds, config)` — seeded masking, sorted
//! iteration order, no wall-clock in any decision — so a fixed seed
//! reproduces byte-identical thresholds at any `parallelism`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use renuver_budget::Budget;
use renuver_core::{Renuver, RenuverConfig};
use renuver_data::{AttrId, Relation};
use renuver_eval::{evaluate, GroundTruth, Scores, WorkMetrics};
use renuver_obs::{FieldValue, Tracer};
use renuver_rfd::{Constraint, Rfd, RfdSet};
use renuver_rulekit::RuleSet;

pub mod mask;
pub mod report;

pub use report::{StopReason, ThresholdMove, TuneIteration, TuneReport};

/// Per-iteration progress hook: called with the number of completed
/// iterations. Lets an async caller (the `/v1/tune` job) expose live
/// progress without touching the loop's determinism.
pub type ProgressHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Tuning knobs. [`TuneConfig::default`] matches the CLI defaults.
#[derive(Clone)]
pub struct TuneConfig {
    /// Masking/iteration seed. Callers without an opinion should pass
    /// [`default_seed`] of the model fingerprint so repeat runs agree.
    pub seed: u64,
    /// Fraction of each target attribute's known cells to hold out.
    pub sample_rate: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Held-out F1 at which tuning declares victory.
    pub target_f1: f64,
    /// Width added (or removed) per move, in threshold units.
    pub step: f64,
    /// Cap on the width offset any attribute may accumulate.
    pub max_width: f64,
    /// Precision floor: an attribute imputing below it gets tightened
    /// and frozen (no further widening) to prevent oscillation.
    pub min_precision: f64,
    /// Worker threads for each imputation run (`0` = all cores). The
    /// tuned thresholds are identical for every setting.
    pub parallelism: usize,
    /// Execution budget; checked before every iteration and polled
    /// inside every imputation run. Cancel it to stop a tune mid-run
    /// with a partial report.
    pub budget: Budget,
    /// Structured tracer: emits `tune_start` / `tune_iter` / `tune_end`.
    pub tracer: Tracer,
    /// Validation rules for scoring (exact match when empty).
    pub rules: RuleSet,
    /// Optional per-iteration progress callback.
    pub progress: Option<ProgressHook>,
}

impl std::fmt::Debug for TuneConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuneConfig")
            .field("seed", &self.seed)
            .field("sample_rate", &self.sample_rate)
            .field("max_iters", &self.max_iters)
            .field("target_f1", &self.target_f1)
            .field("step", &self.step)
            .field("max_width", &self.max_width)
            .field("min_precision", &self.min_precision)
            .field("parallelism", &self.parallelism)
            .field("progress", &self.progress.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: 0,
            sample_rate: 0.2,
            max_iters: 12,
            target_f1: 0.95,
            step: 1.0,
            max_width: 8.0,
            min_precision: 0.66,
            parallelism: 0,
            budget: Budget::unlimited(),
            tracer: Tracer::disabled(),
            rules: RuleSet::new(),
            progress: None,
        }
    }
}

/// The default tune seed for a model: a mix of its schema fingerprint,
/// so repeat runs over the same model agree without coordination.
pub fn default_seed(fingerprint: u64) -> u64 {
    fingerprint ^ 0x7E0E_517E_7E0E_517E
}

/// Rebuilds `rfds` with each attribute's width offset added to the LHS
/// thresholds of every RFD targeting it (RHS thresholds are untouched —
/// widening what a donor may *supply* would trade correctness, not
/// recall). Offsets absent from `widths` count as zero.
pub fn widened(rfds: &RfdSet, widths: &BTreeMap<AttrId, f64>) -> RfdSet {
    RfdSet::from_vec(
        rfds.iter()
            .map(|rfd| {
                let w = widths.get(&rfd.rhs_attr()).copied().unwrap_or(0.0);
                Rfd::new(
                    rfd.lhs()
                        .iter()
                        .map(|c| Constraint::new(c.attr, (c.threshold + w).max(0.0)))
                        .collect::<Vec<_>>(),
                    rfd.rhs(),
                )
            })
            .collect(),
    )
}

/// Per-attribute held-out scores: the slice of the ground truth whose
/// cells live in `attr`, judged like [`evaluate`] judges the whole run.
fn attr_scores(rel: &Relation, truth: &GroundTruth, rules: &RuleSet, attr: AttrId) -> Scores {
    let mut missing = 0usize;
    let mut imputed = 0usize;
    let mut correct = 0usize;
    for (cell, expected) in truth.iter().filter(|(c, _)| c.col == attr) {
        missing += 1;
        let got = rel.value(cell.row, cell.col);
        if got.is_null() {
            continue;
        }
        imputed += 1;
        if rules.validate(rel.schema().name(attr), &got.render(), &expected.render()) {
            correct += 1;
        }
    }
    Scores::from_counts(missing, imputed, correct)
}

/// Runs the tune loop over `rel` with `rfds` as the starting thresholds.
///
/// The returned report always reflects the iterations that actually ran;
/// when the budget trips or the run is cancelled, `partial` is set and
/// `tuned` holds the best thresholds seen so far (the discovery set if
/// nothing ran).
pub fn tune(rel: &Relation, rfds: &RfdSet, cfg: &TuneConfig) -> TuneReport {
    let targets: Vec<AttrId> = rfds
        .iter()
        .map(Rfd::rhs_attr)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let (masked, truth) = mask::mask_sample(rel, &targets, cfg.seed, cfg.sample_rate);
    let run_span = cfg.tracer.span("tune::run");
    cfg.tracer.event("tune_start", run_span.id(), || {
        vec![
            ("seed", FieldValue::U64(cfg.seed)),
            ("masked", FieldValue::U64(truth.len() as u64)),
            ("rfds", FieldValue::U64(rfds.len() as u64)),
            ("target_f1", FieldValue::F64(cfg.target_f1)),
            ("max_iters", FieldValue::U64(cfg.max_iters as u64)),
            ("sample_rate", FieldValue::F64(cfg.sample_rate)),
        ]
    });

    let mut widths: BTreeMap<AttrId, f64> = targets.iter().map(|&a| (a, 0.0)).collect();
    let mut frozen: BTreeSet<AttrId> = BTreeSet::new();
    let mut iterations: Vec<TuneIteration> = Vec::new();
    let mut prev_work: Option<WorkMetrics> = None;
    let mut prev_f1 = 0.0f64;
    let mut baseline = Scores::default();
    let mut best: Option<(f64, usize)> = None;
    let mut best_widths = widths.clone();
    let mut stop = if truth.is_empty() { StopReason::Converged } else { StopReason::MaxIters };

    for iter in 0..cfg.max_iters {
        if truth.is_empty() {
            break;
        }
        if cfg.budget.check("tune::iter").is_err() {
            stop = if cfg.budget.is_cancelled() {
                StopReason::Cancelled
            } else {
                StopReason::Budget
            };
            break;
        }
        let effective = widened(rfds, &widths);
        let engine_cfg = RenuverConfig {
            budget: cfg.budget.clone(),
            parallelism: cfg.parallelism,
            ..RenuverConfig::default()
        };
        let started = Instant::now();
        let result = Renuver::new(engine_cfg).impute(&masked, &effective);
        let elapsed = started.elapsed();
        let scores = evaluate(&result.relation, &truth, &cfg.rules);
        let work = WorkMetrics::from_stats(&result.stats, result.budget.phases.clone());
        let diff = prev_work.as_ref().map(|p| work.diff(p)).unwrap_or_default();
        if iter == 0 {
            baseline = scores;
        }
        if best.map_or(true, |(f1, _)| scores.f1 > f1) {
            best = Some((scores.f1, iter));
            best_widths = widths.clone();
        }

        // Decide the next moves from this iteration's per-attribute
        // scores — unless the loop is done here.
        let tripped = result.budget.tripped.is_some();
        let mut moves: Vec<ThresholdMove> = Vec::new();
        if scores.f1 < cfg.target_f1 && !tripped {
            for &attr in &targets {
                let s = attr_scores(&result.relation, &truth, &cfg.rules, attr);
                let w = widths[&attr];
                if s.imputed > 0 && s.precision < cfg.min_precision && w > 0.0 {
                    // Precision bleeding: step back and freeze the
                    // attribute so it cannot oscillate.
                    frozen.insert(attr);
                    moves.push(ThresholdMove { attr, old: w, new: (w - cfg.step).max(0.0) });
                } else if s.recall < 1.0 && w + cfg.step <= cfg.max_width && !frozen.contains(&attr)
                {
                    moves.push(ThresholdMove { attr, old: w, new: w + cfg.step });
                }
            }
        }
        cfg.tracer.event("tune_iter", run_span.id(), || {
            vec![
                ("iter", FieldValue::U64(iter as u64)),
                ("f1", FieldValue::F64(scores.f1)),
                ("precision", FieldValue::F64(scores.precision)),
                ("recall", FieldValue::F64(scores.recall)),
                ("attrs", FieldValue::U64s(moves.iter().map(|m| m.attr as u64).collect())),
                ("old", FieldValue::F64s(moves.iter().map(|m| m.old).collect())),
                ("new", FieldValue::F64s(moves.iter().map(|m| m.new).collect())),
                ("d_f1", FieldValue::F64(scores.f1 - prev_f1)),
                ("d_candidates", FieldValue::F64(diff.d_candidates_scored as f64)),
                ("d_verifications", FieldValue::F64(diff.d_verifications as f64)),
                ("d_oracle_hits", FieldValue::F64(diff.d_oracle_hits as f64)),
            ]
        });
        for mv in &moves {
            widths.insert(mv.attr, mv.new);
        }
        let f1 = scores.f1;
        let stalled = moves.is_empty();
        iterations.push(TuneIteration { iter, scores, work: work.clone(), diff, moves, elapsed });
        if let Some(hook) = &cfg.progress {
            hook(iterations.len() as u64);
        }
        prev_work = Some(work);
        prev_f1 = f1;
        if tripped {
            stop = if cfg.budget.is_cancelled() {
                StopReason::Cancelled
            } else {
                StopReason::Budget
            };
            break;
        }
        if f1 >= cfg.target_f1 {
            stop = StopReason::Target;
            break;
        }
        if stalled {
            stop = StopReason::Converged;
            break;
        }
    }

    let (best_f1, best_iter) = best.unwrap_or((0.0, 0));
    let partial = matches!(stop, StopReason::Budget | StopReason::Cancelled);
    let tuned = widened(rfds, &best_widths);
    cfg.tracer.event("tune_end", run_span.id(), || {
        vec![
            ("iters", FieldValue::U64(iterations.len() as u64)),
            ("f1", FieldValue::F64(best_f1)),
            ("stop", FieldValue::Str(stop.label())),
            ("best_iter", FieldValue::U64(best_iter as u64)),
            ("partial", FieldValue::Bool(partial)),
        ]
    });
    TuneReport {
        seed: cfg.seed,
        masked: truth.len(),
        baseline,
        best_f1,
        best_iter,
        iterations,
        tuned,
        stop,
        partial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::csv;
    use renuver_obs::schema::validate_trace;

    /// Pairs of rows whose names differ by an edit distance of 2
    /// (`" 2"` suffix) but agree on City. At the discovery threshold
    /// `Name(≤0)` a masked City cell has no donor; widening the LHS to
    /// ≥2 admits the twin and recall jumps.
    fn twin_rel() -> Relation {
        // Base names are 4 repeated letters, pairwise edit distance ≥ 4,
        // so nothing but the twin ever enters a widened cluster.
        let mut text = String::from("Name:text,City:text\n");
        for i in 0..12u8 {
            let c = (b'a' + i) as char;
            let name: String = std::iter::repeat(c).take(4).collect();
            text.push_str(&format!("{name},city-{c}\n{name} 2,city-{c}\n"));
        }
        csv::read_str(&text).unwrap()
    }

    fn sigma() -> RfdSet {
        RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )])
    }

    #[test]
    fn tuning_beats_the_discovery_thresholds_on_the_twin_fixture() {
        let rel = twin_rel();
        let cfg = TuneConfig { seed: 42, tracer: Tracer::enabled(), ..TuneConfig::default() };
        let report = tune(&rel, &sigma(), &cfg);
        assert_eq!(report.baseline.f1, 0.0, "no exact-name donor at width 0");
        assert!(
            report.best_f1 > report.baseline.f1,
            "tuning must improve held-out F1: {report:?}"
        );
        // Every masked cell whose twin survived masking is recovered
        // once the width reaches the twin distance (seed 42 masks both
        // rows of one pair, so recall tops out below 1.0 here).
        assert!(report.best_f1 >= 0.7, "twins are near-perfect donors: {report:?}");
        assert!(!report.partial);
        // The winning set widened Name's LHS threshold, not City's RHS.
        let tuned = report.tuned.get(0);
        assert!(tuned.lhs()[0].threshold >= 2.0, "{:?}", report.tuned);
        assert_eq!(tuned.rhs_threshold(), 0.0);
        // Every emitted line satisfies the closed trace schema.
        let trace = cfg.tracer.to_jsonl();
        validate_trace(&trace).unwrap_or_else(|(l, e)| panic!("line {l}: {e}\n{trace}"));
        assert!(trace.contains("\"kind\":\"tune_start\""), "{trace}");
        assert!(trace.contains("\"kind\":\"tune_iter\""), "{trace}");
        assert!(trace.contains("\"kind\":\"tune_end\""), "{trace}");
    }

    #[test]
    fn fixed_seed_is_byte_identical_across_parallelism() {
        let rel = twin_rel();
        let schema = rel.schema().clone();
        let text_for = |par: usize| {
            let cfg = TuneConfig { seed: 7, parallelism: par, ..TuneConfig::default() };
            tune(&rel, &sigma(), &cfg).tuned.to_text(&schema)
        };
        let serial = text_for(1);
        assert_eq!(serial, text_for(2));
        assert_eq!(serial, text_for(0));
    }

    #[test]
    fn cancelled_runs_return_a_partial_report() {
        let rel = twin_rel();
        let budget = Budget::unlimited();
        budget.cancel();
        let cfg = TuneConfig { seed: 1, budget, ..TuneConfig::default() };
        let report = tune(&rel, &sigma(), &cfg);
        assert_eq!(report.stop, StopReason::Cancelled);
        assert!(report.partial);
        assert!(report.iterations.is_empty());
        // Nothing ran, so the "best" thresholds are the discovery set.
        assert_eq!(report.tuned.to_text(rel.schema()), sigma().to_text(rel.schema()));
    }

    #[test]
    fn precision_bleed_tightens_and_freezes() {
        // Isolated name pairs one edit apart whose cities disagree: a
        // widened cluster always offers a *consistent but wrong* donor,
        // so the tuner must back the width off and freeze the attribute.
        let mut text = String::from("Name:text,City:text\n");
        for i in 0..8u8 {
            let c = (b'a' + i) as char;
            let base: String = std::iter::repeat(c).take(4).collect();
            text.push_str(&format!("{base},alpha-{c}\n{}z,omega-{c}\n", &base[..3]));
        }
        let rel = csv::read_str(&text).unwrap();
        let cfg = TuneConfig { seed: 3, max_iters: 6, ..TuneConfig::default() };
        let report = tune(&rel, &sigma(), &cfg);
        let tightened: Vec<&ThresholdMove> = report
            .iterations
            .iter()
            .flat_map(|it| it.moves.iter())
            .filter(|m| m.new < m.old)
            .collect();
        assert!(
            !tightened.is_empty(),
            "conflicting donors must trigger a tighten: {report:?}"
        );
    }

    #[test]
    fn widened_leaves_unrelated_attributes_alone() {
        let rfds = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(1, 0.5)),
            Rfd::new(vec![Constraint::new(1, 2.0)], Constraint::new(2, 0.0)),
        ]);
        let widths: BTreeMap<AttrId, f64> = [(1usize, 3.0)].into_iter().collect();
        let out = widened(&rfds, &widths);
        // RFD targeting attr 1 widened on the LHS only.
        assert_eq!(out.get(0).lhs()[0].threshold, 4.0);
        assert_eq!(out.get(0).rhs_threshold(), 0.5);
        // RFD targeting attr 2 untouched.
        assert_eq!(out.get(1).lhs()[0].threshold, 2.0);
    }
}
