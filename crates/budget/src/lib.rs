//! Execution budgets and resource tracking.
//!
//! The paper's experiments run under hard kill limits (48 h wall-clock,
//! 30 GB memory — Tables 4 and 5); before this crate existed the repo only
//! *measured* time and memory, so a runaway discovery lattice or verify
//! scan could only be killed from outside, losing all partial work. This
//! crate provides both halves of the story:
//!
//! - **Tracking**: [`TrackingAlloc`], a counting global allocator, with
//!   [`current_bytes`] / [`peak_bytes`] / [`reset_peak`] / [`measure`].
//! - **Enforcement**: a shared, cloneable [`Budget`] handle (deadline +
//!   allocation ceiling + cooperative cancellation + deterministic
//!   operation limit) that hot loops poll via [`Budget::check`]. The first
//!   limit to trip is recorded (with the phase that observed it) and every
//!   subsequent check reports it, so a pipeline can drain gracefully and
//!   return partial results instead of dying.
//!
//! `Budget` lives at the bottom of the crate graph so discovery
//! (`renuver-rfd`), oracle construction (`renuver-distance`), and the
//! imputation engine (`renuver-core`) can all share one handle.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Bytes currently allocated through [`TrackingAlloc`].
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A counting global allocator: wraps the system allocator and maintains
/// the live-bytes counter and its high-water mark. Install it in a binary
/// with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: renuver_budget::TrackingAlloc = renuver_budget::TrackingAlloc;
/// ```
///
/// The paper reports OS-level memory; a counting allocator measures the
/// same quantity (heap high-water mark) portably and deterministically.
/// [`Budget::with_mem_ceiling`] reads the same counter, so memory budgets
/// only trip in binaries that install the allocator.
pub struct TrackingAlloc;

// SAFETY: delegates allocation to `System`; the counters are simple
// atomics with no safety impact.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            let old = layout.size();
            if new_size >= old {
                let now = CURRENT.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Resets the high-water mark to the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The high-water mark (bytes) since the last [`reset_peak`]. Zero when
/// [`TrackingAlloc`] is not installed as the global allocator.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Bytes currently live. Zero when the allocator is not installed.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Runs `f`, returning its output, the elapsed wall time, and the heap
/// high-water mark observed during the call (relative to the start).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration, usize) {
    reset_peak();
    let before = current_bytes();
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    let peak = peak_bytes().saturating_sub(before);
    (out, elapsed, peak)
}

/// Formats a byte count the way the paper's tables do (`1.38 GB`,
/// `730 MB`).
pub fn format_bytes(bytes: usize) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.0} MB", b / MB)
    } else if b >= KB {
        format!("{:.0} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a duration the way the paper's tables do (`14m 29s`, `470ms`).
pub fn format_duration(d: Duration) -> String {
    let ms = d.as_millis();
    if ms < 1_000 {
        format!("{ms}ms")
    } else if ms < 60_000 {
        format!("{:.1}s", d.as_secs_f64())
    } else if ms < 3_600_000 {
        let m = d.as_secs() / 60;
        let s = d.as_secs() % 60;
        format!("{m}m {s}s")
    } else {
        let h = d.as_secs() / 3600;
        let m = (d.as_secs() % 3600) / 60;
        format!("{h}h {m}m")
    }
}

/// Which limit a [`Budget`] ran into first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetTrip {
    /// The wall-clock deadline passed.
    Deadline,
    /// Live heap bytes exceeded the ceiling (requires [`TrackingAlloc`]).
    Memory,
    /// The cooperative-check operation limit was reached. Unlike a
    /// deadline, an operation limit trips at exactly the same point on
    /// every run — the deterministic way to exercise and test degradation.
    Ops,
    /// [`Budget::cancel`] was called on some clone of the handle.
    Cancelled,
}

impl BudgetTrip {
    /// Short machine-readable label, used by trace events (the human
    /// phrasing lives in the `Display` impl).
    pub fn label(self) -> &'static str {
        match self {
            BudgetTrip::Deadline => "deadline",
            BudgetTrip::Memory => "memory",
            BudgetTrip::Ops => "ops",
            BudgetTrip::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetTrip::Deadline => write!(f, "deadline"),
            BudgetTrip::Memory => write!(f, "memory ceiling"),
            BudgetTrip::Ops => write!(f, "operation limit"),
            BudgetTrip::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A hand-advanced clock for sleep-free deterministic tests: budgets built
/// with [`Budget::with_manual_clock`] read this instead of `Instant`.
#[derive(Clone, Debug, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock frozen at zero elapsed time.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.0.fetch_add(
            u64::try_from(d.as_millis()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Elapsed time according to this clock.
    pub fn elapsed(&self) -> Duration {
        Duration::from_millis(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Debug)]
enum Clock {
    Real(Instant),
    Manual(ManualClock),
}

impl Clock {
    fn elapsed(&self) -> Duration {
        match self {
            Clock::Real(start) => start.elapsed(),
            Clock::Manual(c) => c.elapsed(),
        }
    }
}

/// Observer invoked exactly once, by the check that first records a trip.
/// Wrapped in a newtype so `Inner` can keep deriving/printing `Debug`.
#[derive(Clone)]
struct TripHook(Arc<dyn Fn(BudgetTrip, &'static str) + Send + Sync>);

impl fmt::Debug for TripHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TripHook(..)")
    }
}

#[derive(Debug)]
struct Inner {
    clock: Clock,
    deadline: Option<Duration>,
    mem_ceiling: Option<usize>,
    ops_limit: Option<u64>,
    ops: AtomicU64,
    cancelled: AtomicBool,
    trip: OnceLock<(BudgetTrip, &'static str)>,
    trip_hook: Option<TripHook>,
}

impl Clone for Inner {
    fn clone(&self) -> Self {
        let trip = OnceLock::new();
        if let Some(t) = self.trip.get() {
            let _ = trip.set(*t);
        }
        Inner {
            clock: self.clock.clone(),
            deadline: self.deadline,
            mem_ceiling: self.mem_ceiling,
            ops_limit: self.ops_limit,
            ops: AtomicU64::new(self.ops.load(Ordering::Relaxed)),
            cancelled: AtomicBool::new(self.cancelled.load(Ordering::Relaxed)),
            trip,
            trip_hook: self.trip_hook.clone(),
        }
    }
}

/// A shared execution budget, polled cooperatively by the pipeline's hot
/// loops. Cloning is cheap and every clone observes (and contributes to)
/// the same state, so one handle can be threaded through discovery, oracle
/// construction, and imputation while the caller keeps a clone for
/// cancellation.
///
/// The default budget is unlimited: [`Budget::check`] never trips and
/// costs two atomic operations, so unbudgeted runs behave exactly as
/// before.
///
/// ```
/// use renuver_budget::{Budget, BudgetTrip};
///
/// let budget = Budget::unlimited().with_ops_limit(2);
/// assert!(budget.check("demo").is_ok());
/// assert!(budget.check("demo").is_ok());
/// assert_eq!(budget.check("demo"), Err(BudgetTrip::Ops));
/// assert_eq!(budget.trip(), Some(BudgetTrip::Ops));
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never trips (unless [`Budget::cancel`]led).
    pub fn unlimited() -> Self {
        Budget {
            inner: Arc::new(Inner {
                clock: Clock::Real(Instant::now()),
                deadline: None,
                mem_ceiling: None,
                ops_limit: None,
                ops: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                trip: OnceLock::new(),
                trip_hook: None,
            }),
        }
    }

    fn edit(mut self, f: impl FnOnce(&mut Inner)) -> Self {
        f(Arc::make_mut(&mut self.inner));
        self
    }

    /// Caps wall-clock time, measured from construction (or from the
    /// attached [`ManualClock`]).
    pub fn with_deadline(self, deadline: Duration) -> Self {
        self.edit(|i| i.deadline = Some(deadline))
    }

    /// Caps live heap bytes as reported by [`current_bytes`]. Only
    /// meaningful in binaries that install [`TrackingAlloc`]; otherwise the
    /// counter stays zero and the ceiling never trips.
    pub fn with_mem_ceiling(self, bytes: usize) -> Self {
        self.edit(|i| i.mem_ceiling = Some(bytes))
    }

    /// Caps the number of cooperative checks — a machine-independent,
    /// bit-for-bit reproducible way to trip mid-run.
    pub fn with_ops_limit(self, ops: u64) -> Self {
        self.edit(|i| i.ops_limit = Some(ops))
    }

    /// Replaces the wall clock with a hand-advanced one (tests).
    pub fn with_manual_clock(self, clock: ManualClock) -> Self {
        self.edit(|i| i.clock = Clock::Manual(clock))
    }

    /// Registers an observer invoked exactly once — by whichever
    /// [`Budget::check`] first records a trip, with the trip kind and the
    /// phase that observed it. The observability layer uses this to turn
    /// budget trips into trace events at the moment they happen; the hook
    /// must not call back into the budget.
    pub fn with_trip_hook(
        self,
        hook: Arc<dyn Fn(BudgetTrip, &'static str) + Send + Sync>,
    ) -> Self {
        self.edit(|i| i.trip_hook = Some(TripHook(hook)))
    }

    /// Requests cancellation: the next [`Budget::check`] on any clone
    /// trips with [`BudgetTrip::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` iff [`Budget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// `true` iff any limit (deadline, memory, ops) is configured.
    /// Cancellation is always possible and does not count.
    pub fn is_limited(&self) -> bool {
        self.inner.deadline.is_some()
            || self.inner.mem_ceiling.is_some()
            || self.inner.ops_limit.is_some()
    }

    /// The cooperative check: counts one operation, then reports the first
    /// exceeded limit. Once a trip is recorded every later check returns
    /// the same trip — callers drain by skipping remaining work, not by
    /// unwinding.
    ///
    /// `phase` names the call site (e.g. `"rfd::discover"`); the first
    /// phase to observe the trip is kept for the [`BudgetReport`].
    pub fn check(&self, phase: &'static str) -> Result<(), BudgetTrip> {
        if let Some((t, _)) = self.inner.trip.get() {
            return Err(*t);
        }
        let ops = self.inner.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let tripped = if self.inner.cancelled.load(Ordering::Relaxed) {
            Some(BudgetTrip::Cancelled)
        } else if self.inner.ops_limit.is_some_and(|limit| ops > limit) {
            Some(BudgetTrip::Ops)
        } else if self.inner.deadline.is_some_and(|d| self.inner.clock.elapsed() >= d) {
            Some(BudgetTrip::Deadline)
        } else if self.inner.mem_ceiling.is_some_and(|c| current_bytes() > c) {
            Some(BudgetTrip::Memory)
        } else {
            None
        };
        match tripped {
            None => Ok(()),
            Some(t) => {
                // First writer wins; racing phases agree on the trip kind
                // variance-free because every later check re-reads the cell.
                if self.inner.trip.set((t, phase)).is_ok() {
                    if let Some(TripHook(hook)) = &self.inner.trip_hook {
                        hook(t, phase);
                    }
                }
                Err(self.inner.trip.get().map_or(t, |(t, _)| *t))
            }
        }
    }

    /// The recorded trip, if any check has tripped so far.
    pub fn trip(&self) -> Option<BudgetTrip> {
        self.inner.trip.get().map(|(t, _)| *t)
    }

    /// The phase that first observed the trip.
    pub fn trip_phase(&self) -> Option<&'static str> {
        self.inner.trip.get().map(|(_, p)| *p)
    }

    /// How close the budget is to tripping, in `[0, 1]`: the largest
    /// consumed fraction across the configured limits (1.0 once tripped or
    /// cancelled, 0.0 for an unlimited budget). The imputation engine uses
    /// this to enter its degraded verification mode *before* the budget
    /// runs dry.
    pub fn pressure(&self) -> f64 {
        if self.inner.trip.get().is_some() || self.is_cancelled() {
            return 1.0;
        }
        let mut p = 0.0f64;
        if let Some(d) = self.inner.deadline {
            p = p.max(if d.is_zero() {
                1.0
            } else {
                self.inner.clock.elapsed().as_secs_f64() / d.as_secs_f64()
            });
        }
        if let Some(c) = self.inner.mem_ceiling {
            p = p.max(if c == 0 { 1.0 } else { current_bytes() as f64 / c as f64 });
        }
        if let Some(l) = self.inner.ops_limit {
            p = p.max(if l == 0 {
                1.0
            } else {
                self.inner.ops.load(Ordering::Relaxed) as f64 / l as f64
            });
        }
        p.min(1.0)
    }

    /// Elapsed time since construction (per the attached clock).
    pub fn elapsed(&self) -> Duration {
        self.inner.clock.elapsed()
    }

    /// Cooperative checks performed so far.
    pub fn ops(&self) -> u64 {
        self.inner.ops.load(Ordering::Relaxed)
    }

    /// Snapshot of the run for reporting.
    pub fn report(&self) -> BudgetReport {
        let (tripped, tripped_at) = match self.inner.trip.get() {
            Some((t, p)) => (Some(*t), Some(*p)),
            None => (None, None),
        };
        BudgetReport {
            elapsed: self.elapsed(),
            peak_bytes: peak_bytes(),
            ops: self.ops(),
            tripped,
            tripped_at,
            phases: Vec::new(),
        }
    }
}

/// Run-level summary of a budgeted execution: how long it took, the heap
/// high-water mark, and — if the budget tripped — which limit fired and
/// where.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetReport {
    /// Wall-clock (or manual-clock) time from budget construction to the
    /// snapshot.
    pub elapsed: Duration,
    /// Global heap high-water mark at snapshot time (0 without
    /// [`TrackingAlloc`]).
    pub peak_bytes: usize,
    /// Cooperative checks performed.
    pub ops: u64,
    /// The limit that fired, if any.
    pub tripped: Option<BudgetTrip>,
    /// The phase that first observed the trip.
    pub tripped_at: Option<&'static str>,
    /// Where the time went: `(phase label, self-time in microseconds)`,
    /// largest first. Empty unless the run was traced — the attribution is
    /// aggregated from the tracer's span records by the caller that owns
    /// both (see `renuver_obs::flamegraph::phase_totals`), so an untraced
    /// run pays nothing for it.
    pub phases: Vec<(String, u64)>,
}

impl fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "elapsed {}, peak {}",
            format_duration(self.elapsed),
            format_bytes(self.peak_bytes)
        )?;
        if let Some(t) = self.tripped {
            write!(f, ", budget tripped: {t}")?;
            if let Some(p) = self.tripped_at {
                write!(f, " in {p}")?;
            }
        }
        if !self.phases.is_empty() {
            let total: u64 = self.phases.iter().map(|(_, us)| us).sum();
            write!(f, "; time by phase:")?;
            for (label, us) in self.phases.iter().take(5) {
                let pct = (100 * us).checked_div(total).unwrap_or(0);
                write!(
                    f,
                    " {label} {} ({pct}%)",
                    format_duration(Duration::from_micros(*us))
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_output_and_nonzero_time() {
        let (out, elapsed, _peak) = measure(|| {
            let v: Vec<u64> = (0..100_000).collect();
            v.len()
        });
        assert_eq!(out, 100_000);
        assert!(elapsed.as_nanos() > 0);
        // Peak is only nonzero when TrackingAlloc is the global allocator,
        // which unit tests do not install.
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(10 * 1024), "10 KB");
        assert_eq!(format_bytes(730 * 1024 * 1024), "730 MB");
        assert_eq!(format_bytes(1_482_000_000), "1.38 GB");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(470)), "470ms");
        assert_eq!(format_duration(Duration::from_millis(3_200)), "3.2s");
        assert_eq!(format_duration(Duration::from_secs(869)), "14m 29s");
        assert_eq!(format_duration(Duration::from_secs(48 * 3600 + 120)), "48h 2m");
    }

    #[test]
    fn report_display_includes_phase_attribution() {
        let mut report = Budget::unlimited().report();
        assert!(!report.to_string().contains("time by phase"));
        report.phases = vec![
            ("distance::oracle_build".to_string(), 750_000),
            ("core::impute_cells".to_string(), 250_000),
        ];
        let text = report.to_string();
        assert!(text.contains("time by phase"), "{text}");
        assert!(text.contains("distance::oracle_build 750ms (75%)"), "{text}");
        assert!(text.contains("core::impute_cells 250ms (25%)"), "{text}");
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.check("loop").is_ok());
        }
        assert_eq!(b.trip(), None);
        assert_eq!(b.pressure(), 0.0);
        assert!(!b.is_limited());
        assert_eq!(b.ops(), 10_000);
    }

    #[test]
    fn deadline_trips_on_manual_clock_without_sleeping() {
        let clock = ManualClock::new();
        let b = Budget::unlimited()
            .with_deadline(Duration::from_secs(5))
            .with_manual_clock(clock.clone());
        assert!(b.check("warm").is_ok());
        clock.advance(Duration::from_secs(4));
        assert!(b.check("still fine").is_ok());
        assert!(b.pressure() >= 0.79 && b.pressure() < 1.0, "{}", b.pressure());
        clock.advance(Duration::from_secs(2));
        assert_eq!(b.check("late"), Err(BudgetTrip::Deadline));
        assert_eq!(b.trip(), Some(BudgetTrip::Deadline));
        assert_eq!(b.trip_phase(), Some("late"));
        assert_eq!(b.pressure(), 1.0);
        // Sticky: later phases see the same trip, not a new one.
        assert_eq!(b.check("after"), Err(BudgetTrip::Deadline));
        assert_eq!(b.trip_phase(), Some("late"));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let b = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_manual_clock(ManualClock::new());
        assert_eq!(b.check("start"), Err(BudgetTrip::Deadline));
    }

    #[test]
    fn ops_limit_is_exact_and_deterministic() {
        for _ in 0..3 {
            let b = Budget::unlimited().with_ops_limit(3);
            assert!(b.check("a").is_ok());
            assert!(b.check("b").is_ok());
            assert!(b.check("c").is_ok());
            assert_eq!(b.check("d"), Err(BudgetTrip::Ops));
            assert_eq!(b.trip_phase(), Some("d"));
        }
    }

    #[test]
    fn cancellation_reaches_every_clone() {
        let b = Budget::unlimited();
        let worker = b.clone();
        assert!(worker.check("pre").is_ok());
        b.cancel();
        assert!(b.is_cancelled());
        assert_eq!(worker.check("post"), Err(BudgetTrip::Cancelled));
        assert_eq!(b.trip(), Some(BudgetTrip::Cancelled));
        assert_eq!(b.pressure(), 1.0);
    }

    #[test]
    fn clones_share_the_ops_counter() {
        let a = Budget::unlimited().with_ops_limit(2);
        let b = a.clone();
        assert!(a.check("a").is_ok());
        assert!(b.check("b").is_ok());
        assert_eq!(a.check("a2"), Err(BudgetTrip::Ops));
        assert_eq!(b.trip(), Some(BudgetTrip::Ops));
    }

    #[test]
    fn builder_after_clone_does_not_disturb_the_original() {
        // `with_*` on a shared handle must copy-on-write, not mutate the
        // budget the clone still points at.
        let base = Budget::unlimited();
        let strict = base.clone().with_ops_limit(0);
        assert_eq!(strict.check("strict"), Err(BudgetTrip::Ops));
        assert!(base.check("base").is_ok());
        assert_eq!(base.trip(), None);
    }

    #[test]
    fn mem_ceiling_configured_but_untracked_stays_quiet() {
        // Without TrackingAlloc installed current_bytes() is 0, so the
        // ceiling cannot trip; the integration test with the allocator
        // installed (tests/alloc_tracking.rs) covers the real path.
        let b = Budget::unlimited().with_mem_ceiling(1);
        assert!(b.check("x").is_ok());
        assert!(b.is_limited());
    }

    #[test]
    fn report_captures_trip_site() {
        let b = Budget::unlimited().with_ops_limit(1);
        let _ = b.check("one");
        let _ = b.check("two");
        let r = b.report();
        assert_eq!(r.tripped, Some(BudgetTrip::Ops));
        assert_eq!(r.tripped_at, Some("two"));
        assert_eq!(r.ops, 2);
        let text = r.to_string();
        assert!(text.contains("operation limit"), "{text}");
        assert!(text.contains("in two"), "{text}");
    }

    #[test]
    fn trip_hook_fires_exactly_once_with_site() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(BudgetTrip, &'static str)>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let b = Budget::unlimited()
            .with_ops_limit(1)
            .with_trip_hook(Arc::new(move |t, p| sink.lock().unwrap().push((t, p))));
        let worker = b.clone();
        assert!(b.check("warm").is_ok());
        assert_eq!(worker.check("hot"), Err(BudgetTrip::Ops));
        // Sticky re-reports must not re-fire the hook.
        assert_eq!(b.check("later"), Err(BudgetTrip::Ops));
        assert_eq!(*seen.lock().unwrap(), vec![(BudgetTrip::Ops, "hot")]);
    }

    #[test]
    fn pressure_tracks_ops_fraction() {
        let b = Budget::unlimited().with_ops_limit(10);
        for _ in 0..5 {
            let _ = b.check("x");
        }
        assert!((b.pressure() - 0.5).abs() < 1e-9, "{}", b.pressure());
    }

    #[test]
    fn trip_display_names() {
        assert_eq!(BudgetTrip::Deadline.to_string(), "deadline");
        assert_eq!(BudgetTrip::Memory.to_string(), "memory ceiling");
        assert_eq!(BudgetTrip::Ops.to_string(), "operation limit");
        assert_eq!(BudgetTrip::Cancelled.to_string(), "cancelled");
    }
}
