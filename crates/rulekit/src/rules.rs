//! Admissibility rules and rule sets (the paper's three rule kinds).

use std::collections::BTreeMap;

use crate::regex::Regex;

/// Character class retained by a [`Rule::Pattern`] projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CharClass {
    /// ASCII digits `0-9` (phone numbers, zips). Default.
    #[default]
    Digits,
    /// Unicode alphabetic characters, lowercased.
    Letters,
    /// Digits plus lowercased alphabetic characters.
    Alnum,
}

impl CharClass {
    /// Projects `s` onto this class: keeps only the retained characters
    /// (lowercased where alphabetic), dropping separators and noise.
    pub fn project(self, s: &str) -> String {
        s.chars()
            .filter_map(|c| match self {
                CharClass::Digits => c.is_ascii_digit().then_some(c),
                CharClass::Letters => c.is_alphabetic().then(|| lower(c)),
                CharClass::Alnum => {
                    (c.is_ascii_digit() || c.is_alphabetic()).then(|| lower(c))
                }
            })
            .collect()
    }
}

fn lower(c: char) -> char {
    c.to_lowercase().next().unwrap_or(c)
}

impl std::str::FromStr for CharClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "digits" => Ok(CharClass::Digits),
            "letters" => Ok(CharClass::Letters),
            "alnum" => Ok(CharClass::Alnum),
            other => Err(format!("unknown character class {other:?}")),
        }
    }
}

/// One admissibility rule (paper Section 6.1).
#[derive(Debug, Clone)]
pub enum Rule {
    /// *Value set*: spellings with the same meaning ("new york", "ny").
    /// Matching is case-insensitive on trimmed values. The imputation is
    /// admissible iff both values fall in this set.
    ValueSet(Vec<String>),
    /// *Custom designed regex*: both values must match `regex`, and their
    /// projections onto `keep` must coincide — e.g. phone numbers with the
    /// same digits but different separators.
    Pattern {
        /// Structural pattern both values must satisfy.
        regex: Regex,
        /// Characters that must be preserved between the two values.
        keep: CharClass,
    },
    /// *Delta variation*: numeric values within `±delta` of the expected
    /// value are admissible.
    Delta(f64),
}

impl Rule {
    /// `true` iff `imputed` is an admissible stand-in for `expected` under
    /// this rule. Both sides are compared as rendered strings, the common
    /// currency of all imputers.
    pub fn admits(&self, imputed: &str, expected: &str) -> bool {
        match self {
            Rule::ValueSet(values) => {
                let canon = |s: &str| s.trim().to_lowercase();
                let (i, e) = (canon(imputed), canon(expected));
                let contains = |v: &str| values.iter().any(|x| canon(x) == v);
                contains(&i) && contains(&e)
            }
            Rule::Pattern { regex, keep } => {
                regex.is_match(imputed.trim())
                    && regex.is_match(expected.trim())
                    && keep.project(imputed) == keep.project(expected)
            }
            Rule::Delta(delta) => {
                match (imputed.trim().parse::<f64>(), expected.trim().parse::<f64>()) {
                    (Ok(i), Ok(e)) => (i - e).abs() <= *delta,
                    _ => false,
                }
            }
        }
    }
}

/// Per-attribute admissibility rules for one dataset.
///
/// Validation (paper Section 6.1): an imputed value is **correct** iff it
/// equals the expected value exactly (after trimming, case-insensitively
/// for text) or any rule registered for the attribute admits it.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: BTreeMap<String, Vec<Rule>>,
}

impl RuleSet {
    /// An empty rule set (validation degrades to equality).
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Registers a rule for `attr`.
    pub fn add(&mut self, attr: impl Into<String>, rule: Rule) {
        self.rules.entry(attr.into()).or_default().push(rule);
    }

    /// Rules registered for `attr`.
    pub fn rules_for(&self, attr: &str) -> &[Rule] {
        self.rules.get(attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of attributes with at least one rule.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff no attribute has rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Serializes the set in the rule-file format parsed by
    /// [`crate::parser::parse_rules`] (round-trips modulo whitespace).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (attr, rules) in &self.rules {
            out.push_str(&format!("attr {attr}\n"));
            for rule in rules {
                match rule {
                    Rule::ValueSet(values) => {
                        out.push_str("  set");
                        for v in values {
                            if v.contains(char::is_whitespace) || v.is_empty() {
                                out.push_str(&format!(" \"{v}\""));
                            } else {
                                out.push_str(&format!(" {v}"));
                            }
                        }
                        out.push('\n');
                    }
                    Rule::Pattern { regex, keep } => {
                        let class = match keep {
                            CharClass::Digits => "digits",
                            CharClass::Letters => "letters",
                            CharClass::Alnum => "alnum",
                        };
                        out.push_str(&format!(
                            "  regex {} project {class}\n",
                            regex.source()
                        ));
                    }
                    Rule::Delta(d) => out.push_str(&format!("  delta {d}\n")),
                }
            }
        }
        out
    }

    /// Judges one imputation: is `imputed` correct for `expected` on
    /// attribute `attr`?
    pub fn validate(&self, attr: &str, imputed: &str, expected: &str) -> bool {
        if imputed.trim().eq_ignore_ascii_case(expected.trim()) {
            return true;
        }
        self.rules_for(attr)
            .iter()
            .any(|rule| rule.admits(imputed, expected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_class_projection() {
        assert_eq!(CharClass::Digits.project("213/848-6677"), "2138486677");
        assert_eq!(CharClass::Letters.project("Los Angeles!"), "losangeles");
        assert_eq!(CharClass::Alnum.project("Rt. 66"), "rt66");
    }

    #[test]
    fn value_set_rule() {
        let rule = Rule::ValueSet(vec![
            "new york".into(),
            "New York City".into(),
            "NY".into(),
        ]);
        assert!(rule.admits("ny", "New York"));
        assert!(rule.admits("new york city", "NY"));
        assert!(!rule.admits("boston", "NY"));
        assert!(!rule.admits("ny", "boston"));
    }

    #[test]
    fn pattern_rule_phone() {
        let rule = Rule::Pattern {
            regex: Regex::new(r"\d{3}[-/ ]\d{3}[- ]\d{4}").unwrap(),
            keep: CharClass::Digits,
        };
        // The paper's own example: same number, different separators.
        assert!(rule.admits("213/848-6677", "213-848-6677"));
        assert!(!rule.admits("213/848-6678", "213-848-6677")); // digits differ
        assert!(!rule.admits("2138486677", "213-848-6677")); // malformed
    }

    #[test]
    fn delta_rule() {
        // The paper's Horsepower example: ±25 admissible.
        let rule = Rule::Delta(25.0);
        assert!(rule.admits("150", "165"));
        assert!(rule.admits("150", "125"));
        assert!(!rule.admits("150", "176"));
        assert!(!rule.admits("strong", "150"));
    }

    #[test]
    fn ruleset_exact_match_always_correct() {
        let rules = RuleSet::new();
        assert!(rules.validate("Any", "Granita", "granita"));
        assert!(rules.validate("Any", " x ", "x"));
        assert!(!rules.validate("Any", "a", "b"));
    }

    #[test]
    fn ruleset_routes_by_attribute() {
        let mut rules = RuleSet::new();
        rules.add("Horsepower", Rule::Delta(25.0));
        assert!(rules.validate("Horsepower", "150", "165"));
        // The delta rule does not leak onto other attributes.
        assert!(!rules.validate("Weight", "150", "165"));
    }

    #[test]
    fn any_rule_suffices() {
        let mut rules = RuleSet::new();
        rules.add("City", Rule::ValueSet(vec!["la".into(), "los angeles".into()]));
        rules.add(
            "City",
            Rule::ValueSet(vec!["ny".into(), "new york".into()]),
        );
        assert!(rules.validate("City", "LA", "Los Angeles"));
        assert!(rules.validate("City", "NY", "New York"));
        assert!(!rules.validate("City", "LA", "New York"));
    }
}
