//! A small regular-expression engine (Thompson NFA construction, breadth
//! simulation — linear time in `pattern × input`, no backtracking).
//!
//! Supports the subset the validation rule files need:
//!
//! - literals, `.` (any char), escapes `\d \D \w \W \s \S` and `\<punct>`
//! - character classes `[a-z0-9_]`, negated `[^...]`, ranges
//! - quantifiers `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}` (greedy; the engine
//!   reports *whether* the whole string matches, so greediness is moot)
//! - alternation `|` and grouping `(...)`
//! - `^` and `$` are accepted and ignored at the ends: matching is always
//!   anchored (full-string), the natural semantics for value validation.

use std::fmt;

/// Compilation error with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// A single-character matcher.
#[derive(Debug, Clone, PartialEq)]
enum CharSet {
    /// One literal character.
    Lit(char),
    /// Any character (`.`).
    Any,
    /// An explicit set: ranges plus negation flag.
    Set { ranges: Vec<(char, char)>, negated: bool },
}

impl CharSet {
    fn matches(&self, c: char) -> bool {
        match self {
            CharSet::Lit(l) => *l == c,
            CharSet::Any => true,
            CharSet::Set { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                inside != *negated
            }
        }
    }
}

/// Parsed AST.
#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Char(CharSet),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat { node: Box<Ast>, min: u32, max: Option<u32> },
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { chars: src.chars().collect(), pos: 0, src }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err(&self, msg: &str) -> RegexError {
        RegexError(format!("{msg} at position {} in {:?}", self.pos, self.src))
    }

    /// alternation := concat ('|' concat)*
    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().unwrap(),
            _ => Ast::Concat(items),
        })
    }

    /// repeat := atom ('*' | '+' | '?' | '{m}' | '{m,}' | '{m,n}')?
    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number()?;
                match self.bump() {
                    Some('}') => (min, Some(min)),
                    Some(',') => {
                        if self.peek() == Some('}') {
                            self.bump();
                            (min, None)
                        } else {
                            let max = self.parse_number()?;
                            if self.bump() != Some('}') {
                                return Err(self.err("expected '}'"));
                            }
                            if max < min {
                                return Err(self.err("repetition max below min"));
                            }
                            (min, Some(max))
                        }
                    }
                    _ => return Err(self.err("malformed repetition")),
                }
            }
            _ => return Ok(atom),
        };
        if min > 1000 || max.is_some_and(|m| m > 1000) {
            return Err(self.err("repetition count too large (max 1000)"));
        }
        Ok(Ast::Repeat { node: Box::new(atom), min, max })
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|_| self.err("number too large"))
    }

    /// atom := '(' alternation ')' | class | escape | '.' | literal
    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('\\') => Ok(Ast::Char(self.parse_escape()?)),
            Some('.') => Ok(Ast::Char(CharSet::Any)),
            Some(c @ ('*' | '+' | '?')) => {
                Err(self.err(&format!("dangling quantifier {c:?}")))
            }
            Some(')') => Err(self.err("unmatched ')'")),
            Some(c) => Ok(Ast::Char(CharSet::Lit(c))),
        }
    }

    fn parse_escape(&mut self) -> Result<CharSet, RegexError> {
        let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
        let digit = ('0', '9');
        let lower = ('a', 'z');
        let upper = ('A', 'Z');
        Ok(match c {
            'd' => CharSet::Set { ranges: vec![digit], negated: false },
            'D' => CharSet::Set { ranges: vec![digit], negated: true },
            'w' => CharSet::Set {
                ranges: vec![digit, lower, upper, ('_', '_')],
                negated: false,
            },
            'W' => CharSet::Set {
                ranges: vec![digit, lower, upper, ('_', '_')],
                negated: true,
            },
            's' => CharSet::Set {
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                negated: false,
            },
            'S' => CharSet::Set {
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                negated: true,
            },
            'n' => CharSet::Lit('\n'),
            't' => CharSet::Lit('\t'),
            other => CharSet::Lit(other),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = match self.bump() {
                None => return Err(self.err("unclosed character class")),
                Some(']') if !ranges.is_empty() || negated => break,
                Some(']') => break, // empty class `[]` matches nothing
                Some('\\') => match self.parse_escape()? {
                    CharSet::Lit(l) => l,
                    CharSet::Set { ranges: r, negated: false } => {
                        ranges.extend(r);
                        continue;
                    }
                    _ => return Err(self.err("negated escape inside class")),
                },
                Some(c) => c,
            };
            if self.peek() == Some('-')
                && self.chars.get(self.pos + 1).copied().is_some_and(|n| n != ']')
            {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some('\\') => match self.parse_escape()? {
                        CharSet::Lit(l) => l,
                        _ => return Err(self.err("class escape cannot end a range")),
                    },
                    Some(hi) => hi,
                    None => return Err(self.err("unclosed character class")),
                };
                if hi < c {
                    return Err(self.err("inverted range"));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Ast::Char(CharSet::Set { ranges, negated }))
    }
}

/// NFA instruction.
#[derive(Debug, Clone)]
enum Inst {
    /// Consume one character matching the set, then go to `next`.
    Char { set: CharSet, next: usize },
    /// Fork to both targets without consuming.
    Split(usize, usize),
    /// Jump without consuming.
    Jmp(usize),
    /// Accept.
    Match,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<Inst>,
    source: String,
}

impl Regex {
    /// Compiles `pattern` (see module docs for the supported syntax).
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        // Full-string matching: leading '^' / trailing '$' are redundant.
        let mut trimmed = pattern;
        if let Some(s) = trimmed.strip_prefix('^') {
            trimmed = s;
        }
        if let Some(s) = trimmed.strip_suffix('$') {
            if !s.ends_with('\\') {
                trimmed = s;
            }
        }
        let mut parser = Parser::new(trimmed);
        let ast = parser.parse_alt()?;
        if parser.pos != parser.chars.len() {
            return Err(parser.err("trailing characters"));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Regex { prog, source: pattern.to_owned() })
    }

    /// The pattern this regex was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// `true` iff the **entire** input matches the pattern.
    pub fn is_match(&self, input: &str) -> bool {
        let mut current = vec![false; self.prog.len()];
        let mut next = vec![false; self.prog.len()];
        let mut stack = Vec::new();
        add_state(&self.prog, 0, &mut current, &mut stack);
        for c in input.chars() {
            next.iter_mut().for_each(|b| *b = false);
            for (pc, active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                if let Inst::Char { set, next: n } = &self.prog[pc] {
                    if set.matches(c) {
                        add_state(&self.prog, *n, &mut next, &mut stack);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            if current.iter().all(|b| !b) {
                return false;
            }
        }
        current
            .iter()
            .enumerate()
            .any(|(pc, active)| *active && matches!(self.prog[pc], Inst::Match))
    }
}

/// Adds `pc` and everything reachable through epsilon transitions.
fn add_state(prog: &[Inst], pc: usize, set: &mut [bool], stack: &mut Vec<usize>) {
    stack.push(pc);
    while let Some(pc) = stack.pop() {
        if set[pc] {
            continue;
        }
        set[pc] = true;
        match &prog[pc] {
            Inst::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Inst::Jmp(t) => stack.push(*t),
            _ => {}
        }
    }
}

/// Emits instructions for `ast`; on return, falling off the end of the
/// emitted block continues to the next instruction.
fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(set) => {
            let here = prog.len();
            prog.push(Inst::Char { set: set.clone(), next: here + 1 });
        }
        Ast::Concat(items) => {
            for item in items {
                compile(item, prog);
            }
        }
        Ast::Alt(branches) => {
            // Chain of splits; each branch jumps to the common end.
            let mut jmp_slots = Vec::new();
            let mut split_slots = Vec::new();
            for (i, branch) in branches.iter().enumerate() {
                let is_last = i + 1 == branches.len();
                if !is_last {
                    split_slots.push(prog.len());
                    prog.push(Inst::Split(0, 0)); // patched below
                }
                let start = prog.len();
                compile(branch, prog);
                if let Some(slot) = split_slots.last().copied() {
                    if !is_last {
                        prog[slot] = Inst::Split(start, 0); // alt patched later
                    }
                }
                if !is_last {
                    jmp_slots.push(prog.len());
                    prog.push(Inst::Jmp(0)); // patched below
                    let slot = split_slots.pop().unwrap();
                    if let Inst::Split(first, _) = prog[slot] {
                        prog[slot] = Inst::Split(first, prog.len());
                    }
                }
            }
            let end = prog.len();
            for slot in jmp_slots {
                prog[slot] = Inst::Jmp(end);
            }
        }
        Ast::Repeat { node, min, max } => {
            // Mandatory copies.
            for _ in 0..*min {
                compile(node, prog);
            }
            match max {
                None => {
                    // Kleene tail: split(body, out); body ... jmp(split).
                    let split = prog.len();
                    prog.push(Inst::Split(0, 0));
                    let body = prog.len();
                    compile(node, prog);
                    prog.push(Inst::Jmp(split));
                    let out = prog.len();
                    prog[split] = Inst::Split(body, out);
                }
                Some(max) => {
                    // (max - min) optional copies.
                    let mut split_slots = Vec::new();
                    for _ in *min..*max {
                        split_slots.push(prog.len());
                        prog.push(Inst::Split(0, 0));
                        let body = prog.len();
                        let slot = *split_slots.last().unwrap();
                        prog[slot] = Inst::Split(body, 0); // out patched below
                        compile(node, prog);
                    }
                    let out = prog.len();
                    for slot in split_slots {
                        if let Inst::Split(body, _) = prog[slot] {
                            prog[slot] = Inst::Split(body, out);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, input: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(input)
    }

    #[test]
    fn literals() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abd"));
        assert!(!m("abc", "ab"));
        assert!(!m("abc", "abcd")); // full match only
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn dot_and_escapes() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a-c"));
        assert!(!m("a.c", "ac"));
        assert!(m(r"\d\d\d", "213"));
        assert!(!m(r"\d\d\d", "21a"));
        assert!(m(r"\w+", "foo_bar3"));
        assert!(!m(r"\w+", "foo bar"));
        assert!(m(r"\s", " "));
        assert!(m(r"\.", "."));
        assert!(!m(r"\.", "x"));
        assert!(m(r"\D+", "abc-"));
    }

    #[test]
    fn classes() {
        assert!(m("[abc]+", "cab"));
        assert!(!m("[abc]+", "cad"));
        assert!(m("[a-z0-9]+", "renuver22"));
        assert!(m("[^0-9]+", "abc"));
        assert!(!m("[^0-9]+", "ab1"));
        assert!(m(r"[\d-]+", "21-3"));
        assert!(m("[-a]+", "a-a"));
        assert!(!m("[]", "x")); // empty class matches nothing
        assert!(!m("[]a", "a"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("a*", ""));
        assert!(m("a*", "aaaa"));
        assert!(m("a+b", "aab"));
        assert!(!m("a+b", "b"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(m(r"\d{3}", "123"));
        assert!(!m(r"\d{3}", "12"));
        assert!(!m(r"\d{3}", "1234"));
        assert!(m(r"\d{2,4}", "123"));
        assert!(!m(r"\d{2,4}", "1"));
        assert!(!m(r"\d{2,4}", "12345"));
        assert!(m(r"\d{2,}", "123456"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "cat"));
        assert!(m("cat|dog", "dog"));
        assert!(!m("cat|dog", "cow"));
        assert!(m("a(b|c)d", "abd"));
        assert!(m("a(b|c)d", "acd"));
        assert!(!m("a(b|c)d", "aed"));
        assert!(m("(ab)+", "ababab"));
        assert!(m("x(y|z)*", "x"));
        assert!(m("x(y|z)*", "xyzzy"));
        assert!(m("a|b|c", "b"));
    }

    #[test]
    fn anchors_ignored() {
        assert!(m("^abc$", "abc"));
        assert!(m("^abc", "abc"));
        assert!(m("abc$", "abc"));
    }

    #[test]
    fn phone_pattern() {
        // The Restaurant Phone rule: same digits, any separator.
        let re = Regex::new(r"\d{3}[-/ ]\d{3}[- ]\d{4}").unwrap();
        assert!(re.is_match("213/848-6677"));
        assert!(re.is_match("213-848-6677"));
        assert!(!re.is_match("213.848.6677"));
        assert!(!re.is_match("2138486677"));
    }

    #[test]
    fn unicode_literals() {
        assert!(m("caffè", "caffè"));
        assert!(m(".+", "日本語"));
    }

    #[test]
    fn errors_reported() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("abc)").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("a{").is_err());
        assert!(Regex::new("a{2000}").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("\\").is_err());
    }

    #[test]
    fn no_pathological_backtracking() {
        // (a*)*b against aⁿ: the NFA simulation stays linear.
        let re = Regex::new("(a*)*b").unwrap();
        let input = "a".repeat(2000);
        assert!(!re.is_match(&input));
        let mut with_b = input.clone();
        with_b.push('b');
        assert!(re.is_match(&with_b));
    }

    #[test]
    fn nested_repetition() {
        assert!(m("(ab{2}){2}", "abbabb"));
        assert!(!m("(ab{2}){2}", "abab"));
    }
}
