//! Rule-based validation of imputation results (paper Section 6.1,
//! "Evaluation process").
//!
//! Comparing an imputed value to the ground truth by strict equality
//! under-counts correct imputations: `213/848-6677` and `213-848-6677` are
//! the same phone number, and `LA` means `Los Angeles`. The paper introduces
//! a rule file per dataset with three kinds of admissibility rules, all
//! implemented here:
//!
//! - **Value sets** ([`Rule::ValueSet`]): spellings with the same meaning.
//! - **Custom regexes** ([`Rule::Pattern`]): structural variation is
//!   admissible as long as the *retained* characters (e.g. the digits of a
//!   phone number) coincide. Backed by the in-crate [`regex`] engine — a
//!   small Thompson-NFA matcher, so the workspace stays dependency-free.
//! - **Delta variation** ([`Rule::Delta`]): numeric values within ±δ of the
//!   expected value count as correct.
//!
//! A [`RuleSet`] maps attribute names to rules and is parsed from the same
//! line-based rule-file format the datasets crate ships for each dataset.

pub mod parser;
pub mod regex;
pub mod rules;

pub use parser::parse_rules;
pub use regex::Regex;
pub use rules::{CharClass, Rule, RuleSet};
