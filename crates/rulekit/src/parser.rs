//! Parser for the line-based rule-file format.
//!
//! ```text
//! # Restaurant validation rules
//! attr Phone
//!   regex \d{3}[-/ ]\d{3}[- ]\d{4} project digits
//! attr City
//!   set "new york" "new york city" "ny"
//!   set "los angeles" "la"
//! attr Horsepower
//!   delta 25
//! ```
//!
//! `attr <name>` opens a section; `set`, `regex ... [project <class>]` and
//! `delta <value>` add rules to the open section. Blank lines and `#`
//! comments are skipped. `set` values may be quoted (for embedded spaces)
//! or bare.

use crate::regex::Regex;
use crate::rules::{CharClass, Rule, RuleSet};

/// Parses a rule file (see module docs for the format).
///
/// ```
/// let rules = renuver_rulekit::parse_rules(
///     "attr Phone\n  regex \\d{3}[- ]\\d{4} project digits\n\
///      attr Price\n  delta 5\n",
/// ).unwrap();
/// assert!(rules.validate("Phone", "555 1234", "555-1234"));
/// assert!(rules.validate("Price", "100", "104"));
/// assert!(!rules.validate("Price", "100", "110"));
/// ```
///
/// # Errors
/// Returns `line number, message` pairs formatted into a string.
pub fn parse_rules(text: &str) -> Result<RuleSet, String> {
    let mut rules = RuleSet::new();
    let mut current: Option<String> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (word, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match word {
            "attr" => {
                if rest.is_empty() {
                    return Err(format!("line {lineno}: 'attr' requires a name"));
                }
                current = Some(rest.to_owned());
            }
            "set" => {
                let attr = current
                    .as_ref()
                    .ok_or(format!("line {lineno}: 'set' outside an attr section"))?;
                let values = parse_tokens(rest)
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                if values.len() < 2 {
                    return Err(format!(
                        "line {lineno}: a value set needs at least two values"
                    ));
                }
                rules.add(attr.clone(), Rule::ValueSet(values));
            }
            "regex" => {
                let attr = current
                    .as_ref()
                    .ok_or(format!("line {lineno}: 'regex' outside an attr section"))?;
                let (pattern, keep) = match rest.rsplit_once(" project ") {
                    Some((pat, class)) => {
                        let keep: CharClass = class
                            .trim()
                            .parse()
                            .map_err(|e| format!("line {lineno}: {e}"))?;
                        (pat.trim(), keep)
                    }
                    None => (rest, CharClass::default()),
                };
                if pattern.is_empty() {
                    return Err(format!("line {lineno}: 'regex' requires a pattern"));
                }
                let regex =
                    Regex::new(pattern).map_err(|e| format!("line {lineno}: {e}"))?;
                rules.add(attr.clone(), Rule::Pattern { regex, keep });
            }
            "delta" => {
                let attr = current
                    .as_ref()
                    .ok_or(format!("line {lineno}: 'delta' outside an attr section"))?;
                let delta: f64 = rest
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad delta value {rest:?}"))?;
                if !delta.is_finite() || delta < 0.0 {
                    return Err(format!("line {lineno}: delta must be finite and >= 0"));
                }
                rules.add(attr.clone(), Rule::Delta(delta));
            }
            other => {
                return Err(format!("line {lineno}: unknown directive {other:?}"));
            }
        }
    }
    Ok(rules)
}

/// Splits a `set` payload into tokens, honoring double quotes.
fn parse_tokens(s: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('"') => {
                chars.next();
                let mut tok = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated quote".into()),
                        Some('"') => break,
                        Some(c) => tok.push(c),
                    }
                }
                tokens.push(tok);
            }
            Some(_) => {
                let mut tok = String::new();
                // peek + copy, then advance: no unwrap on the iterator.
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    tok.push(c);
                    chars.next();
                }
                tokens.push(tok);
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Restaurant validation rules
attr Phone
  regex \d{3}[-/ ]\d{3}[- ]\d{4} project digits
attr City
  set "new york" "new york city" ny
  set "los angeles" la
attr Horsepower
  delta 25
"#;

    #[test]
    fn parses_all_rule_kinds() {
        let rules = parse_rules(SAMPLE).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules.rules_for("Phone").len(), 1);
        assert_eq!(rules.rules_for("City").len(), 2);
        assert_eq!(rules.rules_for("Horsepower").len(), 1);
        assert!(rules.validate("Phone", "213/848-6677", "213-848-6677"));
        assert!(rules.validate("City", "LA", "los angeles"));
        assert!(rules.validate("Horsepower", "150", "170"));
        assert!(!rules.validate("Horsepower", "150", "200"));
    }

    #[test]
    fn quoted_tokens_keep_spaces() {
        let toks = parse_tokens(r#""new york" ny "a b c""#).unwrap();
        assert_eq!(toks, vec!["new york", "ny", "a b c"]);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_rules("attr A\n  bogus 1\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_rules("set a b\n").unwrap_err();
        assert!(err.contains("outside an attr"), "{err}");
        let err = parse_rules("attr A\n  delta x\n").unwrap_err();
        assert!(err.contains("bad delta"), "{err}");
        let err = parse_rules("attr A\n  regex (bad\n").unwrap_err();
        assert!(err.contains("regex"), "{err}");
        let err = parse_rules("attr A\n  set single\n").unwrap_err();
        assert!(err.contains("two values"), "{err}");
    }

    #[test]
    fn default_projection_is_digits() {
        let rules = parse_rules("attr Zip\n  regex \\d{5}\n").unwrap();
        assert!(rules.validate("Zip", "84084", "84084"));
        assert!(!rules.validate("Zip", "84084", "84085"));
    }

    #[test]
    fn to_text_round_trips() {
        let rules = parse_rules(SAMPLE).unwrap();
        let text = rules.to_text();
        let back = parse_rules(&text).unwrap();
        // Same judgments on representative probes.
        for (attr, a, b) in [
            ("Phone", "213/848-6677", "213-848-6677"),
            ("Phone", "213/848-6678", "213-848-6677"),
            ("City", "LA", "los angeles"),
            ("City", "LA", "new york"),
            ("Horsepower", "150", "170"),
            ("Horsepower", "150", "200"),
        ] {
            assert_eq!(
                rules.validate(attr, a, b),
                back.validate(attr, a, b),
                "{attr} {a} {b}"
            );
        }
        assert_eq!(back.len(), rules.len());
    }

    #[test]
    fn empty_input_is_empty_ruleset() {
        let rules = parse_rules("").unwrap();
        assert!(rules.is_empty());
    }
}
