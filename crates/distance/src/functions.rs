//! Distance functions (`δ_A` in the paper's notation) and the kernel
//! dispatch between the scalar dynamic programs and the bit-parallel
//! Myers kernels in [`crate::kernels`].

use renuver_data::Value;

use crate::kernels;

/// Levenshtein edit distance between two strings, computed over Unicode
/// scalar values.
///
/// This is the `δ` used for text attributes (paper Section 5.3, ref. \[25\]):
/// e.g. `levenshtein("Fenix", "Fenix Argyle") == 7` as in Example 5.5.
/// Long inputs run Myers' bit-parallel kernel, short ones the classic
/// two-row dynamic program; both are exact, so the dispatch is invisible
/// ([`levenshtein_scalar`] is the pinned reference).
pub fn levenshtein(a: &str, b: &str) -> usize {
    if let Some(d) = zero_if_equal(a, b) {
        return d;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    lev_core(&a, &b)
}

/// The scalar two-row dynamic program, with no bit-parallel dispatch —
/// the reference implementation the parity tests and the kernel
/// benchmark compare against.
pub fn levenshtein_scalar(a: &str, b: &str) -> usize {
    if let Some(d) = zero_if_equal(a, b) {
        return d;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    lev_core_scalar(&a, &b)
}

/// Equality short-circuit shared by both Levenshtein kernels: identical
/// strings answer 0 before any chars are collected — without it, two
/// identical megabyte cells cost a full O(n²) dynamic program just to
/// report zero.
#[inline]
fn zero_if_equal(a: &str, b: &str) -> Option<usize> {
    (a == b).then_some(0)
}

/// Levenshtein over pre-collected char slices — the dispatch point shared
/// by [`levenshtein`] and the oracle's matrix fill (which collects each
/// dictionary value's chars once instead of once per pair). Routes to the
/// bit-parallel kernel once the shorter side clears
/// [`kernels::MYERS_MIN_CHARS`].
pub(crate) fn lev_core(a: &[char], b: &[char]) -> usize {
    let short_len = a.len().min(b.len());
    if kernels::myers_wins(short_len, None) {
        return kernels::myers_distance(a, b);
    }
    lev_core_scalar(a, b)
}

/// The scalar two-row dynamic program over char slices.
pub(crate) fn lev_core_scalar(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string in the inner dimension to minimize the row.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Levenshtein distance with an early-exit bound: returns `None` as soon as
/// the distance provably exceeds `max`, avoiding the full `O(|a|·|b|)` work.
///
/// Candidate filtering in RENUVER and RFD discovery only ever asks
/// "is the distance ≤ t?", so the bounded kernel is the hot path.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    if let Some(d) = zero_if_equal(a, b) {
        return Some(d);
    }
    // Allocation-free pre-checks ahead of the `Vec<char>` collects:
    // over-bound megabyte pairs used to pay two large allocations just to
    // fail the length filter. First from byte lengths alone (a UTF-8
    // string of `l` bytes holds between `⌈l/4⌉` and `l` chars, so the
    // char-count gap is at least `char_gap_lower_bound`), then — when the
    // byte bounds are inconclusive — from an exact allocation-free char
    // count.
    if char_gap_lower_bound(a.len(), b.len()) > max {
        return None;
    }
    if a.chars().count().abs_diff(b.chars().count()) > max {
        return None;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // The distance never exceeds the longer length, so the band half-width
    // doesn't need to either — this also keeps the `i + max` band edge from
    // overflowing when callers pass a `usize::MAX`-style "unbounded" bound.
    let max = max.min(a.len().max(b.len()));
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }
    if kernels::myers_wins(short.len(), Some(max)) {
        return kernels::myers_distance_bounded(short, long, max);
    }
    lev_bounded_band(short, long, max)
}

/// The banded scalar kernel with no bit-parallel dispatch — the pinned
/// reference for [`levenshtein_bounded`]. Same contract.
pub fn levenshtein_bounded_scalar(a: &str, b: &str, max: usize) -> Option<usize> {
    if let Some(d) = zero_if_equal(a, b) {
        return Some(d);
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max {
        return None;
    }
    let max = max.min(a.len().max(b.len()));
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }
    lev_bounded_band(short, long, max)
}

/// Lower bound on `|chars(a) - chars(b)|` from byte lengths: UTF-8 packs
/// 1–4 bytes per char, so `chars ∈ [⌈bytes/4⌉, bytes]` for each side.
#[inline]
fn char_gap_lower_bound(a_bytes: usize, b_bytes: usize) -> usize {
    let gap_ab = a_bytes.div_ceil(4).saturating_sub(b_bytes);
    let gap_ba = b_bytes.div_ceil(4).saturating_sub(a_bytes);
    gap_ab.max(gap_ba)
}

/// The Ukkonen band over pre-collected, pre-ordered char slices
/// (`short.len() <= long.len()`, `max` already clamped, `short`
/// non-empty).
fn lev_bounded_band(short: &[char], long: &[char], max: usize) -> Option<usize> {
    // Banded DP (Ukkonen): `d[i][j] >= |i - j|`, so any cell farther than
    // `max` from the diagonal can never contribute to a within-bound
    // answer. Restricting each row to the `2·max + 1` band makes the cost
    // O(len · max) instead of O(len²) — the difference between microseconds
    // and hours on two megabyte cells that differ by one character.
    const INF: usize = usize::MAX / 2;
    let n = short.len();
    let mut prev: Vec<usize> = (0..=n).map(|j| if j <= max { j } else { INF }).collect();
    let mut cur = vec![INF; n + 1];
    for i in 1..=long.len() {
        let lo = i.saturating_sub(max);
        let hi = (i + max).min(n);
        let start = lo.max(1);
        // The cell left of the band re-reads as out-of-band (or as the
        // real first-column boundary when the band touches it).
        cur[start - 1] = if lo == 0 { i } else { INF };
        let mut row_min = cur[start - 1];
        let lc = long[i - 1];
        for j in start..=hi {
            let cost = usize::from(lc != short[j - 1]);
            let val = (prev[j - 1] + cost).min(prev[j] + 1).min(cur[j - 1] + 1);
            cur[j] = val;
            row_min = row_min.min(val);
        }
        if hi < n {
            // Guard the cell the next row will read just past this band.
            cur[hi + 1] = INF;
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[n] <= max).then_some(prev[n])
}

/// Distance between two attribute values (the paper's `δ_A(t[A], t'[A])`).
///
/// Returns `None` when either value is missing — the distance-pattern entry
/// is then flagged `_` (Definition 5.4) — or when the values are of
/// incomparable types (which cannot happen for schema-validated relations
/// but keeps the function total).
///
/// - numeric vs numeric → absolute difference (`Int` promotes to `f64`)
/// - text vs text → Levenshtein edit distance
/// - bool vs bool → `0.0` if equal, `1.0` otherwise (the equality
///   constraint: any threshold `< 1` demands equality)
pub fn value_distance(a: &Value, b: &Value) -> Option<f64> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => None,
        (Value::Text(x), Value::Text(y)) => Some(levenshtein(x, y) as f64),
        (Value::Bool(x), Value::Bool(y)) => Some(if x == y { 0.0 } else { 1.0 }),
        (x, y) => match (x.as_f64(), y.as_f64()) {
            (Some(x), Some(y)) => Some((x - y).abs()),
            _ => None,
        },
    }
}

/// Like [`value_distance`] but with an early exit: returns `Some(d)` only if
/// `d ≤ max`, and `None` both for missing/incomparable values and for
/// distances exceeding the bound.
pub fn value_distance_bounded(a: &Value, b: &Value, max: f64) -> Option<f64> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => None,
        (Value::Text(x), Value::Text(y)) => {
            levenshtein_bounded(x, y, max.floor().max(0.0) as usize).map(|d| d as f64)
        }
        _ => value_distance(a, b).filter(|d| *d <= max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn levenshtein_paper_example() {
        // Example 5.5: δ(Fenix, Fenix Argyle) = 7.
        assert_eq!(levenshtein("Fenix", "Fenix Argyle"), 7);
    }

    #[test]
    fn levenshtein_symmetric() {
        assert_eq!(levenshtein("restaurant", "rest"), levenshtein("rest", "restaurant"));
    }

    #[test]
    fn levenshtein_unicode() {
        // Each accented char is one scalar value, not multiple bytes.
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_matches_exact_within_limit() {
        let pairs = [("kitten", "sitting"), ("abc", "xyz"), ("", "hello"), ("same", "same")];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            for max in 0..10 {
                let got = levenshtein_bounded(a, b, max);
                if d <= max {
                    assert_eq!(got, Some(d), "{a} {b} max={max}");
                } else {
                    assert_eq!(got, None, "{a} {b} max={max}");
                }
            }
        }
    }

    #[test]
    fn bounded_early_exit_on_length_gap() {
        assert_eq!(levenshtein_bounded("a", "abcdefgh", 3), None);
    }

    #[test]
    fn bounded_over_bound_long_pairs_exit_before_collecting() {
        // Regression: both `Vec<char>` collects used to run before the
        // length filter, so over-bound megabyte pairs paid two large
        // allocations just to return `None`. The byte-bound pre-check
        // catches grossly mismatched lengths from `str::len` alone…
        let giant = "x".repeat(1 << 22);
        assert_eq!(levenshtein_bounded(&giant, "tiny", 5), None);
        // …and the allocation-free char count catches near-equal byte
        // lengths whose char difference still exceeds the bound.
        let longer = "x".repeat((1 << 22) + 7);
        assert_eq!(levenshtein_bounded(&giant, &longer, 6), None);
        // A within-bound pair of the same scale must still answer.
        let close = format!("{giant}yz");
        assert_eq!(levenshtein_bounded(&giant, &close, 6), Some(2));
    }

    #[test]
    fn char_gap_lower_bound_is_a_true_lower_bound() {
        for (a, b) in [
            ("", ""),
            ("a", "abcdefgh"),
            ("日本語", "ab"),
            ("💧💧💧", "x"),
            ("ascii only", "ascii only too"),
            ("🌊🌊🌊🌊🌊🌊🌊🌊", "y"),
        ] {
            let gap = a.chars().count().abs_diff(b.chars().count());
            assert!(
                char_gap_lower_bound(a.len(), b.len()) <= gap,
                "bound overshot the real gap on {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn bounded_survives_unbounded_max() {
        // Regression: `usize::MAX` as the bound used to overflow the band
        // edge (`i + max`). The bound is now clamped to the longer length.
        assert_eq!(levenshtein_bounded("kitten", "sitting", usize::MAX), Some(3));
        assert_eq!(levenshtein_bounded("", "abc", usize::MAX), Some(3));
    }

    #[test]
    fn value_distance_numeric() {
        assert_eq!(value_distance(&Value::Int(5), &Value::Int(2)), Some(3.0));
        assert_eq!(value_distance(&Value::Float(1.5), &Value::Int(1)), Some(0.5));
        assert_eq!(value_distance(&Value::Float(-2.0), &Value::Float(2.0)), Some(4.0));
    }

    #[test]
    fn value_distance_text() {
        assert_eq!(
            value_distance(&Value::Text("LA".into()), &Value::Text("Los Angeles".into())),
            Some(9.0)
        );
    }

    #[test]
    fn value_distance_bool() {
        assert_eq!(value_distance(&Value::Bool(true), &Value::Bool(true)), Some(0.0));
        assert_eq!(value_distance(&Value::Bool(true), &Value::Bool(false)), Some(1.0));
    }

    #[test]
    fn value_distance_null_is_none() {
        assert_eq!(value_distance(&Value::Null, &Value::Int(1)), None);
        assert_eq!(value_distance(&Value::Text("x".into()), &Value::Null), None);
        assert_eq!(value_distance(&Value::Null, &Value::Null), None);
    }

    #[test]
    fn value_distance_incomparable_is_none() {
        assert_eq!(value_distance(&Value::Text("1".into()), &Value::Int(1)), None);
        assert_eq!(value_distance(&Value::Bool(true), &Value::Int(1)), None);
    }

    #[test]
    fn bounded_value_distance_filters() {
        let a = Value::Text("Granita".into());
        let b = Value::Text("Granitas".into());
        assert_eq!(value_distance_bounded(&a, &b, 1.0), Some(1.0));
        assert_eq!(value_distance_bounded(&a, &b, 0.0), None);
        assert_eq!(value_distance_bounded(&Value::Int(9), &Value::Int(3), 5.0), None);
        assert_eq!(value_distance_bounded(&Value::Int(9), &Value::Int(3), 6.0), Some(6.0));
    }
}
