//! Additional similarity/distance functions.
//!
//! Definition 3.2 allows RFD_c constraints over *any* similarity or
//! distance function; the core pipeline uses Levenshtein / absolute
//! difference (Section 5.3), and this module supplies the other common
//! string measures for custom pipelines: Jaro, Jaro–Winkler, and
//! token-set Jaccard. All are returned as **distances** in `[0, 1]`
//! (0 = identical) so they can be used with `≤`-threshold constraints
//! directly.

/// Jaro similarity of two strings, in `[0, 1]` (1 = identical).
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches.push((i, j));
                break;
            }
        }
    }
    if matches.is_empty() {
        return 0.0;
    }
    let m = matches.len() as f64;
    // Transpositions: matched characters out of order.
    let b_order: Vec<usize> = matches.iter().map(|&(_, j)| j).collect();
    let transpositions = b_order.windows(2).filter(|w| w[0] > w[1]).count() as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro–Winkler **distance**: `1 − similarity`, with the standard prefix
/// boost (`p = 0.1`, up to 4 common leading characters).
pub fn jaro_winkler_distance(a: &str, b: &str) -> f64 {
    let sim = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    1.0 - (sim + prefix * 0.1 * (1.0 - sim))
}

/// Jaccard **distance** between the whitespace-token sets of two strings
/// (case-insensitive): `1 − |∩| / |∪|`. Suits multi-word fields like
/// addresses and organization names where word order varies.
pub fn jaccard_token_distance(a: &str, b: &str) -> f64 {
    use std::collections::BTreeSet;
    let tok = |s: &str| -> BTreeSet<String> {
        s.split_whitespace().map(str::to_lowercase).collect()
    };
    let (ta, tb) = (tok(a), tok(b));
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    1.0 - inter / union
}

/// American Soundex code of a string (4 characters, e.g. `R163` for
/// "Robert"), the classic phonetic key used in record linkage. Strings
/// with no leading ASCII letter code as `0000`.
pub fn soundex(s: &str) -> String {
    fn digit(c: char) -> Option<char> {
        match c.to_ascii_lowercase() {
            'b' | 'f' | 'p' | 'v' => Some('1'),
            'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some('2'),
            'd' | 't' => Some('3'),
            'l' => Some('4'),
            'm' | 'n' => Some('5'),
            'r' => Some('6'),
            _ => None, // vowels, h, w, y and non-letters separate codes
        }
    }
    let mut chars = s.chars().filter(|c| c.is_ascii_alphabetic());
    let Some(first) = chars.next() else {
        return "0000".to_owned();
    };
    let mut code = String::with_capacity(4);
    code.push(first.to_ascii_uppercase());
    let mut last = digit(first);
    for c in chars {
        let d = digit(c);
        // h and w do not reset the run; vowels (None from digit, but
        // vowel-ish) do.
        match (d, c.to_ascii_lowercase()) {
            (Some(d), _) if Some(d) != last => {
                code.push(d);
                last = Some(d);
                if code.len() == 4 {
                    break;
                }
            }
            (Some(_), _) => {} // same run: skip
            (None, 'h' | 'w') => {} // transparent: keep the run
            (None, _) => last = None, // vowel separates
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    code
}

/// Soundex **distance**: `0.0` when the codes match, `1.0` otherwise —
/// an equality-style constraint for phonetically-equivalent names.
pub fn soundex_distance(a: &str, b: &str) -> f64 {
    if soundex(a) == soundex(b) {
        0.0
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaro_identical_and_disjoint() {
        assert_eq!(jaro("granita", "granita"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook pair: JW(MARTHA, MARHTA).
        let j = jaro("MARTHA", "MARHTA");
        assert!((j - 0.944).abs() < 0.01, "{j}");
        let jw = 1.0 - jaro_winkler_distance("MARTHA", "MARHTA");
        assert!((jw - 0.961).abs() < 0.01, "{jw}");
    }

    #[test]
    fn jaro_winkler_prefers_shared_prefixes() {
        let d_prefix = jaro_winkler_distance("granita", "granito");
        let d_suffix = jaro_winkler_distance("granita", "aranitg");
        assert!(d_prefix < d_suffix);
        assert_eq!(jaro_winkler_distance("same", "same"), 0.0);
    }

    #[test]
    fn jaro_winkler_symmetric_and_bounded() {
        for (a, b) in [("Chinois on Main", "Chinois Main"), ("LA", "Los Angeles"), ("", "x")] {
            let d1 = jaro_winkler_distance(a, b);
            let d2 = jaro_winkler_distance(b, a);
            assert!((d1 - d2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&d1), "{d1}");
        }
    }

    #[test]
    fn soundex_textbook_values() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261"); // h is transparent
        assert_eq!(soundex("Ashcroft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Honeyman"), "H555");
    }

    #[test]
    fn soundex_edge_cases() {
        assert_eq!(soundex(""), "0000");
        assert_eq!(soundex("123"), "0000");
        assert_eq!(soundex("A"), "A000");
        assert_eq!(soundex("  éclair"), "C460"); // non-ASCII skipped
    }

    #[test]
    fn soundex_distance_matches_phonetic_pairs() {
        assert_eq!(soundex_distance("Smith", "Smyth"), 0.0);
        assert_eq!(soundex_distance("Granita", "Granitta"), 0.0);
        assert_eq!(soundex_distance("Granita", "Citrus"), 1.0);
    }

    #[test]
    fn jaccard_tokens() {
        assert_eq!(jaccard_token_distance("Chinois on Main", "Main Chinois on"), 0.0);
        assert_eq!(jaccard_token_distance("a b", "a c"), 1.0 - 1.0 / 3.0);
        assert_eq!(jaccard_token_distance("", ""), 0.0);
        assert_eq!(jaccard_token_distance("x", ""), 1.0);
        // Case-insensitive.
        assert_eq!(jaccard_token_distance("Ocean Ave", "ocean ave"), 0.0);
    }
}
