//! Similarity indexes: "all rows within threshold `t` of row `r`'s value
//! on attribute `A`" without a full scan.
//!
//! Candidate generation, key detection, and verification all reduce to
//! that one query shape, resolved so far by scanning every row per missing
//! cell. The [`SimilarityIndex`] answers it per attribute:
//!
//! - **Numeric columns** keep a `(value, row)` list sorted by value; an
//!   `|a − b| ≤ t` predicate becomes a binary-search range query over
//!   `[v − t, v + t]`.
//! - **Text columns** keep the dictionary encoding (reusing the
//!   [`DistanceOracle`]'s interning when present), per-value character
//!   lengths, and a positional-q-gram-free inverted index from q-grams to
//!   the dictionary codes containing them. A query enumerates the codes
//!   sharing enough q-grams with the query value (count filtering) and
//!   length-filters them; no edit distance is computed at query time —
//!   the caller's exact check decides each surviving row.
//!
//! ## The superset contract
//!
//! [`SimilarityIndex::rows_within`] returns a **superset** of the rows
//! whose value is within the threshold (plus possibly the query row
//! itself), in ascending row order — never a subset. Callers always
//! re-check each returned row with the same exact predicate the scan path
//! uses (`DistanceOracle::distance_bounded` or the pair checks built on
//! it), so the indexed paths produce bit-for-bit identical results by
//! construction: the index only decides which rows are *worth* the exact
//! check. Those re-checks inherit the kernel dispatch in
//! [`crate::functions`]: matrix-backed attributes answer from the
//! Myers-filled dictionary matrix, and foreign/overflow rows run the
//! dispatched bounded kernel directly — so accelerating the kernels
//! speeds up the index's re-check path without touching this module's
//! pruning logic (`tests/kernel_parity.rs` pins the kernels themselves). Values the index cannot reason about (post-update values outside
//! the dictionary, non-text values in a text column) are always included.
//! The differential harness in `tests/index_differential.rs` asserts the
//! equivalence end to end.
//!
//! Construction is budget-aware: [`SimilarityIndex::build_budgeted`]
//! degrades per attribute to the unindexed state when the budget trips,
//! and every consumer falls back to its scan path for unindexed
//! attributes.

use std::collections::HashMap;

use renuver_budget::Budget;
use renuver_data::{AttrId, AttrType, Relation};
use renuver_obs::{Counter, FieldValue, Histogram, Metrics, Tracer};

use crate::oracle::{DistanceOracle, RowCode};

/// q-gram width for the text inverted index. Each edit operation destroys
/// at most `q` of a string's `len − q + 1` grams, which gives the count
/// filter its bound (see [`TextIndex::codes_within`]).
const QGRAM: usize = 2;

/// Values longer than this never get a gram profile: profiling a
/// megabyte-scale cell costs more than the banded verification it would
/// save. Such values sit on the `ungrammed` side list and are length-
/// filtered + verified on every query instead.
const MAX_GRAM_CHARS: usize = 4096;

/// How many dictionary values to profile between budget checks.
const BUILD_CHECK_STRIDE: usize = 256;

/// Sentinel row code: the cell is missing.
const NO_CODE: u32 = u32::MAX;
/// Sentinel row code: post-update value outside the dictionary.
const FOREIGN_CODE: u32 = u32::MAX - 1;

/// Probe/decline/superset-size statistics for one index, registered
/// against a [`Metrics`] registry. Declines are split by *which* cutoff
/// fired — the selectivity cutoff (superset too large to beat a scan),
/// the weak-filter heuristic (gram bound too loose to be worth
/// counting), an effectively unbounded threshold, or an attribute that
/// was never indexed — because they call for different tuning.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// `rows_within` calls.
    pub probes: Counter,
    /// Probes answered with a superset.
    pub answered: Counter,
    /// Declines from the selectivity cutoff (estimated superset covered
    /// more than half the relation).
    pub declined_selectivity: Counter,
    /// Declines from the weak-filter heuristic (< ⅓ of the query's
    /// grams would have to survive).
    pub declined_weak_filter: Counter,
    /// Declines because the threshold was effectively unbounded.
    pub declined_unbounded: Counter,
    /// Declines because the attribute has no index (boolean columns,
    /// budget-degraded builds).
    pub declined_unindexed: Counter,
    /// Sizes of the supersets actually returned.
    pub superset_rows: Histogram,
}

impl IndexStats {
    /// Creates (or re-attaches to) the index's instruments in `metrics`.
    pub fn register(metrics: &Metrics) -> Self {
        IndexStats {
            probes: metrics.counter("index.probes"),
            answered: metrics.counter("index.answered"),
            declined_selectivity: metrics.counter("index.declined_selectivity"),
            declined_weak_filter: metrics.counter("index.declined_weak_filter"),
            declined_unbounded: metrics.counter("index.declined_unbounded"),
            declined_unindexed: metrics.counter("index.declined_unindexed"),
            superset_rows: metrics.histogram("index.superset_rows"),
        }
    }

    fn decline(&self, reason: &'static str) {
        match reason {
            SELECTIVITY => self.declined_selectivity.inc(),
            WEAK_FILTER => self.declined_weak_filter.inc(),
            UNBOUNDED => self.declined_unbounded.inc(),
            _ => self.declined_unindexed.inc(),
        }
    }
}

/// Decline reasons threaded out of the per-attribute query paths so the
/// stats can attribute each `None` to the cutoff that produced it.
const SELECTIVITY: &str = "selectivity";
const WEAK_FILTER: &str = "weak_filter";
const UNBOUNDED: &str = "unbounded";
const UNINDEXED: &str = "unindexed";

/// Per-attribute similarity index (see module docs).
pub struct SimilarityIndex {
    attrs: Vec<AttrIndex>,
    /// Probe statistics; `None` (the default) keeps queries at a single
    /// extra branch.
    stats: Option<IndexStats>,
}

enum AttrIndex {
    /// No index for this attribute — consumers take their scan paths.
    /// Covers boolean columns (an equality predicate over ≤ 2 values has
    /// nothing to prune) and budget-degraded builds.
    Unindexed,
    Numeric(NumericIndex),
    // Boxed: a TextIndex is an order of magnitude larger than the other
    // variants, and mixed-type schemas would pay its footprint per column.
    Text(Box<TextIndex>),
}

/// Sorted-value index for `|a − b| ≤ t` range queries.
struct NumericIndex {
    /// `(value, row)` sorted by value (total order), then row. Rows whose
    /// cell is missing or not numeric (including NaN, which no absolute-
    /// difference predicate ever matches) are absent.
    entries: Vec<(f64, usize)>,
    /// Current value per row, for removal on update and query-value lookup.
    row_vals: Vec<Option<f64>>,
}

/// Length filter + q-gram count filter + banded verification for edit
/// distance.
struct TextIndex {
    /// Value → dictionary code.
    value_index: HashMap<String, u32>,
    /// Code → value (the dictionary itself).
    values: Vec<String>,
    /// Code → value length in chars.
    lens: Vec<u32>,
    /// Code → q-gram multiset profile; `None` for values shorter than
    /// `QGRAM` chars or longer than `MAX_GRAM_CHARS`.
    grams: Vec<Option<HashMap<u64, u32>>>,
    /// Codes without a gram profile — checked by length filter on every
    /// counting-mode query (they can never surface through the inverted
    /// index).
    ungrammed: Vec<u32>,
    /// Gram → `(code, multiplicity)` postings.
    inverted: HashMap<u64, Vec<(u32, u32)>>,
    /// Code → rows currently holding that value, ascending.
    postings: Vec<Vec<usize>>,
    /// Rows holding post-update values outside the dictionary, ascending.
    /// Always included in every answer — the index cannot bound their
    /// distance, the caller's exact check can.
    foreign_rows: Vec<usize>,
    /// Current code per row (`NO_CODE` / `FOREIGN_CODE` sentinels).
    row_codes: Vec<u32>,
}

impl SimilarityIndex {
    /// Builds the index for every indexable attribute of `rel`, reusing
    /// the oracle's dictionary encoding for text columns that have one.
    pub fn build(rel: &Relation, oracle: &DistanceOracle) -> Self {
        Self::build_budgeted(rel, oracle, &Budget::unlimited())
    }

    /// [`SimilarityIndex::build`] under a [`Budget`]: once the budget
    /// trips, the remaining attributes stay [unindexed](AttrIndex::Unindexed)
    /// and their consumers fall back to the scan path — results are
    /// unchanged, only the pruning is lost.
    pub fn build_budgeted(rel: &Relation, oracle: &DistanceOracle, budget: &Budget) -> Self {
        Self::build_traced(rel, oracle, budget, &Tracer::disabled())
    }

    /// [`SimilarityIndex::build_budgeted`] with tracing: opens a
    /// `distance::index_build` span (matching the budget phase label),
    /// emits one `index_attr` event per attribute with the layout it
    /// ended up with, and attaches [`IndexStats`] to the tracer's metrics
    /// registry. With a disabled tracer this is exactly
    /// `build_budgeted`.
    pub fn build_traced(
        rel: &Relation,
        oracle: &DistanceOracle,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Self {
        let span = tracer.span("distance::index_build");
        let attrs: Vec<AttrIndex> = (0..rel.arity())
            .map(|attr| {
                if budget.check("distance::index_build").is_err() {
                    return AttrIndex::Unindexed;
                }
                match rel.schema().ty(attr) {
                    AttrType::Int | AttrType::Float => {
                        AttrIndex::Numeric(NumericIndex::build(rel, attr))
                    }
                    AttrType::Text => match TextIndex::build(rel, oracle, attr, budget) {
                        Some(ix) => AttrIndex::Text(Box::new(ix)),
                        None => AttrIndex::Unindexed,
                    },
                    AttrType::Bool => AttrIndex::Unindexed,
                }
            })
            .collect();
        for (attr, ix) in attrs.iter().enumerate() {
            let mode = match ix {
                AttrIndex::Unindexed => "unindexed",
                AttrIndex::Numeric(_) => "numeric",
                AttrIndex::Text(_) => "text",
            };
            span.event("index_attr", || {
                vec![("attr", FieldValue::U64(attr as u64)), ("mode", FieldValue::Str(mode))]
            });
        }
        let stats = tracer.is_enabled().then(|| IndexStats::register(&tracer.metrics()));
        SimilarityIndex { attrs, stats }
    }

    /// Attaches (or detaches) probe statistics after construction.
    pub fn set_stats(&mut self, stats: Option<IndexStats>) {
        self.stats = stats;
    }

    /// `true` iff queries on `attr` are index-accelerated.
    pub fn is_indexed(&self, attr: AttrId) -> bool {
        !matches!(self.attrs[attr], AttrIndex::Unindexed)
    }

    /// Number of indexed attributes (for reporting and tests).
    pub fn indexed_attr_count(&self) -> usize {
        (0..self.attrs.len()).filter(|&a| self.is_indexed(a)).count()
    }

    /// A superset of the rows whose value on `attr` is within `threshold`
    /// of `rel[row][attr]`, ascending (the query row itself may appear).
    /// `None` when the attribute is not indexed **or** the superset would
    /// cover more than half the relation — pruning that weak costs more
    /// (expansion, sorting, merging) than the scan it replaces, so the
    /// caller must scan. See the module docs for the exact contract.
    pub fn rows_within(
        &self,
        rel: &Relation,
        attr: AttrId,
        row: usize,
        threshold: f64,
    ) -> Option<Vec<usize>> {
        if let Some(s) = &self.stats {
            s.probes.inc();
        }
        let outcome = match &self.attrs[attr] {
            AttrIndex::Unindexed => Err(UNINDEXED),
            AttrIndex::Numeric(ix) => ix.rows_within(row, threshold, rel.len()),
            AttrIndex::Text(ix) => ix.rows_within(rel, attr, row, threshold),
        };
        match outcome {
            Ok(rows) => {
                if let Some(s) = &self.stats {
                    s.answered.inc();
                    s.superset_rows.observe(rows.len() as u64);
                }
                Some(rows)
            }
            Err(reason) => {
                if let Some(s) = &self.stats {
                    s.decline(reason);
                }
                None
            }
        }
    }

    /// Re-indexes a cell after its value changed (e.g. an imputation).
    /// Must be called alongside [`DistanceOracle::update_cell`] whenever
    /// the relation the index was built from is mutated.
    pub fn update_cell(&mut self, rel: &Relation, row: usize, attr: AttrId) {
        match &mut self.attrs[attr] {
            AttrIndex::Unindexed => {}
            AttrIndex::Numeric(ix) => ix.update_cell(rel, row, attr),
            AttrIndex::Text(ix) => ix.update_cell(rel, row, attr),
        }
    }

    /// Extends the index to cover a freshly appended row of `rel`. Text
    /// dictionaries never grow: an appended value outside the dictionary
    /// joins the foreign-row list, which every answer includes — so
    /// [`SimilarityIndex::rows_within`] keeps its superset contract and
    /// consumers decide exactly as they would against a rebuilt index.
    /// Rows must be appended in order; undo with
    /// [`SimilarityIndex::truncate_rows`].
    pub fn append_row(&mut self, rel: &Relation, row: usize) {
        for (attr, ix) in self.attrs.iter_mut().enumerate() {
            match ix {
                AttrIndex::Unindexed => {}
                AttrIndex::Numeric(ix) => ix.append_row(rel, row, attr),
                AttrIndex::Text(ix) => ix.append_row(rel, row, attr),
            }
        }
    }

    /// Permanently adopts rows `base..rel.len()` into the index, growing
    /// each text column's dictionary (and its derived q-gram layers) to
    /// cover their values — the *commit* counterpart of the transient
    /// [`SimilarityIndex::append_row`]. After the commit no committed row
    /// is foreign: each one sits in a real posting list, exactly as a
    /// from-scratch build over the grown relation would place it
    /// (`tests/ingest_differential.rs` pins snapshot equality).
    ///
    /// The code assignment matches a rebuild for the same reason the
    /// oracle's [`DistanceOracle::commit_rows`] does: new values first
    /// appear after every reference row, so first-occurrence interning
    /// hands them codes `≥ k` in the same order either way — whether the
    /// rebuild copies the oracle's (also committed) dictionary or
    /// re-interns the column itself. Numeric attributes need no commit
    /// step: [`SimilarityIndex::append_row`] already inserts their
    /// entries at the exact sorted position a rebuild would.
    ///
    /// Requires every committed row to already be covered by
    /// [`SimilarityIndex::append_row`].
    pub fn commit_rows(&mut self, rel: &Relation, base: usize) {
        for (attr, ix) in self.attrs.iter_mut().enumerate() {
            if let AttrIndex::Text(ix) = ix {
                ix.commit_rows(rel, base, attr);
            }
        }
    }

    /// Drops every row `≥ len` from the per-row state and posting lists —
    /// the inverse of [`SimilarityIndex::append_row`].
    pub fn truncate_rows(&mut self, len: usize) {
        for ix in &mut self.attrs {
            match ix {
                AttrIndex::Unindexed => {}
                AttrIndex::Numeric(ix) => ix.truncate_rows(len),
                AttrIndex::Text(ix) => ix.truncate_rows(len),
            }
        }
    }

    /// Snapshots the per-attribute posting state for serialization — see
    /// [`AttrSnapshot`]. Inverse of [`SimilarityIndex::from_snapshot`].
    pub fn to_snapshot(&self) -> Vec<AttrSnapshot> {
        self.attrs
            .iter()
            .map(|ix| match ix {
                AttrIndex::Unindexed => AttrSnapshot::Unindexed,
                AttrIndex::Numeric(ix) => AttrSnapshot::Numeric { entries: ix.entries.clone() },
                AttrIndex::Text(ix) => AttrSnapshot::Text {
                    values: ix.values.clone(),
                    row_codes: ix.row_codes.clone(),
                },
            })
            .collect()
    }

    /// Rebuilds an index over `rel` from a snapshot. The derived layers
    /// (gram profiles, inverted postings, per-code row lists) are
    /// reconstructed from the snapshot's dictionary and row codes — they
    /// are pure functions of those inputs, so the rebuilt index answers
    /// exactly like the snapshotted one at a fraction of a full build's
    /// cost (no interning pass, no oracle). Every structural invariant is
    /// validated; corrupt snapshots yield an error, never a panic.
    pub fn from_snapshot(
        rel: &Relation,
        attrs: Vec<AttrSnapshot>,
    ) -> Result<SimilarityIndex, String> {
        if attrs.len() != rel.arity() {
            return Err(format!(
                "index covers {} attributes, relation has {}",
                attrs.len(),
                rel.arity()
            ));
        }
        let attrs = attrs
            .into_iter()
            .enumerate()
            .map(|(attr, snap)| match snap {
                AttrSnapshot::Unindexed => Ok(AttrIndex::Unindexed),
                AttrSnapshot::Numeric { entries } => {
                    NumericIndex::from_snapshot(rel, attr, entries).map(AttrIndex::Numeric)
                }
                AttrSnapshot::Text { values, row_codes } => {
                    TextIndex::from_snapshot(rel, attr, values, row_codes)
                        .map(|ix| AttrIndex::Text(Box::new(ix)))
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SimilarityIndex { attrs, stats: None })
    }
}

/// Portable snapshot of one attribute's index, exposed so higher layers
/// can serialize the index (the model-artifact format in `renuver-serve`).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrSnapshot {
    /// No index for this attribute.
    Unindexed,
    /// Sorted-value range index: `(value, row)` sorted by value then row.
    Numeric {
        /// The sorted entry list (rows with missing/NaN cells absent).
        entries: Vec<(f64, usize)>,
    },
    /// Text index: the dictionary plus the per-row code assignment; the
    /// q-gram layers are derived on load.
    Text {
        /// Code → value.
        values: Vec<String>,
        /// Current code per row (`u32::MAX` = missing, `u32::MAX - 1` =
        /// value outside the dictionary).
        row_codes: Vec<u32>,
    },
}

impl NumericIndex {
    fn build(rel: &Relation, attr: AttrId) -> NumericIndex {
        let mut row_vals = Vec::with_capacity(rel.len());
        let mut entries = Vec::new();
        for row in 0..rel.len() {
            let v = rel.value(row, attr).as_f64().filter(|v| !v.is_nan());
            if let Some(v) = v {
                entries.push((v, row));
            }
            row_vals.push(v);
        }
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        NumericIndex { entries, row_vals }
    }

    /// `Err` carries the decline reason (see the reason constants).
    fn rows_within(&self, row: usize, thr: f64, n_rows: usize) -> Result<Vec<usize>, &'static str> {
        // A missing/non-numeric/NaN query value matches nothing; so do NaN
        // and negative thresholds (distances are non-negative or NaN, and
        // `d ≤ t` is false either way) — all exactly as the scan decides.
        let Some(v) = self.row_vals[row] else { return Ok(Vec::new()) };
        if thr.is_nan() || thr < 0.0 {
            return Ok(Vec::new());
        }
        let (start, end) = if thr == f64::INFINITY {
            // Every present value is a candidate (the exact check still
            // rejects pairs whose difference is NaN, e.g. ∞ vs ∞).
            (0, self.entries.len())
        } else {
            let (lo, hi) = (v - thr, v + thr);
            // The entries are sorted by `total_cmp`, which only disagrees
            // with the IEEE `<` used here on -0.0/0.0 ties — where both
            // predicates are constant across the tie, so partition_point
            // stays valid.
            (
                self.entries.partition_point(|&(x, _)| x < lo),
                self.entries.partition_point(|&(x, _)| x <= hi),
            )
        };
        // Selectivity cutoff: a range covering most of the relation prunes
        // nothing worth the sort below.
        if 2 * (end - start) > n_rows {
            return Err(SELECTIVITY);
        }
        let mut rows: Vec<usize> =
            self.entries[start..end].iter().map(|&(_, r)| r).collect();
        rows.sort_unstable();
        Ok(rows)
    }

    fn append_row(&mut self, rel: &Relation, row: usize, attr: AttrId) {
        debug_assert_eq!(self.row_vals.len(), row, "rows must append in order");
        let v = rel.value(row, attr).as_f64().filter(|v| !v.is_nan());
        self.row_vals.push(v);
        if let Some(v) = v {
            if let Err(pos) = self
                .entries
                .binary_search_by(|&(x, r)| x.total_cmp(&v).then(r.cmp(&row)))
            {
                self.entries.insert(pos, (v, row));
            }
        }
    }

    fn truncate_rows(&mut self, len: usize) {
        for row in len..self.row_vals.len() {
            if let Some(old) = self.row_vals[row] {
                if let Ok(pos) = self
                    .entries
                    .binary_search_by(|&(x, r)| x.total_cmp(&old).then(r.cmp(&row)))
                {
                    self.entries.remove(pos);
                }
            }
        }
        self.row_vals.truncate(len);
    }

    /// Validates a snapshotted entry list against the relation and
    /// re-derives the per-row values. Every present (numeric, non-NaN)
    /// cell must appear exactly once at its exact value, and the list
    /// must be sorted — anything else is corrupt.
    fn from_snapshot(
        rel: &Relation,
        attr: AttrId,
        entries: Vec<(f64, usize)>,
    ) -> Result<NumericIndex, String> {
        let row_vals: Vec<Option<f64>> = (0..rel.len())
            .map(|row| rel.value(row, attr).as_f64().filter(|v| !v.is_nan()))
            .collect();
        let present = row_vals.iter().filter(|v| v.is_some()).count();
        if entries.len() != present {
            return Err(format!(
                "attr {attr}: {} entries for {present} present cells",
                entries.len()
            ));
        }
        let sorted = entries
            .windows(2)
            .all(|w| w[0].0.total_cmp(&w[1].0).then(w[0].1.cmp(&w[1].1)).is_lt());
        if !sorted {
            return Err(format!("attr {attr}: entries not sorted"));
        }
        for &(v, row) in &entries {
            let matches = row_vals
                .get(row)
                .copied()
                .flatten()
                .is_some_and(|rv| rv.to_bits() == v.to_bits());
            if !matches {
                return Err(format!("attr {attr}: entry ({v}, {row}) does not match cell"));
            }
        }
        Ok(NumericIndex { entries, row_vals })
    }

    fn update_cell(&mut self, rel: &Relation, row: usize, attr: AttrId) {
        let new = rel.value(row, attr).as_f64().filter(|v| !v.is_nan());
        let old = std::mem::replace(&mut self.row_vals[row], new);
        if let Some(old) = old {
            if let Ok(pos) = self
                .entries
                .binary_search_by(|&(x, r)| x.total_cmp(&old).then(r.cmp(&row)))
            {
                self.entries.remove(pos);
            }
        }
        if let Some(new) = new {
            if let Err(pos) = self
                .entries
                .binary_search_by(|&(x, r)| x.total_cmp(&new).then(r.cmp(&row)))
            {
                self.entries.insert(pos, (new, row));
            }
        }
    }
}

/// The q-gram multiset profile of `chars`, as `(c1 << 32) | c2` keys →
/// multiplicities. `None` when the value is too short to have a gram or
/// too long to be worth profiling.
fn gram_profile(chars_len: usize, s: &str) -> Option<HashMap<u64, u32>> {
    if !(QGRAM..=MAX_GRAM_CHARS).contains(&chars_len) {
        return None;
    }
    let mut profile: HashMap<u64, u32> = HashMap::with_capacity(chars_len);
    let mut prev: Option<char> = None;
    for c in s.chars() {
        if let Some(p) = prev {
            *profile.entry(((p as u64) << 32) | c as u64).or_insert(0) += 1;
        }
        prev = Some(c);
    }
    Some(profile)
}

impl TextIndex {
    /// Builds the text index; `None` when the budget trips mid-build (the
    /// attribute then stays unindexed — a half-built inverted index would
    /// silently drop candidates).
    fn build(
        rel: &Relation,
        oracle: &DistanceOracle,
        attr: AttrId,
        budget: &Budget,
    ) -> Option<TextIndex> {
        let n = rel.len();
        // Dictionary: reuse the oracle's interning when the column has one
        // (the common case); degraded/over-cap columns are re-interned here
        // — the index has no quadratic matrix fill, so no cap applies.
        let (value_index, row_codes) = match oracle.dictionary(attr) {
            Some((map, codes)) => {
                let value_index = map.clone();
                let row_codes = codes
                    .into_iter()
                    .map(|c| match c {
                        RowCode::Code(c) => c,
                        RowCode::Null => NO_CODE,
                        RowCode::Foreign => FOREIGN_CODE,
                    })
                    .collect();
                (value_index, row_codes)
            }
            None => {
                let mut value_index: HashMap<String, u32> = HashMap::new();
                let mut row_codes = Vec::with_capacity(n);
                for row in 0..n {
                    match rel.value(row, attr).as_text() {
                        None => row_codes.push(NO_CODE),
                        Some(s) => {
                            let next = value_index.len() as u32;
                            row_codes
                                .push(*value_index.entry(s.to_owned()).or_insert(next));
                        }
                    }
                }
                (value_index, row_codes)
            }
        };
        let k = value_index.len();
        let mut values = vec![String::new(); k];
        for (s, &c) in &value_index {
            values[c as usize] = s.clone();
        }
        let mut postings = vec![Vec::new(); k];
        let mut foreign_rows = Vec::new();
        for (row, &code) in row_codes.iter().enumerate() {
            match code {
                NO_CODE => {}
                FOREIGN_CODE => foreign_rows.push(row),
                c => postings[c as usize].push(row),
            }
        }
        let mut lens = Vec::with_capacity(k);
        let mut grams = Vec::with_capacity(k);
        let mut ungrammed = Vec::new();
        let mut inverted: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        for (code, value) in values.iter().enumerate() {
            if code % BUILD_CHECK_STRIDE == BUILD_CHECK_STRIDE - 1
                && budget.check("distance::index_build").is_err()
            {
                return None;
            }
            let len = value.chars().count();
            lens.push(len as u32);
            let profile = gram_profile(len, value);
            match &profile {
                None => ungrammed.push(code as u32),
                Some(p) => {
                    for (&g, &count) in p {
                        inverted.entry(g).or_default().push((code as u32, count));
                    }
                }
            }
            grams.push(profile);
        }
        Some(TextIndex {
            value_index,
            values,
            lens,
            grams,
            ungrammed,
            inverted,
            postings,
            foreign_rows,
            row_codes,
        })
    }

    /// `Err` carries the decline reason (see the reason constants).
    fn rows_within(
        &self,
        rel: &Relation,
        attr: AttrId,
        row: usize,
        thr: f64,
    ) -> Result<Vec<usize>, &'static str> {
        let code = self.row_codes[row];
        if code == NO_CODE {
            // A missing query value matches nothing (the scan agrees:
            // `distance_bounded` is `None` on a null side).
            return Ok(Vec::new());
        }
        // Same threshold conversion as `value_distance_bounded`: floor to
        // an integer edit bound, NaN/negative → 0, so the candidate set
        // stays a superset of whatever the exact check accepts.
        let t = thr.floor().max(0.0);
        if t >= u32::MAX as f64 {
            // Effectively unbounded: every dictionary value qualifies, so
            // the index prunes nothing.
            return Err(UNBOUNDED);
        }
        let codes = if code == FOREIGN_CODE {
            match rel.value(row, attr).as_text() {
                // Non-text value in a text column: the exact check answers
                // `None` for every pair, so the empty set is exact.
                None => return Ok(Vec::new()),
                Some(s) => {
                    let len = s.chars().count();
                    self.codes_within(len, gram_profile(len, s).as_ref(), t as usize)
                        .ok_or(WEAK_FILTER)?
                }
            }
        } else {
            let c = code as usize;
            self.codes_within(self.lens[c] as usize, self.grams[c].as_ref(), t as usize)
                .ok_or(WEAK_FILTER)?
        };
        // Selectivity cutoff, decided before any expansion: when the
        // surviving postings cover most of the relation (the count filter
        // is at its theoretical bound for wide thresholds on short
        // strings), the expansion + sort + merge costs more than the scan
        // it would replace.
        let estimate: usize = codes
            .iter()
            .map(|&c| self.postings[c as usize].len())
            .sum::<usize>()
            + self.foreign_rows.len();
        if 2 * estimate > rel.len() {
            return Err(SELECTIVITY);
        }
        let mut rows: Vec<usize> = codes
            .iter()
            .flat_map(|&c| self.postings[c as usize].iter().copied())
            .collect();
        // Foreign values are unbounded by the index; include them all and
        // let the caller's exact check decide.
        rows.extend_from_slice(&self.foreign_rows);
        rows.sort_unstable();
        Ok(rows)
    }

    /// Dictionary codes whose value *may* be within edit distance `t` of
    /// the query value — a superset pruned by necessary conditions only
    /// (length gap and shared-gram count). No edit distance is computed at
    /// query time: the caller's exact check (an `O(1)` oracle matrix
    /// lookup) re-decides every returned row anyway, so banded
    /// verification here would spend a DP per code to save a lookup per
    /// row.
    ///
    /// Count-filter soundness: a string of `len` chars has `len − q + 1`
    /// q-grams, and one edit operation changes at most `q` of them, so two
    /// strings within edit distance `t` share at least
    /// `max(|G(u)|, |G(v)|) − q·t` grams (counted with multiplicity).
    /// Enumerating candidates through the inverted index is only complete
    /// when that bound is positive — i.e. every candidate must share at
    /// least one gram — otherwise the query falls back to a length-filtered
    /// scan of the dictionary (still per-*value*, not per-row).
    ///
    /// Returns `None` (decline; caller scans) when the shared-gram bound
    /// is too weak to be worth counting: if fewer than a third of the
    /// query's grams need to survive, natural data passes almost every
    /// value through the filter, and the counting pass itself becomes pure
    /// overhead on top of the scan the cutoff would force anyway. Purely a
    /// performance heuristic — `None` never affects results.
    fn codes_within(
        &self,
        qlen: usize,
        qgrams: Option<&HashMap<u64, u32>>,
        t: usize,
    ) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        let q_total = qlen.saturating_sub(QGRAM - 1);
        match qgrams {
            Some(qg) if q_total > QGRAM * t => {
                if 3 * (q_total - QGRAM * t) <= q_total {
                    return None;
                }
                // Dense per-code counters: the dictionary is small (the
                // oracle caps it) and a Vec beats hashing in the hot loop.
                let mut shared = vec![0usize; self.values.len()];
                for (g, &qcount) in qg {
                    if let Some(post) = self.inverted.get(g) {
                        for &(code, count) in post {
                            shared[code as usize] += qcount.min(count) as usize;
                        }
                    }
                }
                for (code, &s) in shared.iter().enumerate() {
                    let clen = self.lens[code] as usize;
                    if clen.abs_diff(qlen) > t {
                        continue;
                    }
                    let c_total = clen.saturating_sub(QGRAM - 1);
                    let needed = q_total.max(c_total).saturating_sub(QGRAM * t);
                    if s >= needed {
                        out.push(code as u32);
                    }
                }
                // Unprofiled values never surface through the inverted
                // index; length-filter them directly.
                for &code in &self.ungrammed {
                    if (self.lens[code as usize] as usize).abs_diff(qlen) <= t {
                        out.push(code);
                    }
                }
            }
            _ => {
                // The query value has no usable gram bound (too short, too
                // long, or t too large): length-filter the dictionary.
                for code in 0..self.values.len() as u32 {
                    if (self.lens[code as usize] as usize).abs_diff(qlen) <= t {
                        out.push(code);
                    }
                }
            }
        }
        Some(out)
    }

    fn append_row(&mut self, rel: &Relation, row: usize, attr: AttrId) {
        debug_assert_eq!(self.row_codes.len(), row, "rows must append in order");
        let code = match rel.value(row, attr).as_text() {
            None => NO_CODE,
            Some(s) => match self.value_index.get(s) {
                Some(&c) => c,
                // Never grow the dictionary on append: a foreign row is
                // included in every answer, so the superset contract (and
                // with it every consumer decision) is preserved.
                None => FOREIGN_CODE,
            },
        };
        self.row_codes.push(code);
        match code {
            NO_CODE => {}
            FOREIGN_CODE => {
                if let Err(pos) = self.foreign_rows.binary_search(&row) {
                    self.foreign_rows.insert(pos, row);
                }
            }
            c => {
                if let Err(pos) = self.postings[c as usize].binary_search(&row) {
                    self.postings[c as usize].insert(pos, row);
                }
            }
        }
    }

    /// See [`SimilarityIndex::commit_rows`]. Grows the dictionary with
    /// every new value in first-occurrence order, derives its q-gram
    /// layers (each new code lands at the *end* of its grams' inverted
    /// lists, preserving the code-ascending order a rebuild produces),
    /// and moves the committed rows out of the foreign set into their
    /// posting lists.
    fn commit_rows(&mut self, rel: &Relation, base: usize, attr: AttrId) {
        let n = rel.len();
        debug_assert_eq!(self.row_codes.len(), n, "commit_rows requires appended coverage");
        for row in base..n {
            let Some(s) = rel.value(row, attr).as_text() else {
                // Missing cell: stays NO_CODE, exactly as appended.
                continue;
            };
            let code = match self.value_index.get(s) {
                Some(&c) => c,
                None => {
                    let c = self.values.len() as u32;
                    self.value_index.insert(s.to_owned(), c);
                    self.values.push(s.to_owned());
                    let len = s.chars().count();
                    self.lens.push(len as u32);
                    let profile = gram_profile(len, s);
                    match &profile {
                        None => self.ungrammed.push(c),
                        Some(p) => {
                            for (&g, &count) in p {
                                self.inverted.entry(g).or_default().push((c, count));
                            }
                        }
                    }
                    self.grams.push(profile);
                    self.postings.push(Vec::new());
                    c
                }
            };
            let old = std::mem::replace(&mut self.row_codes[row], code);
            if old == code {
                continue;
            }
            match old {
                NO_CODE => {}
                FOREIGN_CODE => {
                    if let Ok(pos) = self.foreign_rows.binary_search(&row) {
                        self.foreign_rows.remove(pos);
                    }
                }
                c => {
                    if let Ok(pos) = self.postings[c as usize].binary_search(&row) {
                        self.postings[c as usize].remove(pos);
                    }
                }
            }
            if let Err(pos) = self.postings[code as usize].binary_search(&row) {
                self.postings[code as usize].insert(pos, row);
            }
        }
    }

    fn truncate_rows(&mut self, len: usize) {
        for row in len..self.row_codes.len() {
            match self.row_codes[row] {
                NO_CODE => {}
                FOREIGN_CODE => {
                    if let Ok(pos) = self.foreign_rows.binary_search(&row) {
                        self.foreign_rows.remove(pos);
                    }
                }
                c => {
                    if let Ok(pos) = self.postings[c as usize].binary_search(&row) {
                        self.postings[c as usize].remove(pos);
                    }
                }
            }
        }
        self.row_codes.truncate(len);
    }

    /// Rebuilds the index from its dictionary and row-code assignment,
    /// re-deriving the q-gram layers (pure functions of the dictionary)
    /// and the per-code row lists (pure function of the codes).
    fn from_snapshot(
        rel: &Relation,
        attr: AttrId,
        values: Vec<String>,
        row_codes: Vec<u32>,
    ) -> Result<TextIndex, String> {
        let k = values.len();
        if k as u64 >= FOREIGN_CODE as u64 {
            return Err(format!("attr {attr}: dictionary too large ({k})"));
        }
        if row_codes.len() != rel.len() {
            return Err(format!(
                "attr {attr}: {} row codes for {} rows",
                row_codes.len(),
                rel.len()
            ));
        }
        let mut value_index = HashMap::with_capacity(k);
        for (code, value) in values.iter().enumerate() {
            if value_index.insert(value.clone(), code as u32).is_some() {
                return Err(format!("attr {attr}: duplicate dictionary value"));
            }
        }
        let mut postings = vec![Vec::new(); k];
        let mut foreign_rows = Vec::new();
        for (row, &code) in row_codes.iter().enumerate() {
            match code {
                NO_CODE => {}
                FOREIGN_CODE => foreign_rows.push(row),
                c => match postings.get_mut(c as usize) {
                    Some(list) => list.push(row),
                    None => {
                        return Err(format!("attr {attr}: row code {c} out of range"))
                    }
                },
            }
        }
        let mut lens = Vec::with_capacity(k);
        let mut grams = Vec::with_capacity(k);
        let mut ungrammed = Vec::new();
        let mut inverted: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        for (code, value) in values.iter().enumerate() {
            let len = value.chars().count();
            lens.push(len as u32);
            let profile = gram_profile(len, value);
            match &profile {
                None => ungrammed.push(code as u32),
                Some(p) => {
                    for (&g, &count) in p {
                        inverted.entry(g).or_default().push((code as u32, count));
                    }
                }
            }
            grams.push(profile);
        }
        Ok(TextIndex {
            value_index,
            values,
            lens,
            grams,
            ungrammed,
            inverted,
            postings,
            foreign_rows,
            row_codes,
        })
    }

    fn update_cell(&mut self, rel: &Relation, row: usize, attr: AttrId) {
        let new_code = match rel.value(row, attr).as_text() {
            None => NO_CODE,
            Some(s) => match self.value_index.get(s) {
                Some(&c) => c,
                // A value outside the dictionary (never produced by
                // RENUVER itself, which copies donor values, but external
                // callers may mutate freely): track the row as foreign
                // rather than growing the dictionary, mirroring the
                // oracle's `DIRECT_CODE` fallback.
                None => FOREIGN_CODE,
            },
        };
        let old_code = std::mem::replace(&mut self.row_codes[row], new_code);
        match old_code {
            NO_CODE => {}
            FOREIGN_CODE => {
                if let Ok(pos) = self.foreign_rows.binary_search(&row) {
                    self.foreign_rows.remove(pos);
                }
            }
            c => {
                if let Ok(pos) = self.postings[c as usize].binary_search(&row) {
                    self.postings[c as usize].remove(pos);
                }
            }
        }
        match new_code {
            NO_CODE => {}
            FOREIGN_CODE => {
                if let Err(pos) = self.foreign_rows.binary_search(&row) {
                    self.foreign_rows.insert(pos, row);
                }
            }
            c => {
                if let Err(pos) = self.postings[c as usize].binary_search(&row) {
                    self.postings[c as usize].insert(pos, row);
                }
            }
        }
    }
}

/// Intersection of two ascending row lists.
pub fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Union (deduplicated) of two ascending row lists.
pub fn union_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!("loop condition"),
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{Schema, Value};

    fn rel(types: &[(&str, AttrType)], rows: Vec<Vec<Value>>) -> Relation {
        let schema = Schema::new(
            types.iter().map(|(n, t)| ((*n).to_owned(), *t)),
        )
        .unwrap();
        Relation::new(schema, rows).unwrap()
    }

    /// Reference implementation: the scan the index must stay a superset
    /// of (and, composed with the exact check, equal to).
    fn scan_within(
        oracle: &DistanceOracle,
        rel: &Relation,
        attr: AttrId,
        row: usize,
        thr: f64,
    ) -> Vec<usize> {
        (0..rel.len())
            .filter(|&j| oracle.distance_bounded(rel, attr, row, j, thr).is_some())
            .collect()
    }

    /// Asserts the superset contract and the filtered equality on every
    /// (row, threshold) combination for one attribute.
    fn assert_matches_scan(rel: &Relation, attr: AttrId, thresholds: &[f64]) {
        let oracle = DistanceOracle::build(rel, 3000);
        let index = SimilarityIndex::build(rel, &oracle);
        for row in 0..rel.len() {
            for &thr in thresholds {
                let scan = scan_within(&oracle, rel, attr, row, thr);
                let Some(got) = index.rows_within(rel, attr, row, thr) else {
                    continue;
                };
                assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted/dedup: {got:?}");
                for &j in &scan {
                    assert!(
                        got.contains(&j),
                        "attr {attr} row {row} thr {thr}: scan row {j} missing from {got:?}"
                    );
                }
                let filtered: Vec<usize> = got
                    .into_iter()
                    .filter(|&j| {
                        oracle.distance_bounded(rel, attr, row, j, thr).is_some()
                    })
                    .collect();
                assert_eq!(filtered, scan, "attr {attr} row {row} thr {thr}");
            }
        }
    }

    #[test]
    fn numeric_range_queries_match_scan() {
        let r = rel(
            &[("A", AttrType::Int), ("B", AttrType::Float)],
            vec![
                vec![Value::Int(5), Value::Float(1.5)],
                vec![Value::Int(-3), Value::Float(f64::NAN)],
                vec![Value::Null, Value::Float(1.5)],
                vec![Value::Int(5), Value::Float(-0.0)],
                vec![Value::Int(7), Value::Float(f64::INFINITY)],
                vec![Value::Int(0), Value::Float(2.25)],
            ],
        );
        let thresholds = [0.0, -0.0, 0.5, 2.0, 100.0, -1.0, f64::NAN, f64::INFINITY];
        assert_matches_scan(&r, 0, &thresholds);
        assert_matches_scan(&r, 1, &thresholds);
    }

    #[test]
    fn text_queries_match_scan() {
        let r = rel(
            &[("Name", AttrType::Text)],
            vec![
                vec!["Granita".into()],
                vec!["Granitas".into()],
                vec![Value::Null],
                vec!["Granita".into()],
                vec!["Fenix".into()],
                vec!["".into()],
                vec!["x".into()],
                vec!["café".into()],
                vec!["cafe".into()],
            ],
        );
        let thresholds = [0.0, 1.0, 2.5, 7.0, 100.0, -2.0, f64::NAN, f64::INFINITY];
        assert_matches_scan(&r, 0, &thresholds);
    }

    #[test]
    fn short_and_unicode_strings_never_falsely_pruned() {
        // Adversarial count-filter inputs: empty strings, strings shorter
        // than q, multibyte chars whose (c1<<32)|c2 keys must not collide.
        let r = rel(
            &[("S", AttrType::Text)],
            vec![
                vec!["".into()],
                vec!["a".into()],
                vec!["ab".into()],
                vec!["ba".into()],
                vec!["日本語".into()],
                vec!["日本".into()],
                vec!["語".into()],
                vec!["αβγδ".into()],
            ],
        );
        assert_matches_scan(&r, 0, &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn megabyte_cells_sit_on_the_ungrammed_list() {
        let big = "x".repeat(1 << 20);
        let r = rel(
            &[("Blob", AttrType::Text)],
            vec![
                vec![big.clone().into()],
                vec![format!("{big}y").into()],
                vec!["small".into()],
            ],
        );
        // Over MAX_MATRIX_VALUE_CHARS → oracle column is Direct → the index
        // interns the column itself; over MAX_GRAM_CHARS → no gram profile.
        assert_matches_scan(&r, 0, &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn commit_rows_matches_rebuild_snapshot_and_queries() {
        let mut r = rel(
            &[("Name", AttrType::Text), ("N", AttrType::Int)],
            vec![
                vec!["Granita".into(), Value::Int(5)],
                vec!["Granitas".into(), Value::Int(6)],
                vec![Value::Null, Value::Int(7)],
            ],
        );
        let oracle = DistanceOracle::build(&r, 3000);
        let mut index = SimilarityIndex::build(&r, &oracle);
        let base = r.len();
        r.push(vec!["Granita".into(), Value::Int(8)]).unwrap(); // known value
        r.push(vec!["Fenix".into(), Value::Int(9)]).unwrap(); // new value
        r.push(vec!["Fenix".into(), Value::Null]).unwrap(); // repeated new value
        r.push(vec![Value::Null, Value::Int(1)]).unwrap(); // missing cell
        r.push(vec!["x".into(), Value::Int(2)]).unwrap(); // new, too short to gram
        for row in base..r.len() {
            index.append_row(&r, row);
        }
        index.commit_rows(&r, base);
        let rebuilt = SimilarityIndex::build(&r, &DistanceOracle::build(&r, 3000));
        assert_eq!(index.to_snapshot(), rebuilt.to_snapshot());
        // No committed row is left on the foreign list, and every probe
        // answers identically to the from-scratch build.
        for attr in 0..r.arity() {
            for row in 0..r.len() {
                for thr in [0.0, 1.0, 3.0, 100.0] {
                    assert_eq!(
                        index.rows_within(&r, attr, row, thr),
                        rebuilt.rows_within(&r, attr, row, thr),
                        "attr {attr} row {row} thr {thr}"
                    );
                }
            }
        }
        // Committing again with nothing appended is a no-op.
        index.commit_rows(&r, r.len());
        assert_eq!(index.to_snapshot(), rebuilt.to_snapshot());
    }

    #[test]
    fn bool_columns_are_unindexed() {
        let r = rel(
            &[("B", AttrType::Bool)],
            vec![vec![Value::Bool(true)], vec![Value::Bool(false)]],
        );
        let oracle = DistanceOracle::build(&r, 3000);
        let index = SimilarityIndex::build(&r, &oracle);
        assert!(!index.is_indexed(0));
        assert_eq!(index.rows_within(&r, 0, 0, 1.0), None);
    }

    #[test]
    fn tripped_budget_degrades_to_unindexed() {
        let r = rel(
            &[("A", AttrType::Int), ("S", AttrType::Text)],
            vec![vec![Value::Int(1), "a".into()], vec![Value::Int(2), "b".into()]],
        );
        let oracle = DistanceOracle::build(&r, 3000);
        let budget = Budget::unlimited().with_ops_limit(0);
        let index = SimilarityIndex::build_budgeted(&r, &oracle, &budget);
        assert_eq!(index.indexed_attr_count(), 0);
        assert_eq!(index.rows_within(&r, 0, 0, 1.0), None);
        assert_eq!(index.rows_within(&r, 1, 0, 1.0), None);
    }

    #[test]
    fn update_cell_tracks_imputations_and_foreign_values() {
        // Wide enough (6 rows) that two-row answers stay under the
        // selectivity cutoff and are actually returned.
        let mut r = rel(
            &[("S", AttrType::Text), ("N", AttrType::Int)],
            vec![
                vec!["Granita".into(), Value::Int(1)],
                vec!["Granitas".into(), Value::Null],
                vec![Value::Null, Value::Int(3)],
                vec!["Fenix".into(), Value::Int(10)],
                vec!["Bistro".into(), Value::Int(20)],
                vec!["Deli".into(), Value::Int(30)],
            ],
        );
        let mut oracle = DistanceOracle::build(&r, 3000);
        let mut index = SimilarityIndex::build(&r, &oracle);
        // Imputation with an existing value: row 2 joins Granita's posting.
        r.set_value(2, 0, "Granita".into());
        oracle.update_cell(&r, 2, 0);
        index.update_cell(&r, 2, 0);
        assert_eq!(index.rows_within(&r, 0, 0, 0.0), Some(vec![0, 2]));
        // Foreign value: always included in every answer on the column.
        r.set_value(2, 0, "Zebra".into());
        oracle.update_cell(&r, 2, 0);
        index.update_cell(&r, 2, 0);
        let got = index.rows_within(&r, 0, 0, 0.0).unwrap();
        assert!(got.contains(&2), "{got:?}");
        // And a foreign *query* value still matches the scan exactly after
        // the caller's filter.
        assert_matches_scan_current(&oracle, &index, &r, 0, &[0.0, 1.0, 6.0]);
        // Numeric update.
        r.set_value(1, 1, Value::Int(2));
        oracle.update_cell(&r, 1, 1);
        index.update_cell(&r, 1, 1);
        assert_eq!(index.rows_within(&r, 1, 0, 1.0), Some(vec![0, 1]));
        // Back to null.
        r.set_value(1, 1, Value::Null);
        oracle.update_cell(&r, 1, 1);
        index.update_cell(&r, 1, 1);
        assert_eq!(index.rows_within(&r, 1, 0, 1.0), Some(vec![0]));
        assert_eq!(index.rows_within(&r, 1, 1, 100.0), Some(vec![]));
    }

    /// Like `assert_matches_scan` but against already-updated state.
    fn assert_matches_scan_current(
        oracle: &DistanceOracle,
        index: &SimilarityIndex,
        rel: &Relation,
        attr: AttrId,
        thresholds: &[f64],
    ) {
        for row in 0..rel.len() {
            for &thr in thresholds {
                let scan = scan_within(oracle, rel, attr, row, thr);
                // `None` (cutoff or unindexed) means "scan", which is
                // trivially exact.
                let Some(got) = index.rows_within(rel, attr, row, thr) else {
                    continue;
                };
                let filtered: Vec<usize> = got
                    .into_iter()
                    .filter(|&j| {
                        oracle.distance_bounded(rel, attr, row, j, thr).is_some()
                    })
                    .collect();
                assert_eq!(filtered, scan, "attr {attr} row {row} thr {thr}");
            }
        }
    }

    #[test]
    fn stats_attribute_each_decline_to_its_cutoff() {
        let r = rel(
            &[("S", AttrType::Text), ("N", AttrType::Int), ("B", AttrType::Bool)],
            vec![
                vec!["Granita".into(), Value::Int(1), Value::Bool(true)],
                vec!["Granitas".into(), Value::Int(2), Value::Bool(false)],
                vec!["Fenix".into(), Value::Int(30), Value::Bool(true)],
                vec!["Bistro".into(), Value::Int(40), Value::Bool(false)],
            ],
        );
        let oracle = DistanceOracle::build(&r, 3000);
        let tracer = Tracer::enabled();
        let index = SimilarityIndex::build_traced(&r, &oracle, &Budget::unlimited(), &tracer);
        let stats = IndexStats::register(&tracer.metrics());

        assert!(index.rows_within(&r, 0, 0, 0.0).is_some()); // answered
        assert_eq!(stats.answered.get(), 1);
        assert_eq!(stats.superset_rows.count(), 1);

        assert_eq!(index.rows_within(&r, 2, 0, 1.0), None); // bool → unindexed
        assert_eq!(stats.declined_unindexed.get(), 1);

        assert_eq!(index.rows_within(&r, 0, 0, f64::INFINITY), None); // unbounded
        assert_eq!(stats.declined_unbounded.get(), 1);

        // Edit bound 2 on ~7-char strings: fewer than ⅓ of the query's
        // grams must survive → the weak-filter heuristic declines.
        assert_eq!(index.rows_within(&r, 0, 0, 2.0), None);
        assert_eq!(stats.declined_weak_filter.get(), 1);

        // A numeric range covering every row trips the selectivity cutoff.
        assert_eq!(index.rows_within(&r, 1, 0, 100.0), None);
        assert_eq!(stats.declined_selectivity.get(), 1);

        assert_eq!(stats.probes.get(), 5);

        // Index attrs were announced: one event per attribute.
        let events = tracer.records().iter().filter(|e| e.kind == "index_attr").count();
        assert_eq!(events, 3);

        // Untraced index: branch stays inert.
        let untraced = SimilarityIndex::build(&r, &oracle);
        let _ = untraced.rows_within(&r, 0, 0, 0.0);
        assert_eq!(stats.probes.get(), 5);
    }

    #[test]
    fn sorted_list_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &[1, 2]), Vec::<usize>::new());
        assert_eq!(union_sorted(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[], &[4]), vec![4]);
        assert_eq!(union_sorted(&[4], &[]), vec![4]);
    }

    fn mixed_rel(n: usize) -> Relation {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::from(format!("name-{:03}", i % 17).as_str()),
                    Value::Float(i as f64 * 0.5),
                ]
            })
            .collect();
        rel(&[("Name", AttrType::Text), ("Score", AttrType::Float)], rows)
    }

    #[test]
    fn appended_rows_keep_the_superset_contract() {
        let mut rel = mixed_rel(64);
        let oracle = DistanceOracle::build(&rel, 3000);
        let mut index = SimilarityIndex::build(&rel, &oracle);
        let base = rel.len();
        // One known value, one foreign, one null per column.
        rel.push(vec!["name-003".into(), Value::Float(7.25)]).unwrap();
        rel.push(vec!["stranger".into(), Value::Float(1e6)]).unwrap();
        rel.push(vec![Value::Null, Value::Null]).unwrap();
        for row in base..rel.len() {
            index.append_row(&rel, row);
        }
        let current = DistanceOracle::direct(&rel);
        for attr in 0..rel.arity() {
            assert_matches_scan_current(&current, &index, &rel, attr, &[0.0, 1.0, 3.0]);
        }
        // Truncation restores exactly the pre-append answers.
        index.truncate_rows(base);
        rel.truncate(base);
        let current = DistanceOracle::direct(&rel);
        for attr in 0..rel.arity() {
            assert_matches_scan_current(&current, &index, &rel, attr, &[0.0, 1.0, 3.0]);
        }
    }

    #[test]
    fn snapshot_round_trip_answers_identically() {
        let rel = mixed_rel(48);
        let oracle = DistanceOracle::build(&rel, 3000);
        let mut index = SimilarityIndex::build(&rel, &oracle);
        // Exercise the foreign-row path before snapshotting.
        let mut rel = rel;
        rel.set_value(5, 0, "alien".into());
        index.update_cell(&rel, 5, 0);
        let restored = SimilarityIndex::from_snapshot(&rel, index.to_snapshot()).unwrap();
        for attr in 0..rel.arity() {
            for row in 0..rel.len() {
                for thr in [0.0, 1.0, 2.5, f64::INFINITY] {
                    assert_eq!(
                        index.rows_within(&rel, attr, row, thr),
                        restored.rows_within(&rel, attr, row, thr),
                        "attr {attr} row {row} thr {thr}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_index_snapshots_are_typed_errors() {
        let rel = mixed_rel(16);
        let oracle = DistanceOracle::build(&rel, 3000);
        let index = SimilarityIndex::build(&rel, &oracle);
        // Wrong arity.
        let mut snap = index.to_snapshot();
        snap.pop();
        assert!(SimilarityIndex::from_snapshot(&rel, snap).is_err());
        // Out-of-range text row code.
        let mut snap = index.to_snapshot();
        if let AttrSnapshot::Text { row_codes, .. } = &mut snap[0] {
            row_codes[0] = 40_000;
        }
        assert!(SimilarityIndex::from_snapshot(&rel, snap)
            .err().unwrap()
            .contains("out of range"));
        // Numeric entries inconsistent with the relation.
        let mut snap = index.to_snapshot();
        if let AttrSnapshot::Numeric { entries } = &mut snap[1] {
            entries[0].0 += 1.0;
        }
        assert!(SimilarityIndex::from_snapshot(&rel, snap).is_err());
        // Numeric entry list out of order.
        let mut snap = index.to_snapshot();
        if let AttrSnapshot::Numeric { entries } = &mut snap[1] {
            entries.swap(0, 1);
        }
        assert!(SimilarityIndex::from_snapshot(&rel, snap)
            .err().unwrap()
            .contains("not sorted"));
    }
}
