//! Distance patterns between tuple pairs (Definition 5.4).

use renuver_data::{AttrId, Relation, Tuple};

use crate::functions::value_distance;

/// The distance pattern `p` of a tuple pair `(t, t_j)`: one entry per
/// attribute, `None` where either tuple is missing the value, otherwise
/// `Some(δ_A(t[A], t_j[A]))`.
///
/// Example 5.5: for `(t5, t6)` of the Restaurant sample the pattern is
/// `[7, _, 0, _, 0]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistancePattern {
    entries: Vec<Option<f64>>,
}

impl DistancePattern {
    /// Computes the pattern between two tuples of the same schema.
    pub fn between(a: &Tuple, b: &Tuple) -> Self {
        let entries = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| value_distance(x, y))
            .collect();
        DistancePattern { entries }
    }

    /// Computes the pattern between rows `i` and `j` of a relation.
    pub fn between_rows(rel: &Relation, i: usize, j: usize) -> Self {
        Self::between(rel.tuple(i), rel.tuple(j))
    }

    /// Builds a pattern directly from entries (used by tests and discovery).
    pub fn from_entries(entries: Vec<Option<f64>>) -> Self {
        DistancePattern { entries }
    }

    /// The pattern entry for attribute `attr` — the paper's `p[B]`.
    #[inline]
    pub fn get(&self, attr: AttrId) -> Option<f64> {
        self.entries[attr]
    }

    /// Number of attributes in the pattern.
    pub fn arity(&self) -> usize {
        self.entries.len()
    }

    /// Raw entries slice.
    pub fn entries(&self) -> &[Option<f64>] {
        &self.entries
    }

    /// `true` iff the pattern satisfies every constraint `(B, β)`:
    /// `p[B] ≠ _` and `p[B] ≤ β` (paper, text after Example 5.5).
    pub fn satisfies(&self, constraints: &[(AttrId, f64)]) -> bool {
        constraints
            .iter()
            .all(|&(attr, thr)| matches!(self.entries[attr], Some(d) if d <= thr))
    }

    /// Mean of the entries over `attrs` — the distance value of Equation 2,
    /// `dist = Σ_B p[B] / |X|`. Returns `None` if any required entry is
    /// missing (a pattern that satisfies the LHS never has missing entries
    /// on LHS attributes).
    pub fn mean_over(&self, attrs: &[AttrId]) -> Option<f64> {
        if attrs.is_empty() {
            return None;
        }
        let mut sum = 0.0;
        for &a in attrs {
            sum += self.entries[a]?;
        }
        Some(sum / attrs.len() as f64)
    }
}

impl std::fmt::Display for DistancePattern {
    /// Renders like the paper: `[7, _, 0, _, 0]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e {
                None => write!(f, "_")?,
                Some(d) if d.fract() == 0.0 => write!(f, "{}", *d as i64)?,
                Some(d) => write!(f, "{d}")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema, Value};

    /// The (t5, t6) pair from Table 2: Name, City, Phone, Type, Class.
    fn t5_t6() -> (Tuple, Tuple) {
        let t5: Tuple = vec![
            "Fenix".into(),
            "Hollywood".into(),
            "213/848-6677".into(),
            Value::Null,
            Value::Int(5),
        ];
        let t6: Tuple = vec![
            "Fenix Argyle".into(),
            Value::Null,
            "213/848-6677".into(),
            "French (new)".into(),
            Value::Int(5),
        ];
        (t5, t6)
    }

    #[test]
    fn paper_example_5_5() {
        let (t5, t6) = t5_t6();
        let p = DistancePattern::between(&t5, &t6);
        assert_eq!(
            p.entries(),
            &[Some(7.0), None, Some(0.0), None, Some(0.0)]
        );
        assert_eq!(p.to_string(), "[7, _, 0, _, 0]");
    }

    #[test]
    fn paper_example_5_7_distance_value() {
        // φ5: Name(≤8), Phone(≤0) → City(≤9); dist = (7+0)/2 = 3.5.
        let (t5, t6) = t5_t6();
        let p = DistancePattern::between(&t5, &t6);
        assert!(p.satisfies(&[(0, 8.0), (2, 0.0)]));
        assert_eq!(p.mean_over(&[0, 2]), Some(3.5));
    }

    #[test]
    fn satisfies_requires_present_entries() {
        let (t5, t6) = t5_t6();
        let p = DistancePattern::between(&t5, &t6);
        // City entry is `_`, so any constraint on City fails.
        assert!(!p.satisfies(&[(1, 100.0)]));
    }

    #[test]
    fn satisfies_respects_thresholds() {
        let p = DistancePattern::from_entries(vec![Some(3.0), Some(5.0)]);
        assert!(p.satisfies(&[(0, 3.0), (1, 5.0)]));
        assert!(!p.satisfies(&[(0, 2.9)]));
        assert!(p.satisfies(&[])); // vacuous
    }

    #[test]
    fn mean_over_missing_entry_is_none() {
        let p = DistancePattern::from_entries(vec![Some(3.0), None]);
        assert_eq!(p.mean_over(&[0]), Some(3.0));
        assert_eq!(p.mean_over(&[0, 1]), None);
        assert_eq!(p.mean_over(&[]), None);
    }

    #[test]
    fn between_rows_matches_between() {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Text)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), "ab".into()],
                vec![Value::Int(4), "abc".into()],
            ],
        )
        .unwrap();
        let p = DistancePattern::between_rows(&rel, 0, 1);
        assert_eq!(p.entries(), &[Some(3.0), Some(1.0)]);
    }

    #[test]
    fn pattern_is_symmetric() {
        let (t5, t6) = t5_t6();
        assert_eq!(
            DistancePattern::between(&t5, &t6),
            DistancePattern::between(&t6, &t5)
        );
    }
}
