//! Bit-parallel Levenshtein kernels (Myers 1999, multi-word layout after
//! Hyyrö 2003).
//!
//! The classic dynamic program costs one ALU op per matrix cell. Myers'
//! formulation encodes a whole column of the DP matrix as *vertical
//! delta* bit-vectors — `Pv` (cell below is `+1`) and `Mv` (`-1`) — and
//! advances all 64 rows of a word in a constant number of bit operations,
//! so the cost drops from `O(|a|·|b|)` to `O(⌈|a|/64⌉·|b|)`. Patterns
//! longer than one word chain blocks through a horizontal carry (`hin` /
//! `hout`), exactly like a multi-word addition.
//!
//! Two invariants make the multi-word layout exact without padding
//! tricks:
//!
//! - Carries only propagate from low bits to high bits (the `+` in the
//!   `Xh` recurrence and the `<< 1` shifts), so the garbage bits above
//!   row `m-1` in the last block can never corrupt a real row.
//! - The running score is maintained at bit `(m-1) % 64` of the last
//!   block from the *pre-shift* horizontal deltas, so it is read before
//!   any garbage could shift in.
//!
//! The kernels are exact for every input — [`MyersPattern::distance`]
//! equals the scalar two-row DP and [`MyersPattern::distance_bounded`]
//! equals the banded Ukkonen kernel wherever that returns `Some` — which
//! `tests/kernel_parity.rs` pins over the fuzz corpus. Dispatch between
//! the scalar and bit-parallel kernels lives in
//! [`crate::functions`]; the rule of thumb is in [`myers_wins`].

use std::collections::HashMap;

/// Pattern length (in chars) below which the scalar kernels stay in
/// charge: under half a word, building `Peq` costs about as much as the
/// whole two-row DP.
pub const MYERS_MIN_CHARS: usize = 32;

/// ASCII alphabet size for the dense `Peq` fast path.
const ASCII: usize = 128;

/// Largest pattern (in 64-row blocks) that still gets a dense
/// 128-entry ASCII `Peq` table; longer patterns use the sparse map to
/// keep table memory proportional to the pattern's own alphabet.
const MAX_DENSE_BLOCKS: usize = 64;

/// Decides whether the bit-parallel kernel should run for a pattern of
/// `short_len` chars. `band` is the Ukkonen half-width (`max`) when the
/// caller has a bound, `None` for an unbounded query.
///
/// Unbounded queries always prefer Myers once the pattern clears
/// [`MYERS_MIN_CHARS`]. Bounded queries keep the banded scalar kernel
/// unless the band is wide relative to the block count — at paper-scale
/// thresholds (single digits against long cells) `O(len·max)` beats
/// `O(len·len/64)`, and a one-shot call also pays the whole `Peq` build
/// that the oracle's pattern reuse amortizes away. The crossover
/// constant (a word step doing ~16 cells' worth of work) is measured,
/// not derived: `bench_kernels` records both regimes.
pub(crate) fn myers_wins(short_len: usize, band: Option<usize>) -> bool {
    if short_len < MYERS_MIN_CHARS {
        return false;
    }
    match band {
        None => true,
        Some(max) => {
            let blocks = short_len.div_ceil(64);
            max.saturating_mul(2).saturating_add(1) >= blocks.saturating_mul(16)
        }
    }
}

/// `Peq` storage: for each alphabet character, one bit-vector (one `u64`
/// per block) with bit `i` set where `pattern[i]` equals that character.
enum Peq {
    /// All pattern chars are ASCII: a dense `128 × blocks` table indexed
    /// by code point. Non-ASCII text chars match nothing by construction.
    Ascii(Box<[u64]>),
    /// General patterns: distinct pattern chars → slot into `table`
    /// (`slots × blocks`); absent text chars read the shared zero row.
    Map { index: HashMap<char, usize>, table: Box<[u64]>, zeros: Box<[u64]> },
}

/// A pattern preprocessed for Myers' algorithm: build once, compare
/// against many texts. The oracle's matrix fill builds one per dictionary
/// row and amortizes the `Peq` construction over `k` comparisons.
pub struct MyersPattern {
    /// Pattern length in chars (`m`).
    len: usize,
    /// `⌈m / 64⌉`.
    blocks: usize,
    peq: Peq,
}

impl MyersPattern {
    /// Preprocesses `pattern` (non-empty; the caller handles the empty
    /// string, whose distance is just the text length).
    pub fn new(pattern: &[char]) -> MyersPattern {
        assert!(!pattern.is_empty(), "empty patterns have no bit-vector");
        let m = pattern.len();
        let blocks = m.div_ceil(64);
        let all_ascii = pattern.iter().all(|&c| (c as u32) < ASCII as u32);
        let peq = if all_ascii && blocks <= MAX_DENSE_BLOCKS {
            let mut table = vec![0u64; ASCII * blocks].into_boxed_slice();
            for (i, &c) in pattern.iter().enumerate() {
                table[(c as usize) * blocks + i / 64] |= 1u64 << (i % 64);
            }
            Peq::Ascii(table)
        } else {
            let mut index: HashMap<char, usize> = HashMap::new();
            for &c in pattern {
                let next = index.len();
                index.entry(c).or_insert(next);
            }
            let mut table = vec![0u64; index.len() * blocks].into_boxed_slice();
            for (i, &c) in pattern.iter().enumerate() {
                table[index[&c] * blocks + i / 64] |= 1u64 << (i % 64);
            }
            Peq::Map { index, table, zeros: vec![0u64; blocks].into_boxed_slice() }
        };
        MyersPattern { len: m, blocks, peq }
    }

    /// Pattern length in chars.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false` — see [`MyersPattern::new`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `Peq` row for one text character.
    #[inline]
    fn eq_row(&self, c: char) -> &[u64] {
        match &self.peq {
            Peq::Ascii(table) => {
                let code = c as u32 as usize;
                if code < ASCII {
                    &table[code * self.blocks..(code + 1) * self.blocks]
                } else {
                    // An all-ASCII pattern never matches a non-ASCII text
                    // char; the zero row lives at... there is none, so
                    // borrow the statically shared empty row below.
                    ZERO_ROW_64.get(..self.blocks).expect("dense blocks fit the static zero row")
                }
            }
            Peq::Map { index, table, zeros } => match index.get(&c) {
                Some(&slot) => &table[slot * self.blocks..(slot + 1) * self.blocks],
                None => zeros,
            },
        }
    }

    /// Edit distance to `text` — exactly [`crate::levenshtein`] on the
    /// same inputs.
    pub fn distance(&self, text: &[char]) -> usize {
        self.run(text, usize::MAX).expect("usize::MAX bound never trips")
    }

    /// Bounded edit distance: `Some(d)` iff `d ≤ max`, with an early exit
    /// once the score provably cannot come back under the bound.
    pub fn distance_bounded(&self, text: &[char], max: usize) -> Option<usize> {
        if self.len.abs_diff(text.len()) > max {
            return None;
        }
        self.run(text, max)
    }

    /// The column loop shared by both entry points.
    fn run(&self, text: &[char], max: usize) -> Option<usize> {
        let blocks = self.blocks;
        let last = blocks - 1;
        let last_bit = 1u64 << ((self.len - 1) % 64);
        // Column 0 of the DP matrix: every cell is `i`, i.e. all vertical
        // deltas are +1.
        let mut pv = vec![!0u64; blocks];
        let mut mv = vec![0u64; blocks];
        let mut score = self.len;
        let n = text.len();
        for (j, &c) in text.iter().enumerate() {
            let eq_row = self.eq_row(c);
            // The top boundary row D[0][j] = j: each new column enters
            // block 0 with a +1 horizontal delta.
            let mut hin: i32 = 1;
            for b in 0..blocks {
                let eq = eq_row[b];
                let pvb = pv[b];
                let mvb = mv[b];
                let xv = eq | mvb;
                // A negative carry-in acts like a match in row 0 of the
                // block (Hyyrö's correction to the one-word recurrence).
                let eq_in = eq | u64::from(hin < 0);
                let xh = (((eq_in & pvb).wrapping_add(pvb)) ^ pvb) | eq_in;
                let mut ph = mvb | !(xh | pvb);
                let mut mh = pvb & xh;
                if b == last {
                    // Pre-shift deltas at row m-1: the score update.
                    if ph & last_bit != 0 {
                        score += 1;
                    } else if mh & last_bit != 0 {
                        score -= 1;
                    }
                }
                let hout = ((ph >> 63) & 1) as i32 - ((mh >> 63) & 1) as i32;
                ph <<= 1;
                mh <<= 1;
                // The carry-in becomes row 0's horizontal delta.
                if hin > 0 {
                    ph |= 1;
                } else if hin < 0 {
                    mh |= 1;
                }
                pv[b] = mh | !(xv | ph);
                mv[b] = ph & xv;
                hin = hout;
            }
            // Each remaining column lowers the score by at most 1, so once
            // `score - remaining` clears `max` no finish can be in bound.
            if score > max.saturating_add(n - j - 1) {
                return None;
            }
        }
        (score <= max).then_some(score)
    }
}

/// Shared zero `Peq` row for non-ASCII text chars against dense ASCII
/// patterns (covers up to [`MAX_DENSE_BLOCKS`] blocks).
static ZERO_ROW_64: [u64; MAX_DENSE_BLOCKS] = [0u64; MAX_DENSE_BLOCKS];

/// One-shot bit-parallel distance over char slices; picks the shorter
/// side as the pattern so the block count is minimal. The caller is
/// expected to have handled empty inputs (both kernels would, but the
/// scalar path is faster there).
pub(crate) fn myers_distance(a: &[char], b: &[char]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    MyersPattern::new(short).distance(long)
}

/// One-shot bounded bit-parallel distance; same contract as
/// [`crate::levenshtein_bounded`] over pre-collected chars.
pub(crate) fn myers_distance_bounded(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }
    MyersPattern::new(short).distance_bounded(long, max)
}

/// [`myers_distance`] over `&str` — public so the parity tests and the
/// kernel benchmark can drive the bit-parallel path directly, bypassing
/// the size dispatch in [`crate::levenshtein`].
pub fn myers_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    myers_distance(&a, &b)
}

/// [`myers_distance_bounded`] over `&str`; same contract as
/// [`crate::levenshtein_bounded`], bypassing the dispatch.
pub fn myers_levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max {
        return None;
    }
    myers_distance_bounded(&a, &b, max.min(a.len().max(b.len())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{levenshtein_scalar, lev_core_scalar};

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn matches_scalar_on_classic_pairs() {
        for (a, b) in [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("", "abc"),
            ("abc", ""),
            ("same", "same"),
            ("Fenix", "Fenix Argyle"),
            ("café", "cafe"),
            ("日本語", "日本"),
        ] {
            assert_eq!(myers_levenshtein(a, b), levenshtein_scalar(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn multi_block_patterns_are_exact() {
        // Patterns spanning 1..4 blocks, with edits at the block seams.
        let base: String = ('a'..='z').cycle().take(200).collect();
        let mut edited = chars(&base);
        edited[63] = 'Z'; // last bit of block 0
        edited[64] = 'Z'; // first bit of block 1
        edited.remove(128);
        let edited: String = edited.into_iter().collect();
        assert_eq!(myers_levenshtein(&base, &edited), levenshtein_scalar(&base, &edited));
        for take in [63, 64, 65, 127, 128, 129, 191, 192] {
            let prefix: String = base.chars().take(take).collect();
            assert_eq!(
                myers_levenshtein(&base, &prefix),
                levenshtein_scalar(&base, &prefix),
                "prefix of {take}"
            );
        }
    }

    #[test]
    fn bounded_agrees_with_unbounded() {
        let a = "abcdefghijklmnopqrstuvwxyz0123456789abcdefghijklmnopqrstuvwxyz0123456789";
        let b = "abcdefghijklmnopqrstuvwxyz0123456789abcdefghijklmnopqrstuvwxyz01234567";
        let d = myers_levenshtein(a, b);
        assert_eq!(myers_levenshtein_bounded(a, b, usize::MAX), Some(d));
        assert_eq!(myers_levenshtein_bounded(a, b, d), Some(d));
        assert_eq!(myers_levenshtein_bounded(a, b, d - 1), None);
    }

    #[test]
    fn non_ascii_text_against_ascii_pattern() {
        // The dense table path must treat non-ASCII text chars as
        // no-match, not index out of bounds.
        let pat = "x".repeat(70);
        let text = format!("{}é💧", &pat[..68]);
        assert_eq!(myers_levenshtein(&pat, &text), levenshtein_scalar(&pat, &text));
    }

    #[test]
    fn sparse_map_path_matches() {
        // A pattern with non-ASCII chars forces the map-backed Peq.
        let a: String = "αβγδε".chars().cycle().take(80).collect();
        let b: String = "αβγxε".chars().cycle().take(77).collect();
        assert_eq!(myers_levenshtein(&a, &b), levenshtein_scalar(&a, &b));
        assert_eq!(
            myers_levenshtein_bounded(&a, &b, 10),
            Some(myers_levenshtein(&a, &b)).filter(|d| *d <= 10)
        );
    }

    #[test]
    fn pattern_reuse_matches_one_shot() {
        let rows = ["Granita Beverly Hills", "Granitas", "Fenix at the Argyle", "Art's Deli"];
        for a in rows {
            let pa = chars(a);
            let pat = MyersPattern::new(&pa);
            for b in rows {
                let tb = chars(b);
                assert_eq!(pat.distance(&tb), lev_core_scalar(&pa, &tb), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn bounded_early_exit_is_not_lossy() {
        // Distances right at the bound must survive the early exit.
        let a: String = ('a'..='z').cycle().take(96).collect();
        for edits in 0..6 {
            let mut m = chars(&a);
            for e in 0..edits {
                m[e * 7] = '#';
            }
            let b: String = m.into_iter().collect();
            let d = levenshtein_scalar(&a, &b);
            assert_eq!(myers_levenshtein_bounded(&a, &b, d), Some(d));
            if d > 0 {
                assert_eq!(myers_levenshtein_bounded(&a, &b, d - 1), None);
            }
        }
    }
}
