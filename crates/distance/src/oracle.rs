//! Dictionary-encoded distance lookups.
//!
//! RENUVER, key detection, and candidate generation all ask the same
//! question — `δ_A(t_i[A], t_j[A])` — millions of times, but a column
//! rarely has more than a few hundred *distinct* values. The
//! [`DistanceOracle`] interns each text column and precomputes its full
//! distance matrix once (columns with huge dictionaries fall back to
//! direct computation), so the hot path is an array lookup instead of an
//! `O(len²)` edit-distance dynamic program.
//!
//! Numeric and boolean distances are a subtraction; they are always
//! computed directly.

use std::collections::HashMap;

use renuver_budget::Budget;
use renuver_data::{AttrId, AttrType, Relation, Value};
use renuver_obs::{Counter, FieldValue, Metrics, Tracer};

use crate::functions::{lev_core, value_distance, value_distance_bounded};
use crate::kernels;

/// The dictionary cap every production call site builds with: columns
/// with more distinct values than this answer directly instead of paying
/// an `O(k²)` matrix fill. [`DistanceOracle::commit_rows`] must be handed
/// the same cap the oracle was built with so its degradation decision
/// matches what a full rebuild would do.
pub const DEFAULT_DICT_CAP: usize = 3000;

/// Dictionary values longer than this never enter a precomputed matrix:
/// one megabyte-scale cell would turn the `O(k²)` fill into gigabytes of
/// `O(len²)` Levenshtein work before the first query. Direct computation
/// uses the banded early-exit kernel, which stays proportional to the
/// query threshold instead.
const MAX_MATRIX_VALUE_CHARS: usize = 1024;

/// How many matrix entries to fill between budget checks.
const FILL_CHECK_STRIDE: usize = 64;

/// Code meaning "this cell is missing".
const NULL_CODE: u32 = u32::MAX;
/// Code meaning "value not in the dictionary — compute directly".
const DIRECT_CODE: u32 = u32::MAX - 1;

enum ColumnTable {
    /// Numeric / boolean column: distances are computed directly.
    Numeric,
    /// Text column with an interned dictionary and a full distance matrix.
    Matrix {
        index: HashMap<String, u32>,
        dict_len: usize,
        /// Row-major `dict_len × dict_len` distances.
        data: Vec<f32>,
    },
    /// Text column whose dictionary exceeded the cap.
    Direct,
}

/// Per-row dictionary status of a matrix-encoded text column, as exposed
/// by [`DistanceOracle::dictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowCode {
    /// The cell's interned dictionary code.
    Code(u32),
    /// The cell is missing.
    Null,
    /// The cell holds a post-update value outside the dictionary; the
    /// oracle computes its distances directly.
    Foreign,
}

/// Query counters for one oracle: how often the precomputed matrix
/// answered versus how often a distance kernel ran directly. Registered
/// against a [`Metrics`] registry so the end-of-run table and the trace
/// file's `metrics` line both see them.
#[derive(Debug, Clone)]
pub struct OracleStats {
    /// Queries answered by an O(1) matrix lookup.
    pub matrix_hits: Counter,
    /// Queries that invoked a distance kernel directly (numeric columns,
    /// degraded text columns, and foreign post-update values).
    pub direct_calls: Counter,
}

impl OracleStats {
    /// Creates (or re-attaches to) the oracle's counters in `metrics`.
    pub fn register(metrics: &Metrics) -> Self {
        OracleStats {
            matrix_hits: metrics.counter("oracle.matrix_hits"),
            direct_calls: metrics.counter("oracle.direct_calls"),
        }
    }
}

/// Per-relation distance cache (see module docs).
pub struct DistanceOracle {
    /// `codes[attr][row]`: dictionary code of the cell, or a sentinel.
    codes: Vec<Vec<u32>>,
    tables: Vec<ColumnTable>,
    /// Query counters; `None` (the default) keeps the hot path at a
    /// single branch.
    stats: Option<OracleStats>,
}

impl DistanceOracle {
    /// Builds the oracle for `rel`, precomputing distance matrices for
    /// every text column with at most `cap` distinct values.
    pub fn build(rel: &Relation, cap: usize) -> Self {
        Self::build_budgeted(rel, cap, &Budget::unlimited())
    }

    /// [`DistanceOracle::build`] under a [`Budget`]: when the budget trips
    /// during a column's matrix fill, that column (and every later text
    /// column) degrades to direct computation — the oracle stays fully
    /// functional, it just answers those columns without a cache. Queries
    /// return the same distances either way.
    pub fn build_budgeted(rel: &Relation, cap: usize, budget: &Budget) -> Self {
        Self::build_traced(rel, cap, budget, &Tracer::disabled())
    }

    /// [`DistanceOracle::build_budgeted`] with tracing: opens a
    /// `distance::oracle_build` span (the same label the budget checks
    /// use), emits one `oracle_column` event per column with the encoding
    /// it ended up with, and attaches [`OracleStats`] counters to the
    /// tracer's metrics registry. With a disabled tracer this is exactly
    /// `build_budgeted`.
    pub fn build_traced(rel: &Relation, cap: usize, budget: &Budget, tracer: &Tracer) -> Self {
        let span = tracer.span("distance::oracle_build");
        let emit = |attr: usize, mode: &'static str, distinct: usize| {
            span.event("oracle_column", || {
                vec![
                    ("attr", FieldValue::U64(attr as u64)),
                    ("mode", FieldValue::Str(mode)),
                    ("distinct", FieldValue::U64(distinct as u64)),
                ]
            });
        };
        let m = rel.arity();
        let n = rel.len();
        let mut codes = vec![Vec::new(); m];
        let mut tables = Vec::with_capacity(m);
        for (attr, code_slot) in codes.iter_mut().enumerate() {
            if rel.schema().ty(attr) != AttrType::Text {
                tables.push(ColumnTable::Numeric);
                emit(attr, "numeric", 0);
                continue;
            }
            if budget.check("distance::oracle_build").is_err() {
                tables.push(ColumnTable::Direct);
                emit(attr, "direct", 0);
                continue;
            }
            let mut index: HashMap<String, u32> = HashMap::new();
            let mut dict: Vec<&str> = Vec::new();
            let mut col_codes = Vec::with_capacity(n);
            for row in 0..n {
                match rel.value(row, attr).as_text() {
                    None => col_codes.push(NULL_CODE),
                    Some(s) => {
                        let next = dict.len() as u32;
                        let code = *index.entry(s.to_owned()).or_insert_with(|| {
                            dict.push(s);
                            next
                        });
                        col_codes.push(code);
                    }
                }
            }
            if dict.len() > cap {
                tables.push(ColumnTable::Direct);
                emit(attr, "direct", dict.len());
                continue;
            }
            let k = dict.len();
            let chars: Vec<Vec<char>> = dict.iter().map(|s| s.chars().collect()).collect();
            if chars.iter().any(|c| c.len() > MAX_MATRIX_VALUE_CHARS) {
                tables.push(ColumnTable::Direct);
                emit(attr, "direct", k);
                continue;
            }
            // The O(k²) Levenshtein fill dominates build time. Each row of
            // the upper triangle is independent, so distribute rows across
            // the installed pool (the per-row results come back in index
            // order, keeping the matrix bit-identical to a sequential
            // fill) and mirror into the lower triangle afterwards. A row
            // that observes a budget trip yields `None`, which discards
            // the whole matrix — a half-filled cache would answer queries
            // with zeros.
            let tails: Vec<Option<Vec<f32>>> = rayon::par_map_indexed(k, |a| {
                if budget.check("distance::matrix_fill").is_err() {
                    return None;
                }
                // Long dictionary values run Myers' bit-parallel kernel
                // with the Peq preprocessing amortized over the whole row
                // of the matrix; short values keep the two-row DP. Both
                // kernels are exact, so the matrix is bit-identical
                // either way.
                let pattern = (kernels::myers_wins(chars[a].len(), None))
                    .then(|| kernels::MyersPattern::new(&chars[a]));
                let mut tail = Vec::with_capacity(k - a - 1);
                for (off, b) in ((a + 1)..k).enumerate() {
                    if off % FILL_CHECK_STRIDE == FILL_CHECK_STRIDE - 1
                        && budget.check("distance::matrix_fill").is_err()
                    {
                        return None;
                    }
                    let d = match &pattern {
                        Some(p) => p.distance(&chars[b]),
                        None => lev_core(&chars[a], &chars[b]),
                    };
                    tail.push(d as f32);
                }
                Some(tail)
            });
            if tails.iter().any(Option::is_none) {
                tables.push(ColumnTable::Direct);
                emit(attr, "direct", k);
                continue;
            }
            let mut data = vec![0.0f32; k * k];
            for (a, tail) in tails.into_iter().enumerate() {
                for (off, d) in tail.into_iter().flatten().enumerate() {
                    let b = a + 1 + off;
                    data[a * k + b] = d;
                    data[b * k + a] = d;
                }
            }
            *code_slot = col_codes;
            tables.push(ColumnTable::Matrix { index, dict_len: k, data });
            emit(attr, "matrix", k);
        }
        let stats = tracer.is_enabled().then(|| OracleStats::register(&tracer.metrics()));
        DistanceOracle { codes, tables, stats }
    }

    /// A cache-free oracle: every query computes directly. Useful for
    /// one-shot calls and as the reference in equivalence tests.
    pub fn direct(rel: &Relation) -> Self {
        DistanceOracle {
            codes: vec![Vec::new(); rel.arity()],
            tables: (0..rel.arity())
                .map(|a| {
                    if rel.schema().ty(a) == AttrType::Text {
                        ColumnTable::Direct
                    } else {
                        ColumnTable::Numeric
                    }
                })
                .collect(),
            stats: None,
        }
    }

    /// Attaches (or detaches) query counters after construction — used by
    /// callers that build the oracle untraced but enable metrics later.
    pub fn set_stats(&mut self, stats: Option<OracleStats>) {
        self.stats = stats;
    }

    /// Distance between `rel[i][attr]` and `rel[j][attr]` — `None` when
    /// either value is missing (or incomparable). Must be called with the
    /// same relation the oracle was built from, kept current through
    /// [`DistanceOracle::update_cell`].
    #[inline]
    pub fn distance(&self, rel: &Relation, attr: AttrId, i: usize, j: usize) -> Option<f64> {
        match &self.tables[attr] {
            ColumnTable::Numeric | ColumnTable::Direct => {
                if let Some(s) = &self.stats {
                    s.direct_calls.inc();
                }
                value_distance(rel.value(i, attr), rel.value(j, attr))
            }
            ColumnTable::Matrix { dict_len, data, .. } => {
                let (a, b) = (self.codes[attr][i], self.codes[attr][j]);
                if a == NULL_CODE || b == NULL_CODE {
                    return None;
                }
                if a == DIRECT_CODE || b == DIRECT_CODE {
                    if let Some(s) = &self.stats {
                        s.direct_calls.inc();
                    }
                    return value_distance(rel.value(i, attr), rel.value(j, attr));
                }
                if let Some(s) = &self.stats {
                    s.matrix_hits.inc();
                }
                Some(data[a as usize * dict_len + b as usize] as f64)
            }
        }
    }

    /// [`DistanceOracle::distance`] filtered by a bound: `Some(d)` only
    /// when `d ≤ max`. Columns without a precomputed matrix use the
    /// early-exit banded Levenshtein kernel, which is the hot path for
    /// high-cardinality text columns (phone numbers, ids).
    #[inline]
    pub fn distance_bounded(
        &self,
        rel: &Relation,
        attr: AttrId,
        i: usize,
        j: usize,
        max: f64,
    ) -> Option<f64> {
        match &self.tables[attr] {
            ColumnTable::Matrix { dict_len, data, .. } => {
                let (a, b) = (self.codes[attr][i], self.codes[attr][j]);
                if a == NULL_CODE || b == NULL_CODE {
                    return None;
                }
                if a == DIRECT_CODE || b == DIRECT_CODE {
                    if let Some(s) = &self.stats {
                        s.direct_calls.inc();
                    }
                    return value_distance_bounded(rel.value(i, attr), rel.value(j, attr), max);
                }
                if let Some(s) = &self.stats {
                    s.matrix_hits.inc();
                }
                Some(data[a as usize * dict_len + b as usize] as f64).filter(|d| *d <= max)
            }
            _ => {
                if let Some(s) = &self.stats {
                    s.direct_calls.inc();
                }
                value_distance_bounded(rel.value(i, attr), rel.value(j, attr), max)
            }
        }
    }

    /// The dictionary encoding of a text column, when one was built: the
    /// value → code interning map plus the per-row code of every cell.
    /// `None` for numeric/boolean columns and for text columns that
    /// degraded to direct computation (over-cap dictionaries, huge cells,
    /// tripped budgets) — the [`crate::SimilarityIndex`] builds its q-gram
    /// layer on top of this encoding and re-interns only when it is absent.
    pub fn dictionary(&self, attr: AttrId) -> Option<(&HashMap<String, u32>, Vec<RowCode>)> {
        match &self.tables[attr] {
            ColumnTable::Matrix { index, .. } => {
                let rows = self.codes[attr]
                    .iter()
                    .map(|&c| match c {
                        NULL_CODE => RowCode::Null,
                        DIRECT_CODE => RowCode::Foreign,
                        c => RowCode::Code(c),
                    })
                    .collect();
                Some((index, rows))
            }
            _ => None,
        }
    }

    /// A borrowed view over one matrix-encoded column, or `None` when the
    /// column has no precomputed matrix (numeric, over-cap, degraded).
    /// Bulk consumers — the [`crate::SimilarityIndex`] rebuild paths and
    /// the core crate's bitset verification — use this to work in
    /// dictionary-code space without per-row `Vec` materialization.
    pub fn matrix_view(&self, attr: AttrId) -> Option<MatrixView<'_>> {
        match &self.tables[attr] {
            ColumnTable::Matrix { dict_len, data, .. } => Some(MatrixView {
                codes: &self.codes[attr],
                dict_len: *dict_len,
                data,
            }),
            _ => None,
        }
    }

    /// Re-interns a cell after its value changed (e.g. an imputation).
    /// A value not present in the column's dictionary falls back to direct
    /// computation for that cell — imputers that copy existing values
    /// (RENUVER always does) keep full cache coverage.
    pub fn update_cell(&mut self, rel: &Relation, row: usize, attr: AttrId) {
        if let ColumnTable::Matrix { index, .. } = &self.tables[attr] {
            self.codes[attr][row] = match rel.value(row, attr) {
                Value::Null => NULL_CODE,
                v => match v.as_text().and_then(|s| index.get(s)) {
                    Some(&code) => code,
                    None => DIRECT_CODE,
                },
            };
        }
    }

    /// Extends the oracle to cover a freshly appended row of `rel` (the
    /// row must already be in the relation). Dictionary-encoded columns
    /// intern the new cell against the *existing* dictionary: a known
    /// value gets its code, an unknown one falls back to direct
    /// computation for that cell — the dictionary and matrix never grow,
    /// so distances are exactly what a full rebuild would answer (known
    /// pairs hit the same matrix entries; Levenshtein distances are
    /// integers, exactly representable in both the `f32` matrix and the
    /// direct `f64` kernel). Rows must be appended in order; undo with
    /// [`DistanceOracle::truncate_rows`].
    pub fn append_row(&mut self, rel: &Relation, row: usize) {
        for (attr, table) in self.tables.iter().enumerate() {
            if let ColumnTable::Matrix { index, .. } = table {
                debug_assert_eq!(self.codes[attr].len(), row, "rows must append in order");
                let code = match rel.value(row, attr) {
                    Value::Null => NULL_CODE,
                    v => match v.as_text().and_then(|s| index.get(s)) {
                        Some(&code) => code,
                        None => DIRECT_CODE,
                    },
                };
                self.codes[attr].push(code);
            }
        }
    }

    /// Permanently adopts rows `base..rel.len()` into the oracle, growing
    /// each matrix column's dictionary and distance matrix to cover their
    /// values — the *commit* counterpart of the transient
    /// [`DistanceOracle::append_row`]. Returns the number of dictionary
    /// entries added across all columns.
    ///
    /// The committed oracle is **bit-identical to a full rebuild** over
    /// the grown relation (`tests/ingest_differential.rs` pins this via
    /// snapshot equality):
    ///
    /// - A rebuild interns values in row order, so every value first
    ///   appearing in the committed rows gets a code `≥ dict_len`, in
    ///   first-occurrence order — exactly the codes assigned here.
    /// - The grown matrix embeds the old `k × k` matrix in its top-left
    ///   corner (old pairs keep their distances) and fills the new
    ///   row/column band with the same exact kernels the build uses;
    ///   Levenshtein distances are integers, exact in `f32`, so kernel
    ///   dispatch cannot perturb a bit.
    /// - A rebuild degrades the column to [`ColumnTable::Direct`] when
    ///   the full dictionary exceeds `cap` or any value exceeds
    ///   [`MAX_MATRIX_VALUE_CHARS`]; the commit applies the same rules to
    ///   the *grown* dictionary, so `cap` must be the cap the oracle was
    ///   built with ([`DEFAULT_DICT_CAP`] at every production call site).
    ///
    /// Requires every committed row to already be covered by
    /// [`DistanceOracle::append_row`] / [`DistanceOracle::update_cell`],
    /// and no row `< base` may carry a foreign (out-of-dictionary) code —
    /// the engine guarantees both: imputation only writes donor copies,
    /// and the reference rows are never mutated.
    pub fn commit_rows(&mut self, rel: &Relation, base: usize, cap: usize) -> usize {
        let n = rel.len();
        let mut grown_total = 0;
        for (attr, (table, col_codes)) in
            self.tables.iter_mut().zip(self.codes.iter_mut()).enumerate()
        {
            let ColumnTable::Matrix { index, dict_len, data } = table else { continue };
            debug_assert_eq!(col_codes.len(), n, "commit_rows requires appended coverage");
            debug_assert!(
                col_codes[..base].iter().all(|&c| c != DIRECT_CODE),
                "reference rows must not hold foreign values at commit time"
            );
            // Intern every new value in first-occurrence order — the same
            // order a full rebuild's row-order pass would meet them in.
            let k = *dict_len;
            let mut new_values: Vec<String> = Vec::new();
            for row in base..n {
                if let Some(s) = rel.value(row, attr).as_text() {
                    if !index.contains_key(s) {
                        index.insert(s.to_owned(), (k + new_values.len()) as u32);
                        new_values.push(s.to_owned());
                    }
                }
            }
            if new_values.is_empty() {
                // Nothing to grow; the appended codes are already final.
                continue;
            }
            let k2 = k + new_values.len();
            // A rebuild over the grown relation would refuse the matrix
            // entirely in these cases — mirror it exactly.
            if k2 > cap
                || new_values.iter().any(|s| s.chars().count() > MAX_MATRIX_VALUE_CHARS)
            {
                *table = ColumnTable::Direct;
                col_codes.clear();
                continue;
            }
            let mut dict = vec![String::new(); k2];
            for (value, &code) in index.iter() {
                dict[code as usize] = value.clone();
            }
            let chars: Vec<Vec<char>> = dict.iter().map(|s| s.chars().collect()).collect();
            // Embed the old matrix, then fill the new band. Both kernels
            // are exact, so pairing each new value's pattern against every
            // earlier value answers the same integers the build's
            // upper-triangle fill would.
            let mut grown = vec![0.0f32; k2 * k2];
            for a in 0..k {
                grown[a * k2..a * k2 + k].copy_from_slice(&data[a * k..(a + 1) * k]);
            }
            for b in k..k2 {
                let pattern = (kernels::myers_wins(chars[b].len(), None))
                    .then(|| kernels::MyersPattern::new(&chars[b]));
                for (a, other) in chars.iter().enumerate().take(b) {
                    let d = match &pattern {
                        Some(p) => p.distance(other),
                        None => lev_core(&chars[b], other),
                    } as f32;
                    grown[a * k2 + b] = d;
                    grown[b * k2 + a] = d;
                }
            }
            *data = grown;
            *dict_len = k2;
            grown_total += new_values.len();
            // Re-code the committed rows: every value is in the grown
            // dictionary now, so no committed row stays foreign.
            for (row, code) in col_codes.iter_mut().enumerate().take(n).skip(base) {
                *code = match rel.value(row, attr) {
                    Value::Null => NULL_CODE,
                    v => match v.as_text().and_then(|s| index.get(s)) {
                        Some(&code) => code,
                        None => DIRECT_CODE,
                    },
                };
            }
        }
        grown_total
    }

    /// Drops the per-row state of every row `≥ len` — the inverse of
    /// [`DistanceOracle::append_row`], used to roll a batch of appended
    /// rows back out. Dictionaries and matrices are untouched (appending
    /// never grew them).
    pub fn truncate_rows(&mut self, len: usize) {
        for (attr, table) in self.tables.iter().enumerate() {
            if matches!(table, ColumnTable::Matrix { .. }) {
                self.codes[attr].truncate(len);
            }
        }
    }

    /// Snapshots every column's encoding for serialization — see
    /// [`ColumnSnapshot`]. Inverse of [`DistanceOracle::from_snapshot`].
    pub fn to_snapshot(&self) -> Vec<ColumnSnapshot> {
        self.tables
            .iter()
            .enumerate()
            .map(|(attr, table)| match table {
                ColumnTable::Numeric => ColumnSnapshot::Numeric,
                ColumnTable::Direct => ColumnSnapshot::Direct,
                ColumnTable::Matrix { index, dict_len, data } => {
                    let mut dict = vec![String::new(); *dict_len];
                    for (value, &code) in index {
                        dict[code as usize] = value.clone();
                    }
                    ColumnSnapshot::Matrix {
                        dict,
                        data: data.clone(),
                        codes: self.codes[attr].clone(),
                    }
                }
            })
            .collect()
    }

    /// Rebuilds an oracle from a snapshot, validating every structural
    /// invariant (matrix shape, code ranges, dictionary uniqueness) so a
    /// corrupt snapshot yields an error, never a panicking oracle. Stats
    /// start detached; re-attach with [`DistanceOracle::set_stats`].
    pub fn from_snapshot(columns: Vec<ColumnSnapshot>) -> Result<DistanceOracle, String> {
        let mut codes = Vec::with_capacity(columns.len());
        let mut tables = Vec::with_capacity(columns.len());
        for (attr, col) in columns.into_iter().enumerate() {
            match col {
                ColumnSnapshot::Numeric => {
                    codes.push(Vec::new());
                    tables.push(ColumnTable::Numeric);
                }
                ColumnSnapshot::Direct => {
                    codes.push(Vec::new());
                    tables.push(ColumnTable::Direct);
                }
                ColumnSnapshot::Matrix { dict, data, codes: col_codes } => {
                    let k = dict.len();
                    if k as u64 >= DIRECT_CODE as u64 {
                        return Err(format!("column {attr}: dictionary too large ({k})"));
                    }
                    if data.len() != k * k {
                        return Err(format!(
                            "column {attr}: matrix holds {} entries for {k} values",
                            data.len()
                        ));
                    }
                    let mut index = HashMap::with_capacity(k);
                    for (code, value) in dict.into_iter().enumerate() {
                        if index.insert(value, code as u32).is_some() {
                            return Err(format!(
                                "column {attr}: duplicate dictionary value"
                            ));
                        }
                    }
                    for &c in &col_codes {
                        if (c as usize) >= k && c != NULL_CODE && c != DIRECT_CODE {
                            return Err(format!("column {attr}: row code {c} out of range"));
                        }
                    }
                    codes.push(col_codes);
                    tables.push(ColumnTable::Matrix { index, dict_len: k, data });
                }
            }
        }
        Ok(DistanceOracle { codes, tables, stats: None })
    }
}

/// Read-only view of a matrix-encoded text column: per-row dictionary
/// status plus O(1) code-to-code distances. See
/// [`DistanceOracle::matrix_view`].
pub struct MatrixView<'a> {
    codes: &'a [u32],
    dict_len: usize,
    data: &'a [f32],
}

impl MatrixView<'_> {
    /// Number of distinct values in the dictionary.
    pub fn dict_len(&self) -> usize {
        self.dict_len
    }

    /// Dictionary status of one relation row.
    #[inline]
    pub fn code(&self, row: usize) -> RowCode {
        match self.codes[row] {
            NULL_CODE => RowCode::Null,
            DIRECT_CODE => RowCode::Foreign,
            c => RowCode::Code(c),
        }
    }

    /// Distance between two dictionary codes — the same value the
    /// matrix-backed [`DistanceOracle::distance`] answers for rows
    /// carrying those codes.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> f64 {
        self.data[a as usize * self.dict_len + b as usize] as f64
    }
}

/// Portable snapshot of one oracle column, exposed so higher layers can
/// serialize the oracle (the model-artifact format in `renuver-serve`).
/// Matrix data is row-major `dict.len() × dict.len()`, `codes` holds one
/// entry per relation row (`u32::MAX` = missing, `u32::MAX - 1` = value
/// outside the dictionary).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSnapshot {
    /// Numeric / boolean column: distances computed directly, no state.
    Numeric,
    /// Text column answered without a cache (over-cap dictionary, huge
    /// values, or budget-degraded build).
    Direct,
    /// Dictionary-encoded text column with its distance matrix.
    Matrix {
        /// Code → value.
        dict: Vec<String>,
        /// Row-major distance matrix.
        data: Vec<f32>,
        /// Per-row codes (see enum docs for the sentinels).
        codes: Vec<u32>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::Schema;

    fn sample() -> Relation {
        let schema = Schema::new([
            ("Name", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        Relation::new(
            schema,
            vec![
                vec!["Granita".into(), Value::Int(6)],
                vec!["Granitas".into(), Value::Int(5)],
                vec![Value::Null, Value::Int(7)],
                vec!["Granita".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn matrix_matches_direct_computation() {
        let rel = sample();
        let cached = DistanceOracle::build(&rel, 1024);
        let direct = DistanceOracle::direct(&rel);
        for attr in 0..rel.arity() {
            for i in 0..rel.len() {
                for j in 0..rel.len() {
                    assert_eq!(
                        cached.distance(&rel, attr, i, j),
                        direct.distance(&rel, attr, i, j),
                        "attr {attr} pair ({i},{j})"
                    );
                    assert_eq!(
                        cached.distance(&rel, attr, i, j),
                        value_distance(rel.value(i, attr), rel.value(j, attr)),
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_values_share_codes() {
        let rel = sample();
        let oracle = DistanceOracle::build(&rel, 1024);
        assert_eq!(oracle.distance(&rel, 0, 0, 3), Some(0.0));
        assert_eq!(oracle.distance(&rel, 0, 0, 1), Some(1.0));
    }

    #[test]
    fn nulls_are_none() {
        let rel = sample();
        let oracle = DistanceOracle::build(&rel, 1024);
        assert_eq!(oracle.distance(&rel, 0, 0, 2), None);
        assert_eq!(oracle.distance(&rel, 1, 2, 3), None);
    }

    #[test]
    fn over_cap_columns_fall_back_to_direct() {
        let rel = sample();
        let oracle = DistanceOracle::build(&rel, 1); // cap below dict size
        assert_eq!(oracle.distance(&rel, 0, 0, 1), Some(1.0));
    }

    #[test]
    fn over_cap_column_full_query_surface() {
        // The over-cap fallback (ColumnTable::Direct) leaves the column's
        // code vector empty — that must stay consistent: every query path
        // computes directly and `update_cell` must be a no-op that doesn't
        // index into the empty codes.
        let mut rel = sample();
        let mut oracle = DistanceOracle::build(&rel, 1);
        let direct = DistanceOracle::direct(&rel);
        for i in 0..rel.len() {
            for j in 0..rel.len() {
                assert_eq!(
                    oracle.distance(&rel, 0, i, j),
                    direct.distance(&rel, 0, i, j),
                    "pair ({i},{j})"
                );
            }
        }
        // Bounded lookups go through the banded kernel, not a matrix.
        assert_eq!(oracle.distance_bounded(&rel, 0, 0, 1, 1.0), Some(1.0));
        assert_eq!(oracle.distance_bounded(&rel, 0, 0, 1, 0.5), None);
        assert_eq!(oracle.distance_bounded(&rel, 0, 0, 2, 5.0), None); // null side
        // An imputation on the Direct column must not panic and must be
        // visible to subsequent queries (they read the relation directly).
        rel.set_value(2, 0, "Granita".into());
        oracle.update_cell(&rel, 2, 0);
        assert_eq!(oracle.distance(&rel, 0, 0, 2), Some(0.0));
        assert_eq!(oracle.distance_bounded(&rel, 0, 1, 2, 1.0), Some(1.0));
    }

    #[test]
    fn update_cell_tracks_imputation() {
        let mut rel = sample();
        let mut oracle = DistanceOracle::build(&rel, 1024);
        // Impute the null Name with an existing value.
        rel.set_value(2, 0, "Granitas".into());
        oracle.update_cell(&rel, 2, 0);
        assert_eq!(oracle.distance(&rel, 0, 0, 2), Some(1.0));
        // A foreign value falls back to direct computation.
        rel.set_value(2, 0, "Fenix".into());
        oracle.update_cell(&rel, 2, 0);
        assert_eq!(
            oracle.distance(&rel, 0, 0, 2),
            value_distance(&"Granita".into(), &"Fenix".into())
        );
        // Back to null.
        rel.set_value(2, 0, Value::Null);
        oracle.update_cell(&rel, 2, 0);
        assert_eq!(oracle.distance(&rel, 0, 0, 2), None);
    }

    #[test]
    fn bounded_filters() {
        let rel = sample();
        let oracle = DistanceOracle::build(&rel, 1024);
        assert_eq!(oracle.distance_bounded(&rel, 0, 0, 1, 1.0), Some(1.0));
        assert_eq!(oracle.distance_bounded(&rel, 0, 0, 1, 0.5), None);
    }

    #[test]
    fn tripped_budget_degrades_to_direct_with_identical_answers() {
        let rel = sample();
        let budget = Budget::unlimited().with_ops_limit(0);
        let degraded = DistanceOracle::build_budgeted(&rel, 1024, &budget);
        let reference = DistanceOracle::build(&rel, 1024);
        for attr in 0..rel.arity() {
            for i in 0..rel.len() {
                for j in 0..rel.len() {
                    assert_eq!(
                        degraded.distance(&rel, attr, i, j),
                        reference.distance(&rel, attr, i, j),
                        "attr {attr} pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn traced_build_counts_hits_and_emits_column_events() {
        let rel = sample();
        let tracer = Tracer::enabled();
        let oracle = DistanceOracle::build_traced(&rel, 1024, &Budget::unlimited(), &tracer);
        let stats = OracleStats::register(&tracer.metrics());
        let _ = oracle.distance(&rel, 0, 0, 1); // matrix hit
        let _ = oracle.distance(&rel, 1, 0, 1); // numeric → direct
        let _ = oracle.distance_bounded(&rel, 0, 0, 1, 5.0); // matrix hit
        assert_eq!(stats.matrix_hits.get(), 2);
        assert_eq!(stats.direct_calls.get(), 1);
        let records = tracer.records();
        let columns: Vec<_> = records.iter().filter(|r| r.kind == "oracle_column").collect();
        assert_eq!(columns.len(), rel.arity());
        assert!(records.iter().any(|r| r.kind == "span"));
        // Untraced builds must not count: the differential suites compare
        // traced-off runs and the branch must stay inert.
        let untraced = DistanceOracle::build(&rel, 1024);
        let _ = untraced.distance(&rel, 0, 0, 1);
        assert_eq!(stats.matrix_hits.get(), 2);
    }

    #[test]
    fn huge_values_never_enter_a_matrix() {
        // A megabyte-scale cell must not trigger an O(len²) matrix fill;
        // the column degrades to the banded direct kernel, which respects
        // the query bound.
        let schema = Schema::new([("Blob", AttrType::Text)]).unwrap();
        let big = "x".repeat(1 << 20);
        let rel = Relation::new(
            schema,
            vec![vec![big.clone().into()], vec![format!("{big}y").into()]],
        )
        .unwrap();
        let oracle = DistanceOracle::build(&rel, 1024);
        assert_eq!(oracle.distance_bounded(&rel, 0, 0, 1, 2.0), Some(1.0));
        assert_eq!(oracle.distance_bounded(&rel, 0, 0, 1, 0.5), None);
    }

    #[test]
    fn appended_rows_answer_like_a_rebuild() {
        let mut rel = sample();
        let mut oracle = DistanceOracle::build(&rel, 1024);
        let base = rel.len();
        // One value already in the dictionary, one foreign, one null.
        rel.push(vec!["Granitas".into(), Value::Int(9)]).unwrap();
        rel.push(vec!["Fenix".into(), Value::Int(2)]).unwrap();
        rel.push(vec![Value::Null, Value::Int(1)]).unwrap();
        for row in base..rel.len() {
            oracle.append_row(&rel, row);
        }
        let rebuilt = DistanceOracle::build(&rel, 1024);
        for attr in 0..rel.arity() {
            for i in 0..rel.len() {
                for j in 0..rel.len() {
                    assert_eq!(
                        oracle.distance(&rel, attr, i, j),
                        rebuilt.distance(&rel, attr, i, j),
                        "attr {attr} pair ({i},{j})"
                    );
                    for max in [0.5, 1.0, 4.0] {
                        assert_eq!(
                            oracle.distance_bounded(&rel, attr, i, j, max),
                            rebuilt.distance_bounded(&rel, attr, i, j, max),
                        );
                    }
                }
            }
        }
        // Rolling the batch back restores the original per-row state.
        oracle.truncate_rows(base);
        rel.truncate(base);
        let fresh = DistanceOracle::build(&rel, 1024);
        for attr in 0..rel.arity() {
            for i in 0..rel.len() {
                for j in 0..rel.len() {
                    assert_eq!(
                        oracle.distance(&rel, attr, i, j),
                        fresh.distance(&rel, attr, i, j),
                    );
                }
            }
        }
    }

    #[test]
    fn commit_rows_is_bit_identical_to_rebuild() {
        let mut rel = sample();
        let mut oracle = DistanceOracle::build(&rel, 1024);
        let base = rel.len();
        // Known value, two occurrences of one new value, a second new
        // value, and a null — the full interning surface.
        rel.push(vec!["Granita".into(), Value::Int(3)]).unwrap();
        rel.push(vec!["Fenix".into(), Value::Int(4)]).unwrap();
        rel.push(vec!["Fenix".into(), Value::Null]).unwrap();
        rel.push(vec!["Spago".into(), Value::Int(8)]).unwrap();
        rel.push(vec![Value::Null, Value::Int(9)]).unwrap();
        for row in base..rel.len() {
            oracle.append_row(&rel, row);
        }
        let grown = oracle.commit_rows(&rel, base, 1024);
        assert_eq!(grown, 2, "Fenix and Spago enter the dictionary once each");
        let rebuilt = DistanceOracle::build(&rel, 1024);
        assert_eq!(oracle.to_snapshot(), rebuilt.to_snapshot());
        // Committing again with nothing appended is a no-op.
        assert_eq!(oracle.commit_rows(&rel, rel.len(), 1024), 0);
        assert_eq!(oracle.to_snapshot(), rebuilt.to_snapshot());
    }

    #[test]
    fn commit_rows_degrades_over_cap_exactly_like_rebuild() {
        let mut rel = sample();
        let mut oracle = DistanceOracle::build(&rel, 3);
        let base = rel.len();
        // The base dictionary holds 2 values; two more breach a cap of 3.
        rel.push(vec!["Fenix".into(), Value::Int(1)]).unwrap();
        rel.push(vec!["Spago".into(), Value::Int(2)]).unwrap();
        for row in base..rel.len() {
            oracle.append_row(&rel, row);
        }
        oracle.commit_rows(&rel, base, 3);
        let rebuilt = DistanceOracle::build(&rel, 3);
        assert_eq!(oracle.to_snapshot(), rebuilt.to_snapshot());
        assert!(matches!(oracle.to_snapshot()[0], ColumnSnapshot::Direct));
        // Degraded columns still answer every query correctly.
        let direct = DistanceOracle::direct(&rel);
        for i in 0..rel.len() {
            for j in 0..rel.len() {
                assert_eq!(
                    oracle.distance(&rel, 0, i, j),
                    direct.distance(&rel, 0, i, j)
                );
            }
        }
    }

    #[test]
    fn commit_rows_degrades_on_huge_values_exactly_like_rebuild() {
        let mut rel = sample();
        let mut oracle = DistanceOracle::build(&rel, 1024);
        let base = rel.len();
        rel.push(vec![Value::Text("x".repeat(MAX_MATRIX_VALUE_CHARS + 1)), Value::Int(1)])
            .unwrap();
        oracle.append_row(&rel, base);
        oracle.commit_rows(&rel, base, 1024);
        let rebuilt = DistanceOracle::build(&rel, 1024);
        assert_eq!(oracle.to_snapshot(), rebuilt.to_snapshot());
        assert!(matches!(oracle.to_snapshot()[0], ColumnSnapshot::Direct));
    }

    #[test]
    fn snapshot_round_trip_preserves_answers() {
        let rel = sample();
        let mut original = DistanceOracle::build(&rel, 1024);
        // A direct (over-cap) column must round-trip too.
        let restored = DistanceOracle::from_snapshot(original.to_snapshot()).unwrap();
        for attr in 0..rel.arity() {
            for i in 0..rel.len() {
                for j in 0..rel.len() {
                    assert_eq!(
                        original.distance(&rel, attr, i, j),
                        restored.distance(&rel, attr, i, j),
                    );
                }
            }
        }
        // Snapshots capture post-update codes (foreign values included).
        let mut rel2 = rel.clone();
        rel2.set_value(3, 0, "Outsider".into());
        original.update_cell(&rel2, 3, 0);
        let restored2 = DistanceOracle::from_snapshot(original.to_snapshot()).unwrap();
        assert_eq!(
            original.distance(&rel2, 0, 3, 0),
            restored2.distance(&rel2, 0, 3, 0)
        );
    }

    #[test]
    fn corrupt_snapshots_are_typed_errors() {
        let rel = sample();
        let oracle = DistanceOracle::build(&rel, 1024);
        // Matrix shape mismatch.
        let mut snap = oracle.to_snapshot();
        if let ColumnSnapshot::Matrix { data, .. } = &mut snap[0] {
            data.pop();
        }
        assert!(DistanceOracle::from_snapshot(snap).err().unwrap().contains("matrix"));
        // Out-of-range row code.
        let mut snap = oracle.to_snapshot();
        if let ColumnSnapshot::Matrix { codes, .. } = &mut snap[0] {
            codes[0] = 9999;
        }
        assert!(DistanceOracle::from_snapshot(snap).err().unwrap().contains("out of range"));
        // Duplicate dictionary value.
        let mut snap = oracle.to_snapshot();
        if let ColumnSnapshot::Matrix { dict, .. } = &mut snap[0] {
            dict[1] = dict[0].clone();
        }
        assert!(DistanceOracle::from_snapshot(snap).err().unwrap().contains("duplicate"));
    }
}
