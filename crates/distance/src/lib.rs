//! Distance functions and tuple distance patterns.
//!
//! RFD_c constraints compare attribute values through domain-appropriate
//! distance functions (paper Section 5.3): **edit distance** for text,
//! **absolute difference** for numbers, and the **equality constraint**
//! (0 / 1) for booleans. This crate implements those functions, the
//! per-tuple-pair [`pattern::DistancePattern`] (Definition 5.4), and small
//! pairwise-computation helpers used by RFD discovery.

pub mod extra;
pub mod functions;
pub mod index;
pub mod kernels;
pub mod oracle;
pub mod pattern;

pub use extra::{jaccard_token_distance, jaro_winkler_distance, soundex};
pub use functions::{
    levenshtein, levenshtein_bounded, levenshtein_bounded_scalar, levenshtein_scalar,
    value_distance, value_distance_bounded,
};
pub use index::{intersect_sorted, union_sorted, AttrSnapshot, SimilarityIndex};
pub use kernels::{myers_levenshtein, myers_levenshtein_bounded, MyersPattern};
pub use oracle::{ColumnSnapshot, DistanceOracle, MatrixView, RowCode, DEFAULT_DICT_CAP};
pub use pattern::DistancePattern;
