//! Denial-constraint model: pairwise predicates and their conjunctions.

use std::fmt;

use renuver_data::{AttrId, Schema, Value};

/// Comparison operator of a pairwise predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `t1[A] = t2[A]`
    Eq,
    /// `t1[A] ≠ t2[A]`
    Neq,
    /// `t1[A] < t2[A]` (numeric attributes only)
    Lt,
    /// `t1[A] ≤ t2[A]` (numeric attributes only)
    Le,
    /// `t1[A] > t2[A]` (numeric attributes only)
    Gt,
    /// `t1[A] ≥ t2[A]` (numeric attributes only)
    Ge,
}

impl Op {
    /// The symbol used in the conventional DC notation.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Neq => "≠",
            Op::Lt => "<",
            Op::Le => "≤",
            Op::Gt => ">",
            Op::Ge => "≥",
        }
    }

    /// Negation, used to read a violated pair as a repair hint.
    pub fn negate(self) -> Op {
        match self {
            Op::Eq => Op::Neq,
            Op::Neq => Op::Eq,
            Op::Lt => Op::Ge,
            Op::Le => Op::Gt,
            Op::Gt => Op::Le,
            Op::Ge => Op::Lt,
        }
    }
}

/// A single-attribute pairwise predicate `t1[attr] op t2[attr]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The compared attribute.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: Op,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(attr: AttrId, op: Op) -> Self {
        Predicate { attr, op }
    }

    /// Evaluates the predicate on a pair of values. A predicate over a
    /// missing value is unsatisfied (it cannot witness anything).
    pub fn eval(&self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self.op {
            Op::Eq => a == b,
            Op::Neq => a != b,
            op => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => match op {
                    Op::Lt => x < y,
                    Op::Le => x <= y,
                    Op::Gt => x > y,
                    Op::Ge => x >= y,
                    _ => unreachable!(),
                },
                _ => false,
            },
        }
    }
}

/// A denial constraint: `∀ t1 ≠ t2 : ¬(p1 ∧ … ∧ pk)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenialConstraint {
    predicates: Vec<Predicate>,
}

impl DenialConstraint {
    /// Builds a DC from its predicate conjunction.
    ///
    /// # Panics
    /// Panics on an empty predicate list (it would forbid every pair).
    pub fn new(mut predicates: Vec<Predicate>) -> Self {
        assert!(!predicates.is_empty(), "a DC needs at least one predicate");
        predicates.sort_by_key(|p| (p.attr, p.op.symbol()));
        DenialConstraint { predicates }
    }

    /// The predicate conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// `true` iff the ordered pair `(t1, t2)` satisfies every predicate —
    /// i.e. violates the constraint.
    pub fn pair_violates(&self, t1: &[Value], t2: &[Value]) -> bool {
        self.predicates
            .iter()
            .all(|p| p.eval(&t1[p.attr], &t2[p.attr]))
    }

    /// Renders in the conventional notation, e.g.
    /// `¬(t1.City = t2.City ∧ t1.Class ≠ t2.Class)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DcDisplay<'a> {
        DcDisplay { dc: self, schema }
    }

    /// Parses the notation produced by [`DenialConstraint::display`].
    /// ASCII spellings are accepted too: `!(...)` for `¬(...)`, `&` or
    /// `and` for `∧`, and `!=`, `<=`, `>=` for `≠`, `≤`, `≥`.
    ///
    /// # Errors
    /// Returns a human-readable message for malformed input or unknown
    /// attribute names.
    pub fn parse(s: &str, schema: &Schema) -> Result<DenialConstraint, String> {
        let s = s.trim();
        let body = s
            .strip_prefix('¬')
            .or_else(|| s.strip_prefix('!'))
            .ok_or_else(|| format!("DC must start with '¬(' or '!(': {s:?}"))?
            .trim();
        let body = body
            .strip_prefix('(')
            .and_then(|b| b.strip_suffix(')'))
            .ok_or_else(|| format!("unbalanced parentheses in DC {s:?}"))?;
        let mut predicates = Vec::new();
        for conjunct in body.split(['∧', '&']).flat_map(|c| c.split(" and ")) {
            let conjunct = conjunct.trim();
            if conjunct.is_empty() {
                continue;
            }
            predicates.push(parse_predicate(conjunct, schema)?);
        }
        if predicates.is_empty() {
            return Err(format!("empty DC {s:?}"));
        }
        Ok(DenialConstraint::new(predicates))
    }
}

/// Parses one `t1.Attr op t2.Attr` predicate.
fn parse_predicate(s: &str, schema: &Schema) -> Result<Predicate, String> {
    // Longest operators first so `!=` is not read as `!` `=`.
    const OPS: [(&str, Op); 10] = [
        ("!=", Op::Neq),
        ("≠", Op::Neq),
        ("<=", Op::Le),
        ("≤", Op::Le),
        (">=", Op::Ge),
        ("≥", Op::Ge),
        ("=", Op::Eq),
        ("<", Op::Lt),
        (">", Op::Gt),
        ("==", Op::Eq),
    ];
    for (sym, op) in OPS {
        if let Some((lhs, rhs)) = s.split_once(sym) {
            let name_of = |side: &str, tag: &str| -> Result<String, String> {
                let side = side.trim();
                side.strip_prefix(tag)
                    .and_then(|r| r.strip_prefix('.'))
                    .map(|n| n.trim().to_owned())
                    .ok_or_else(|| format!("expected '{tag}.<attr>', got {side:?}"))
            };
            let l = name_of(lhs, "t1")?;
            let r = name_of(rhs, "t2")?;
            if l != r {
                return Err(format!(
                    "cross-attribute predicates are unsupported: {l:?} vs {r:?}"
                ));
            }
            let attr = schema
                .index_of(&l)
                .ok_or_else(|| format!("unknown attribute {l:?}"))?;
            return Ok(Predicate::new(attr, op));
        }
    }
    Err(format!("no comparison operator in predicate {s:?}"))
}

/// Serializes a DC list, one constraint per line.
pub fn dcs_to_text(dcs: &[DenialConstraint], schema: &Schema) -> String {
    let mut out = String::new();
    for dc in dcs {
        out.push_str(&dc.display(schema).to_string());
        out.push('\n');
    }
    out
}

/// Parses a DC list serialized with [`dcs_to_text`]; blank lines and `#`
/// comments are skipped.
pub fn dcs_from_text(text: &str, schema: &Schema) -> Result<Vec<DenialConstraint>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(DenialConstraint::parse(line, schema)?);
    }
    Ok(out)
}

/// Display adapter binding a [`DenialConstraint`] to a [`Schema`].
pub struct DcDisplay<'a> {
    dc: &'a DenialConstraint,
    schema: &'a Schema,
}

impl fmt::Display for DcDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "¬(")?;
        for (i, p) in self.dc.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            let name = self.schema.name(p.attr);
            write!(f, "t1.{name} {} t2.{name}", p.op.symbol())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::AttrType;

    #[test]
    fn predicate_eval() {
        let eq = Predicate::new(0, Op::Eq);
        assert!(eq.eval(&Value::Int(3), &Value::Int(3)));
        assert!(!eq.eval(&Value::Int(3), &Value::Int(4)));
        assert!(!eq.eval(&Value::Null, &Value::Int(3)));

        let lt = Predicate::new(0, Op::Lt);
        assert!(lt.eval(&Value::Int(1), &Value::Float(1.5)));
        assert!(!lt.eval(&Value::Int(2), &Value::Int(2)));
        // Ordering ops on non-numeric values are unsatisfied.
        assert!(!lt.eval(&Value::Text("a".into()), &Value::Text("b".into())));

        let neq = Predicate::new(0, Op::Neq);
        assert!(neq.eval(&Value::Text("a".into()), &Value::Text("b".into())));
        assert!(!neq.eval(&Value::Null, &Value::Null));
    }

    #[test]
    fn op_negation_round_trips() {
        for op in [Op::Eq, Op::Neq, Op::Lt, Op::Le, Op::Gt, Op::Ge] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn dc_pair_violation() {
        // ¬(t1.A = t2.A ∧ t1.B ≠ t2.B): A determines B.
        let dc = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Neq),
        ]);
        let t1 = vec![Value::Int(1), Value::Int(10)];
        let t2 = vec![Value::Int(1), Value::Int(20)];
        let t3 = vec![Value::Int(1), Value::Int(10)];
        assert!(dc.pair_violates(&t1, &t2));
        assert!(!dc.pair_violates(&t1, &t3));
    }

    #[test]
    fn display_notation() {
        let schema = Schema::new([("City", AttrType::Text), ("Class", AttrType::Int)]).unwrap();
        let dc = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Neq),
        ]);
        assert_eq!(
            dc.display(&schema).to_string(),
            "¬(t1.City = t2.City ∧ t1.Class ≠ t2.Class)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn empty_dc_panics() {
        let _ = DenialConstraint::new(vec![]);
    }

    #[test]
    fn parse_round_trips_display() {
        let schema = Schema::new([
            ("City", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        let dc = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Gt),
        ]);
        let text = dc.display(&schema).to_string();
        assert_eq!(DenialConstraint::parse(&text, &schema).unwrap(), dc);
        // ASCII spelling.
        let ascii = "!(t1.City = t2.City & t1.Class > t2.Class)";
        assert_eq!(DenialConstraint::parse(ascii, &schema).unwrap(), dc);
        let worded = "!(t1.City = t2.City and t1.Class > t2.Class)";
        assert_eq!(DenialConstraint::parse(worded, &schema).unwrap(), dc);
    }

    #[test]
    fn parse_rejects_malformed() {
        let schema = Schema::new([("A", AttrType::Int)]).unwrap();
        for bad in [
            "t1.A = t2.A",             // missing negation wrapper
            "!(t1.A = t2.A",           // unbalanced
            "!()",                     // empty
            "!(t1.A ~ t2.A)",          // unknown operator
            "!(t1.B = t2.B)",          // unknown attribute
            "!(t1.A = t2.Other)",      // cross-attribute
            "!(x.A = t2.A)",           // bad tuple tag
        ] {
            assert!(DenialConstraint::parse(bad, &schema).is_err(), "{bad}");
        }
    }

    #[test]
    fn dc_list_text_round_trip() {
        let schema = Schema::new([
            ("City", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        let dcs = vec![
            DenialConstraint::new(vec![
                Predicate::new(0, Op::Eq),
                Predicate::new(1, Op::Neq),
            ]),
            DenialConstraint::new(vec![Predicate::new(1, Op::Lt), Predicate::new(0, Op::Eq)]),
        ];
        let text = dcs_to_text(&dcs, &schema);
        let back = dcs_from_text(&text, &schema).unwrap();
        assert_eq!(back, dcs);
        // Comments and blanks tolerated.
        let with_comments = format!("# header\n\n{text}");
        assert_eq!(dcs_from_text(&with_comments, &schema).unwrap(), dcs);
    }
}
