//! Denial constraints: model, checking, and evidence-set discovery.
//!
//! A denial constraint (DC) forbids a conjunction of predicates over tuple
//! pairs: `∀ t1 ≠ t2 : ¬(p1 ∧ … ∧ pk)`, with predicates like
//! `t1.City = t2.City` or `t1.Class > t2.Class`. The Holoclean baseline
//! (paper ref. \[20\]) consumes DCs as integrity features; the paper obtains
//! them with the automatic discovery of refs \[2, 9\] (Hydra / FastDC). This
//! crate implements the same pipeline at small scale:
//!
//! - [`model`] — predicates and constraints over a schema;
//! - [`check`] — violation detection for tuple pairs and whole instances;
//! - [`discovery`] — evidence-set based discovery: compute the satisfied
//!   predicate set of every tuple pair, then search for minimal predicate
//!   sets not contained in any evidence set (exactly the FastDC
//!   formulation, with a bitset representation and a size-bounded
//!   level-wise search).

pub mod check;
pub mod discovery;
pub mod model;

pub use check::{holds, violating_pairs};
pub use discovery::{discover_dcs, DcDiscoveryConfig};
pub use model::{dcs_from_text, dcs_to_text, DenialConstraint, Op, Predicate};
