//! Evidence-set based DC discovery (FastDC-style, refs [2, 9]).
//!
//! For every ordered tuple pair, compute the **evidence set**: the set of
//! predicates the pair satisfies, represented as a bitset over the
//! predicate universe. A predicate conjunction `P` is a valid DC iff `P` is
//! not a subset of any evidence set (no pair satisfies all of `P`); the
//! interesting DCs are the **minimal** such sets. Discovery deduplicates
//! evidence sets, then runs a size-bounded level-wise search with
//! superset pruning.

use std::collections::HashSet;

use renuver_data::Relation;

use crate::model::{DenialConstraint, Op, Predicate};

/// Configuration for [`discover_dcs`].
#[derive(Debug, Clone)]
pub struct DcDiscoveryConfig {
    /// Maximum predicates per constraint.
    pub max_predicates: usize,
    /// Cap on the number of (ordered) tuple pairs examined; larger
    /// instances are sampled deterministically.
    pub max_pairs: usize,
    /// Drop trivially wide constraints: a DC whose predicate set is
    /// satisfied by no *sampled* pair but is a superset of another valid DC
    /// is never emitted; this additionally drops single-predicate DCs of
    /// the form `¬(t1.A ≠ t2.A)` (constant columns) when `false`.
    pub keep_single_predicate: bool,
    /// Cap on the number of constraints returned, most general (fewest
    /// predicates) first. The paper's DC sets are small (9 on Restaurant,
    /// 74 on Physician); numeric-heavy data would otherwise emit thousands
    /// of ordering constraints that drown the Holoclean baseline.
    pub max_dcs: usize,
}

impl Default for DcDiscoveryConfig {
    fn default() -> Self {
        DcDiscoveryConfig {
            max_predicates: 3,
            max_pairs: 200_000,
            keep_single_predicate: false,
            max_dcs: 100,
        }
    }
}

/// Builds the predicate universe for a schema: `=` and `≠` on every
/// attribute, plus `<` and `>` on numeric attributes (`≤`/`≥` are their
/// pair-complements together with `=` and add little at this scale).
pub fn predicate_space(rel: &Relation) -> Vec<Predicate> {
    let mut out = Vec::new();
    for a in rel.schema().attr_ids() {
        out.push(Predicate::new(a, Op::Eq));
        out.push(Predicate::new(a, Op::Neq));
        if rel.schema().ty(a).is_numeric() {
            out.push(Predicate::new(a, Op::Lt));
            out.push(Predicate::new(a, Op::Gt));
        }
    }
    out
}

/// Discovers minimal denial constraints holding on (a sample of) `rel`.
pub fn discover_dcs(rel: &Relation, cfg: &DcDiscoveryConfig) -> Vec<DenialConstraint> {
    let preds = predicate_space(rel);
    assert!(preds.len() <= 128, "predicate space exceeds bitset width");
    let n = rel.len();
    if n < 2 {
        return Vec::new();
    }

    // Evidence sets over ordered pairs, deduplicated.
    let mut evidence: HashSet<u128> = HashSet::new();
    let total_pairs = n * (n - 1);
    let eval_pair = |i: usize, j: usize, evidence: &mut HashSet<u128>| {
        let (t1, t2) = (rel.tuple(i), rel.tuple(j));
        let mut bits = 0u128;
        for (k, p) in preds.iter().enumerate() {
            if p.eval(&t1[p.attr], &t2[p.attr]) {
                bits |= 1 << k;
            }
        }
        evidence.insert(bits);
    };
    if total_pairs <= cfg.max_pairs {
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    eval_pair(i, j, &mut evidence);
                }
            }
        }
    } else {
        // Deterministic sampling via a splitmix-style walk.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..cfg.max_pairs {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % n;
            let j = {
                let j = (state & 0xFFFF_FFFF) as usize % (n - 1);
                if j >= i {
                    j + 1
                } else {
                    j
                }
            };
            eval_pair(i, j, &mut evidence);
        }
    }
    let evidence: Vec<u128> = evidence.into_iter().collect();

    // Level-wise search for minimal uncovered predicate sets.
    let mut found: Vec<u128> = Vec::new();
    let mut level: Vec<u128> = Vec::new();
    // Never combine two predicates on the same attribute: conjunctions like
    // `A = ∧ A <` are contradictions (valid but vacuous DCs).
    let attr_of: Vec<usize> = preds.iter().map(|p| p.attr).collect();

    // Level 1. Valid singles always enter `found` so that their supersets
    // are pruned as non-minimal; they are filtered from the output below
    // unless configured otherwise.
    for k in 0..preds.len() {
        let set = 1u128 << k;
        if is_valid(set, &evidence) {
            found.push(set);
        } else {
            level.push(set);
        }
    }

    for _size in 2..=cfg.max_predicates {
        let mut next: Vec<u128> = Vec::new();
        let mut seen: HashSet<u128> = HashSet::new();
        for &set in &level {
            let max_bit = 127 - set.leading_zeros() as usize;
            for k in (max_bit + 1)..preds.len() {
                // Skip same-attribute combinations.
                let attr_k = attr_of[k];
                if (0..preds.len())
                    .any(|b| set & (1 << b) != 0 && attr_of[b] == attr_k)
                {
                    continue;
                }
                let bigger = set | (1 << k);
                if !seen.insert(bigger) {
                    continue;
                }
                // Superset of an already-found DC → non-minimal. (Not a
                // `contains` despite clippy's pattern match: `f` is the
                // *element*, and the test is subset inclusion.)
                #[allow(clippy::manual_contains)]
                if found.iter().any(|&f| f & bigger == f) {
                    continue;
                }
                if is_valid(bigger, &evidence) {
                    found.push(bigger);
                } else {
                    next.push(bigger);
                }
            }
        }
        level = next;
    }

    found.sort_by_key(|set| set.count_ones());
    found
        .into_iter()
        .filter(|set| cfg.keep_single_predicate || set.count_ones() > 1)
        .take(cfg.max_dcs)
        .map(|set| {
            DenialConstraint::new(
                preds
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| set & (1 << k) != 0)
                    .map(|(_, p)| *p)
                    .collect(),
            )
        })
        .collect()
}

/// A predicate set is a valid DC iff it is not covered by any evidence set.
#[inline]
fn is_valid(set: u128, evidence: &[u128]) -> bool {
    evidence.iter().all(|&e| e & set != set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema, Value};

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(
            schema,
            rows.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn predicate_space_by_type() {
        let schema = Schema::new([("T", AttrType::Text), ("N", AttrType::Int)]).unwrap();
        let r = Relation::empty(schema);
        let space = predicate_space(&r);
        // Text: =, ≠; numeric: =, ≠, <, >.
        assert_eq!(space.len(), 6);
    }

    #[test]
    fn discovers_fd_as_dc() {
        // A determines B: the DC ¬(A= ∧ B≠) must be found.
        let r = rel(&[(1, 10), (1, 10), (2, 20), (2, 20), (3, 30)]);
        let dcs = discover_dcs(&r, &DcDiscoveryConfig::default());
        let fd = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Neq),
        ]);
        assert!(dcs.contains(&fd), "expected {fd:?} in {dcs:?}");
        // Everything discovered actually holds.
        for dc in &dcs {
            assert!(crate::check::holds(&r, dc), "spurious DC {dc:?}");
        }
    }

    #[test]
    fn no_fd_dc_on_contradicting_data() {
        let r = rel(&[(1, 10), (1, 20)]);
        let dcs = discover_dcs(&r, &DcDiscoveryConfig::default());
        let fd = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Neq),
        ]);
        assert!(!dcs.contains(&fd));
    }

    #[test]
    fn minimality_no_dc_contains_another() {
        let r = rel(&[(1, 10), (1, 10), (2, 20), (3, 15), (4, 40)]);
        let dcs = discover_dcs(&r, &DcDiscoveryConfig::default());
        for a in &dcs {
            for b in &dcs {
                if a != b {
                    let a_in_b = a
                        .predicates()
                        .iter()
                        .all(|p| b.predicates().contains(p));
                    assert!(!a_in_b, "{a:?} subsumed by {b:?}");
                }
            }
        }
    }

    #[test]
    fn no_same_attribute_conjunctions() {
        let r = rel(&[(1, 10), (2, 20), (3, 30)]);
        let dcs = discover_dcs(&r, &DcDiscoveryConfig::default());
        for dc in &dcs {
            let mut attrs: Vec<_> = dc.predicates().iter().map(|p| p.attr).collect();
            attrs.sort_unstable();
            attrs.dedup();
            assert_eq!(attrs.len(), dc.predicates().len(), "{dc:?}");
        }
    }

    #[test]
    fn deterministic_under_sampling() {
        let rows: Vec<(i64, i64)> = (0..40).map(|i| (i, i * 2)).collect();
        let r = rel(&rows);
        let cfg = DcDiscoveryConfig { max_pairs: 100, ..DcDiscoveryConfig::default() };
        let a = discover_dcs(&r, &cfg);
        let b = discover_dcs(&r, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_relations() {
        let r = rel(&[(1, 1)]);
        assert!(discover_dcs(&r, &DcDiscoveryConfig::default()).is_empty());
    }

    #[test]
    fn max_dcs_caps_output_most_general_first() {
        let rows: Vec<(i64, i64)> = (0..12).map(|i| (i, i * 3)).collect();
        let r = rel(&rows);
        let full = discover_dcs(&r, &DcDiscoveryConfig::default());
        assert!(full.len() >= 2, "need enough DCs for the cap to bite");
        let capped = discover_dcs(&r, &DcDiscoveryConfig { max_dcs: 1, ..Default::default() });
        assert_eq!(capped.len(), 1);
        // The kept constraints are the most general (fewest predicates).
        let max_kept = capped.iter().map(|d| d.predicates().len()).max().unwrap();
        let min_dropped = full
            .iter()
            .filter(|d| !capped.contains(d))
            .map(|d| d.predicates().len())
            .min()
            .unwrap();
        assert!(max_kept <= min_dropped);
    }

    #[test]
    fn keep_single_predicate_emits_constant_column_dcs() {
        // Column B is constant → ¬(t1.B ≠ t2.B) is a valid single-predicate
        // DC, emitted only on request.
        let r = rel(&[(1, 9), (2, 9), (3, 9)]);
        let without = discover_dcs(&r, &DcDiscoveryConfig::default());
        assert!(without.iter().all(|d| d.predicates().len() > 1));
        let with = discover_dcs(
            &r,
            &DcDiscoveryConfig { keep_single_predicate: true, ..Default::default() },
        );
        let neq_b = DenialConstraint::new(vec![Predicate::new(1, Op::Neq)]);
        assert!(with.contains(&neq_b), "{with:?}");
    }

    #[test]
    fn nulls_do_not_create_spurious_dcs() {
        use renuver_data::Value;
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        // With the null present, the pair (r0, r2) cannot witness anything
        // on B; discovery must still find the A-determines-B constraint
        // from the evaluable pairs.
        let r = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        let dcs = discover_dcs(&r, &DcDiscoveryConfig::default());
        let fd = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Neq),
        ]);
        assert!(dcs.contains(&fd), "{dcs:?}");
        for dc in &dcs {
            assert!(crate::check::holds(&r, dc), "{dc:?}");
        }
    }

    #[test]
    fn ordering_constraints_discovered_on_monotone_data() {
        // B strictly increases with A: ¬(A< ∧ B>) (and its mirror) hold.
        let rows: Vec<(i64, i64)> = (0..10).map(|i| (i, i * 3)).collect();
        let r = rel(&rows);
        let dcs = discover_dcs(&r, &DcDiscoveryConfig::default());
        let monotone = DenialConstraint::new(vec![
            Predicate::new(0, Op::Lt),
            Predicate::new(1, Op::Gt),
        ]);
        assert!(dcs.contains(&monotone), "{dcs:?}");
    }
}
