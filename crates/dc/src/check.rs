//! Violation detection for denial constraints.

use renuver_data::Relation;

use crate::model::DenialConstraint;

/// `true` iff no ordered pair of distinct tuples violates the constraint.
pub fn holds(rel: &Relation, dc: &DenialConstraint) -> bool {
    let n = rel.len();
    for i in 0..n {
        for j in 0..n {
            if i != j && dc.pair_violates(rel.tuple(i), rel.tuple(j)) {
                return false;
            }
        }
    }
    true
}

/// All ordered violating pairs `(i, j)`, `i ≠ j`.
pub fn violating_pairs(rel: &Relation, dc: &DenialConstraint) -> Vec<(usize, usize)> {
    let n = rel.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && dc.pair_violates(rel.tuple(i), rel.tuple(j)) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Number of DC violations tuple `row` participates in against the rest of
/// the instance, across all constraints. This is the penalty feature the
/// Holoclean-style baseline scores candidate values with.
pub fn violations_for_row(rel: &Relation, dcs: &[DenialConstraint], row: usize) -> usize {
    let mut count = 0;
    let t = rel.tuple(row);
    for dc in dcs {
        for j in 0..rel.len() {
            if j == row {
                continue;
            }
            let tj = rel.tuple(j);
            if dc.pair_violates(t, tj) {
                count += 1;
            }
            if dc.pair_violates(tj, t) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Op, Predicate};
    use renuver_data::{AttrType, Schema, Value};

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(
            schema,
            rows.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        )
        .unwrap()
    }

    fn fd_dc() -> DenialConstraint {
        // A determines B: ¬(t1.A = t2.A ∧ t1.B ≠ t2.B).
        DenialConstraint::new(vec![Predicate::new(0, Op::Eq), Predicate::new(1, Op::Neq)])
    }

    #[test]
    fn holds_and_violations() {
        let ok = rel(&[(1, 10), (1, 10), (2, 20)]);
        assert!(holds(&ok, &fd_dc()));
        assert!(violating_pairs(&ok, &fd_dc()).is_empty());

        let bad = rel(&[(1, 10), (1, 20)]);
        assert!(!holds(&bad, &fd_dc()));
        // Both orders violate (≠ is symmetric here).
        assert_eq!(violating_pairs(&bad, &fd_dc()), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn asymmetric_op_ordering() {
        // ¬(t1.A = t2.A ∧ t1.B > t2.B): within equal A, B must not decrease.
        let dc = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Gt),
        ]);
        let r = rel(&[(1, 10), (1, 20)]);
        assert_eq!(violating_pairs(&r, &dc), vec![(1, 0)]);
    }

    #[test]
    fn violations_for_row_counts_both_directions() {
        let bad = rel(&[(1, 10), (1, 20), (1, 30)]);
        // Row 0 conflicts with rows 1 and 2, each in both directions.
        assert_eq!(violations_for_row(&bad, &[fd_dc()], 0), 4);
    }

    #[test]
    fn nulls_cannot_violate() {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let r = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Null],
            ],
        )
        .unwrap();
        assert!(holds(&r, &fd_dc()));
    }
}
