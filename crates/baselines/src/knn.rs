//! Grey-relational kNN imputation (Huang & Lee, paper ref. \[14\]).
//!
//! For an incomplete tuple, every *complete* tuple is scored by its **grey
//! relational grade**: the mean over comparable attributes of the grey
//! relational coefficient
//!
//! ```text
//! GRC(x, y) = (Δmin + ζ·Δmax) / (Δ(x,y) + ζ·Δmax)
//! ```
//!
//! where `Δ` is the per-attribute distance normalized to `\[0, 1\]` by the
//! attribute's observed spread, `Δmin = 0`, `Δmax = 1`, and `ζ` is the
//! distinguishing coefficient (0.5 in the original). The `k` highest-grade
//! neighbours donate: numeric attributes take the grade-weighted mean,
//! categorical attributes the grade-weighted mode.

use renuver_data::{AttrId, AttrType, Relation, Value};
use renuver_distance::functions::value_distance;

/// Configuration for [`GreyKnn`].
#[derive(Debug, Clone)]
pub struct GreyKnnConfig {
    /// Number of neighbours that donate values.
    pub k: usize,
    /// Distinguishing coefficient `ζ` of the grey relational coefficient.
    pub zeta: f64,
}

impl Default for GreyKnnConfig {
    fn default() -> Self {
        GreyKnnConfig { k: 5, zeta: 0.5 }
    }
}

/// The grey-relational kNN imputer.
#[derive(Debug, Clone, Default)]
pub struct GreyKnn {
    config: GreyKnnConfig,
}

impl GreyKnn {
    /// Creates the imputer.
    pub fn new(config: GreyKnnConfig) -> Self {
        GreyKnn { config }
    }

    /// Imputes every missing value it can, returning the repaired relation.
    /// Cells in rows with no scorable neighbour are left missing.
    pub fn impute(&self, rel: &Relation) -> Relation {
        let mut out = rel.clone();
        let spreads = attribute_spreads(rel);
        // Donors are the tuples complete in the original relation.
        let donors: Vec<usize> = (0..rel.len())
            .filter(|&r| rel.tuple(r).iter().all(|v| !v.is_null()))
            .collect();
        if donors.is_empty() {
            return out;
        }
        for row in rel.incomplete_rows() {
            // Grade every donor against this tuple.
            let mut graded: Vec<(f64, usize)> = donors
                .iter()
                .filter_map(|&d| {
                    self.grade(rel, row, d, &spreads).map(|g| (g, d))
                })
                .collect();
            graded.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            graded.truncate(self.config.k);
            if graded.is_empty() {
                continue;
            }
            for attr in 0..rel.arity() {
                if !rel.is_missing(row, attr) {
                    continue;
                }
                let value = match rel.schema().ty(attr) {
                    AttrType::Int => weighted_mean(rel, &graded, attr)
                        .map(|m| Value::Int(m.round() as i64)),
                    AttrType::Float => weighted_mean(rel, &graded, attr).map(Value::from),
                    AttrType::Text | AttrType::Bool => weighted_mode(rel, &graded, attr),
                };
                if let Some(v) = value {
                    out.set_value(row, attr, v);
                }
            }
        }
        out
    }

    /// Grey relational grade between the incomplete tuple `row` and donor
    /// `d`: mean GRC over the attributes present in both. `None` when no
    /// attribute is comparable.
    fn grade(&self, rel: &Relation, row: usize, d: usize, spreads: &[f64]) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (attr, spread) in spreads.iter().enumerate() {
            let Some(dist) = value_distance(rel.value(row, attr), rel.value(d, attr)) else {
                continue;
            };
            let delta = if *spread > 0.0 {
                (dist / spread).min(1.0)
            } else {
                0.0
            };
            sum += (self.config.zeta * 1.0) / (delta + self.config.zeta * 1.0);
            count += 1;
        }
        (count > 0).then(|| sum / count as f64)
    }
}

/// Per-attribute distance normalizers: the maximum observed pairwise
/// distance proxy (numeric: value range; text: longest value length;
/// bool: 1).
fn attribute_spreads(rel: &Relation) -> Vec<f64> {
    (0..rel.arity())
        .map(|attr| match rel.schema().ty(attr) {
            AttrType::Int | AttrType::Float => {
                let vals: Vec<f64> =
                    rel.tuples().filter_map(|t| t[attr].as_f64()).collect();
                match (
                    vals.iter().cloned().fold(f64::INFINITY, f64::min),
                    vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                ) {
                    (lo, hi) if lo.is_finite() && hi > lo => hi - lo,
                    _ => 0.0,
                }
            }
            AttrType::Text => rel
                .tuples()
                .filter_map(|t| t[attr].as_text())
                .map(|s| s.chars().count() as f64)
                .fold(0.0, f64::max),
            AttrType::Bool => 1.0,
        })
        .collect()
}

/// Grade-weighted mean of the donors' values on `attr`.
fn weighted_mean(rel: &Relation, graded: &[(f64, usize)], attr: AttrId) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(g, d) in graded {
        if let Some(v) = rel.value(d, attr).as_f64() {
            num += g * v;
            den += g;
        }
    }
    (den > 0.0).then(|| num / den)
}

/// Grade-weighted mode of the donors' values on `attr`.
fn weighted_mode(rel: &Relation, graded: &[(f64, usize)], attr: AttrId) -> Option<Value> {
    let mut tally: Vec<(Value, f64)> = Vec::new();
    for &(g, d) in graded {
        let v = rel.value(d, attr);
        if v.is_null() {
            continue;
        }
        match tally.iter_mut().find(|(x, _)| x == v) {
            Some((_, w)) => *w += g,
            None => tally.push((v.clone(), g)),
        }
    }
    tally
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.total_cmp(&a.0)))
        .map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::Schema;

    fn numeric_rel(rows: Vec<Vec<Value>>) -> Relation {
        let schema = Schema::new([
            ("A", AttrType::Float),
            ("B", AttrType::Float),
            ("C", AttrType::Float),
        ])
        .unwrap();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn imputes_from_nearest_cluster() {
        // Two clusters; the incomplete tuple clearly belongs to the first.
        let rel = numeric_rel(vec![
            vec![Value::Float(1.0), Value::Float(10.0), Value::Float(100.0)],
            vec![Value::Float(1.1), Value::Float(10.5), Value::Float(101.0)],
            vec![Value::Float(9.0), Value::Float(90.0), Value::Float(900.0)],
            vec![Value::Float(9.1), Value::Float(91.0), Value::Float(905.0)],
            vec![Value::Float(1.05), Value::Float(10.2), Value::Null],
        ]);
        let out = GreyKnn::new(GreyKnnConfig { k: 2, zeta: 0.5 }).impute(&rel);
        let v = out.value(4, 2).as_f64().unwrap();
        assert!((99.0..103.0).contains(&v), "got {v}");
    }

    #[test]
    fn categorical_mode() {
        let schema = Schema::new([("X", AttrType::Float), ("L", AttrType::Text)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Float(1.0), "red".into()],
                vec![Value::Float(1.1), "red".into()],
                vec![Value::Float(1.2), "blue".into()],
                vec![Value::Float(1.05), Value::Null],
            ],
        )
        .unwrap();
        let out = GreyKnn::new(GreyKnnConfig::default()).impute(&rel);
        assert_eq!(out.value(3, 1), &Value::Text("red".into()));
    }

    #[test]
    fn int_attributes_round() {
        let schema = Schema::new([("X", AttrType::Float), ("N", AttrType::Int)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Float(1.0), Value::Int(4)],
                vec![Value::Float(1.0), Value::Int(5)],
                vec![Value::Float(1.0), Value::Null],
            ],
        )
        .unwrap();
        let out = GreyKnn::new(GreyKnnConfig::default()).impute(&rel);
        match out.value(2, 1) {
            Value::Int(v) => assert!((4..=5).contains(v)),
            other => panic!("expected an Int, got {other:?}"),
        }
    }

    #[test]
    fn no_complete_donors_leaves_missing() {
        let rel = numeric_rel(vec![
            vec![Value::Float(1.0), Value::Null, Value::Float(3.0)],
            vec![Value::Float(2.0), Value::Float(2.0), Value::Null],
        ]);
        let out = GreyKnn::new(GreyKnnConfig::default()).impute(&rel);
        assert_eq!(out.missing_count(), 2);
    }

    #[test]
    fn complete_input_is_identity() {
        let rel = numeric_rel(vec![
            vec![Value::Float(1.0), Value::Float(2.0), Value::Float(3.0)],
        ]);
        assert_eq!(GreyKnn::default().impute(&rel), rel);
    }

    #[test]
    fn deterministic() {
        let rel = numeric_rel(vec![
            vec![Value::Float(1.0), Value::Float(10.0), Value::Float(100.0)],
            vec![Value::Float(2.0), Value::Float(20.0), Value::Float(200.0)],
            vec![Value::Float(1.5), Value::Null, Value::Float(150.0)],
        ]);
        let knn = GreyKnn::default();
        assert_eq!(knn.impute(&rel), knn.impute(&rel));
    }
}
