//! Holoclean-style probabilistic imputation (Rekatsinas et al., paper
//! ref. \[20\]).
//!
//! Holoclean compiles a dataset plus integrity constraints into a
//! probabilistic graphical model and imputes by probabilistic inference.
//! This reimplementation keeps its inference core and drops the learned
//! weighting (fixed log-linear weights instead — see DESIGN.md):
//!
//! 1. **Domain pruning** — candidate values for a cell are the values the
//!    attribute takes in tuples that *co-occur* with the incomplete
//!    tuple's present values, capped to the most frequent few.
//! 2. **Feature scoring** — each candidate is scored with
//!    `w_f·log p(v)` (attribute value prior) `+ w_c·Σ_B log p(v | t[B])`
//!    (co-occurrence with the tuple's other attributes) `− w_d·violations`
//!    (denial-constraint violations the placement would create).
//! 3. **MAP assignment** — the highest-scoring candidate is committed.
//!    Like the original, a cell with a non-empty domain is always imputed.
//!
//! The co-occurrence statistics are materialized per attribute pair, which
//! reproduces Holoclean's speed *and* its large memory footprint relative
//! to the dependency-driven approaches (paper Tables 4–5).

use std::collections::HashMap;

use renuver_data::{AttrId, Relation, Value};
use renuver_dc::DenialConstraint;

/// Configuration for [`Holoclean`].
#[derive(Debug, Clone)]
pub struct HolocleanConfig {
    /// Cap on the pruned candidate domain per cell.
    pub max_domain: usize,
    /// Weight of the value-prior feature.
    pub w_prior: f64,
    /// Weight of the co-occurrence features.
    pub w_cooc: f64,
    /// Penalty per denial-constraint violation.
    pub w_dc: f64,
}

impl Default for HolocleanConfig {
    fn default() -> Self {
        HolocleanConfig { max_domain: 32, w_prior: 0.3, w_cooc: 1.0, w_dc: 2.0 }
    }
}

/// Key of a co-occurrence table entry: value of attribute `a` rendered,
/// value of attribute `b` rendered.
type CoocKey = (String, String);

/// The Holoclean-style imputer.
#[derive(Debug, Clone, Default)]
pub struct Holoclean {
    config: HolocleanConfig,
}

impl Holoclean {
    /// Creates the imputer.
    pub fn new(config: HolocleanConfig) -> Self {
        Holoclean { config }
    }

    /// Imputes the relation, consulting `dcs` as integrity constraints.
    pub fn impute(&self, rel: &Relation, dcs: &[DenialConstraint]) -> Relation {
        let mut out = rel.clone();
        let m = rel.arity();
        let n = rel.len() as f64;

        // Value priors per attribute and pairwise co-occurrence counts.
        // Keys are rendered values; counts over non-null cells only.
        let mut priors: Vec<HashMap<String, u32>> = vec![HashMap::new(); m];
        let mut cooc: Vec<Vec<HashMap<CoocKey, u32>>> =
            (0..m).map(|_| vec![HashMap::new(); m]).collect();
        for t in rel.tuples() {
            for a in 0..m {
                if t[a].is_null() {
                    continue;
                }
                let va = t[a].render();
                *priors[a].entry(va.clone()).or_insert(0) += 1;
                for b in 0..m {
                    if a == b || t[b].is_null() {
                        continue;
                    }
                    *cooc[a][b]
                        .entry((va.clone(), t[b].render()))
                        .or_insert(0) += 1;
                }
            }
        }

        for cell in rel.missing_cells() {
            let domain = self.domain(rel, cell.row, cell.col, &cooc, &priors);
            // Only constraints mentioning the imputed attribute can change
            // their violation count; the rest are a candidate-independent
            // constant and cannot affect the argmax. For those, the
            // predicates on *other* attributes are fixed too, so the rows
            // they admit are precomputed once per cell (DcPlan).
            let plan = DcPlan::build(&out, dcs, cell.row, cell.col);
            let mut best: Option<(f64, Value)> = None;
            for v in domain {
                let score = self.score(rel, cell.row, cell.col, &v, &priors, &cooc, n, &plan);
                match &best {
                    Some((s, bv))
                        if *s > score || (*s == score && bv.total_cmp(&v).is_le()) => {}
                    _ => best = Some((score, v)),
                }
            }
            if let Some((_, v)) = best {
                out.set_value(cell.row, cell.col, v);
            }
        }
        out
    }

    /// Pruned candidate domain: values of the attribute that co-occur with
    /// any present value of the tuple, most frequent first; falls back to
    /// the attribute's most frequent values when no co-occurrence exists.
    fn domain(
        &self,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        cooc: &[Vec<HashMap<CoocKey, u32>>],
        priors: &[HashMap<String, u32>],
    ) -> Vec<Value> {
        let t = rel.tuple(row);
        let mut weights: HashMap<String, u32> = HashMap::new();
        for (b, vb) in t.iter().enumerate() {
            if b == attr || vb.is_null() {
                continue;
            }
            let vb = vb.render();
            for ((va, other), count) in &cooc[attr][b] {
                if *other == vb {
                    *weights.entry(va.clone()).or_insert(0) += count;
                }
            }
        }
        if weights.is_empty() {
            weights = priors[attr].clone();
        }
        let mut ranked: Vec<(String, u32)> = weights.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.config.max_domain);
        // Recover typed values through the attribute's active domain.
        let typed: HashMap<String, Value> = rel
            .active_domain(attr)
            .into_iter()
            .map(|v| (v.render(), v))
            .collect();
        ranked
            .into_iter()
            .filter_map(|(s, _)| typed.get(&s).cloned())
            .collect()
    }

    /// Log-linear score of placing `v` in `(row, attr)`.
    #[allow(clippy::too_many_arguments)]
    fn score(
        &self,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        v: &Value,
        priors: &[HashMap<String, u32>],
        cooc: &[Vec<HashMap<CoocKey, u32>>],
        n: f64,
        plan: &DcPlan,
    ) -> f64 {
        let vs = v.render();
        let prior = *priors[attr].get(&vs).unwrap_or(&0) as f64;
        let mut score = self.config.w_prior * ((prior + 1.0) / (n + 1.0)).ln();
        let t = rel.tuple(row);
        for (b, vb) in t.iter().enumerate() {
            if b == attr || vb.is_null() {
                continue;
            }
            let count = *cooc[attr][b]
                .get(&(vs.clone(), vb.render()))
                .unwrap_or(&0) as f64;
            score += self.config.w_cooc * ((count + 1.0) / (prior + 1.0)).ln();
        }
        score - self.config.w_dc * plan.violations(v) as f64
    }
}

/// The candidate-dependent part of the DC violation count for one cell:
/// for each relevant constraint and each direction of the tuple pair, the
/// rows already satisfying every predicate *not* on the imputed attribute,
/// together with the attribute predicates left to evaluate per candidate.
/// Equivalent to placing the candidate and calling
/// [`violations_for_row`] with the relevant constraints (asserted by the
/// `plan_matches_reference` test), at a fraction of the work.
struct DcPlan {
    /// `(attr predicates, candidate-side-is-t1, matching rows' values on
    /// the imputed attribute)`.
    entries: Vec<(Vec<Predicate>, bool, Vec<Value>)>,
}

use renuver_dc::Predicate;

impl DcPlan {
    fn build(rel: &Relation, dcs: &[DenialConstraint], row: usize, attr: AttrId) -> DcPlan {
        let mut entries = Vec::new();
        let t = rel.tuple(row);
        for dc in dcs {
            if !dc.predicates().iter().any(|p| p.attr == attr) {
                continue; // candidate-independent: constant across candidates
            }
            let (on_attr, off_attr): (Vec<Predicate>, Vec<Predicate>) =
                dc.predicates().iter().partition(|p| p.attr == attr);
            // Ordered pairs: (row, j) and (j, row).
            for candidate_first in [true, false] {
                let mut rows = Vec::new();
                'rows: for j in 0..rel.len() {
                    if j == row {
                        continue;
                    }
                    let tj = rel.tuple(j);
                    for p in &off_attr {
                        let ok = if candidate_first {
                            p.eval(&t[p.attr], &tj[p.attr])
                        } else {
                            p.eval(&tj[p.attr], &t[p.attr])
                        };
                        if !ok {
                            continue 'rows;
                        }
                    }
                    if !tj[attr].is_null() {
                        rows.push(tj[attr].clone());
                    }
                }
                if !rows.is_empty() {
                    entries.push((on_attr.clone(), candidate_first, rows));
                }
            }
        }
        DcPlan { entries }
    }

    /// Violations the placement of `candidate` would create.
    fn violations(&self, candidate: &Value) -> usize {
        let mut count = 0;
        for (preds, candidate_first, rows) in &self.entries {
            for vj in rows {
                let all = preds.iter().all(|p| {
                    if *candidate_first {
                        p.eval(candidate, vj)
                    } else {
                        p.eval(vj, candidate)
                    }
                });
                if all {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema};
    use renuver_dc::{Op, Predicate};

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        let schema = Schema::new([("City", AttrType::Text), ("Zip", AttrType::Text)]).unwrap();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn cooccurrence_drives_choice() {
        let r = rel(vec![
            vec!["Salerno".into(), "84084".into()],
            vec!["Salerno".into(), "84084".into()],
            vec!["Milano".into(), "20121".into()],
            vec!["Salerno".into(), Value::Null],
        ]);
        let out = Holoclean::default().impute(&r, &[]);
        assert_eq!(out.value(3, 1), &Value::Text("84084".into()));
    }

    #[test]
    fn falls_back_to_prior_without_cooccurrence() {
        let r = rel(vec![
            vec![Value::Null, "84084".into()],
            vec!["Salerno".into(), "84084".into()],
            vec!["Salerno".into(), "84084".into()],
            vec!["Milano".into(), "20121".into()],
        ]);
        // Row 0 has no present value besides Zip; Zip co-occurrence picks
        // Salerno (2 of 3 rows with 84084 say Salerno).
        let out = Holoclean::default().impute(&r, &[]);
        assert_eq!(out.value(0, 0), &Value::Text("Salerno".into()));
    }

    #[test]
    fn dc_violations_penalize() {
        // DC: ¬(t1.City = t2.City ∧ t1.Zip ≠ t2.Zip). Without it, zip
        // frequency alone could pick the majority zip; with it, the
        // city-consistent zip wins.
        let dc = DenialConstraint::new(vec![
            Predicate::new(0, Op::Eq),
            Predicate::new(1, Op::Neq),
        ]);
        let r = rel(vec![
            vec!["Salerno".into(), "84084".into()],
            vec!["Milano".into(), "20121".into()],
            vec!["Milano".into(), "20121".into()],
            vec!["Milano".into(), "20121".into()],
            vec!["Salerno".into(), Value::Null],
        ]);
        let out = Holoclean::default().impute(&r, &[dc]);
        assert_eq!(out.value(4, 1), &Value::Text("84084".into()));
    }

    #[test]
    fn always_imputes_with_nonempty_domain() {
        let r = rel(vec![
            vec!["Salerno".into(), "84084".into()],
            vec!["Milano".into(), Value::Null],
        ]);
        // No co-occurrence evidence for Milano; prior fallback still fills.
        let out = Holoclean::default().impute(&r, &[]);
        assert!(!out.is_missing(1, 1));
    }

    #[test]
    fn empty_active_domain_leaves_missing() {
        let r = rel(vec![
            vec!["Salerno".into(), Value::Null],
            vec!["Milano".into(), Value::Null],
        ]);
        let out = Holoclean::default().impute(&r, &[]);
        assert_eq!(out.missing_count(), 2);
    }

    #[test]
    fn plan_matches_reference() {
        use renuver_dc::check::violations_for_row;
        // Random-ish instance with a hole; for every candidate value the
        // plan's count must equal placing the value and counting violations
        // of the relevant DCs directly.
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("B", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        let mk = |a: i64, b: Option<i64>, c: i64| {
            vec![
                Value::Int(a),
                b.map(Value::Int).unwrap_or(Value::Null),
                Value::Int(c),
            ]
        };
        let rel = Relation::new(
            schema,
            vec![
                mk(1, Some(10), 5),
                mk(1, Some(20), 6),
                mk(2, Some(10), 5),
                mk(2, None, 7),
                mk(1, None, 5),
            ],
        )
        .unwrap();
        use renuver_dc::Op;
        let dcs = vec![
            // ¬(A= ∧ B≠)
            DenialConstraint::new(vec![
                Predicate::new(0, Op::Eq),
                Predicate::new(1, Op::Neq),
            ]),
            // ¬(B> ∧ C=) — asymmetric
            DenialConstraint::new(vec![
                Predicate::new(1, Op::Gt),
                Predicate::new(2, Op::Eq),
            ]),
            // irrelevant to B: ¬(A= ∧ C≠)
            DenialConstraint::new(vec![
                Predicate::new(0, Op::Eq),
                Predicate::new(2, Op::Neq),
            ]),
        ];
        let relevant: Vec<DenialConstraint> = dcs
            .iter()
            .filter(|dc| dc.predicates().iter().any(|p| p.attr == 1))
            .cloned()
            .collect();
        for row in [3usize, 4] {
            let plan = DcPlan::build(&rel, &dcs, row, 1);
            for cand in [5i64, 10, 15, 20, 25] {
                let v = Value::Int(cand);
                let fast = plan.violations(&v);
                let mut placed = rel.clone();
                placed.set_value(row, 1, v.clone());
                let slow = violations_for_row(&placed, &relevant, row);
                assert_eq!(fast, slow, "row {row} candidate {cand}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let r = rel(vec![
            vec!["Salerno".into(), "84084".into()],
            vec!["Salerno".into(), "84085".into()],
            vec!["Salerno".into(), Value::Null],
        ]);
        let h = Holoclean::default();
        assert_eq!(h.impute(&r, &[]), h.impute(&r, &[]));
    }
}
