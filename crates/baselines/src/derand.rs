//! Derand-style imputation under similarity rules (Song et al., paper
//! ref. \[23\]).
//!
//! Derand treats imputation as *maximizing the number of imputed cells*
//! subject to differential-dependency (DD) similarity rules. The original
//! derandomizes a randomized rounding of an integer program by the method
//! of conditional expectations. This reimplementation keeps that skeleton:
//!
//! 1. **Candidate generation** — for every missing cell, collect the
//!    values of tuples that are LHS-similar under *any* rule with the
//!    missing attribute on its RHS (the same `RfdSet` RENUVER receives is
//!    used as the DD set, exactly as the paper's comparison does).
//! 2. **Derandomized assignment** — cells are processed in order; for each,
//!    every candidate is scored by the number of rule violations the
//!    relation would hold after placing it (the conditional expectation of
//!    the objective given choices so far), and the minimum-violation
//!    candidate is committed. A cell with candidates is **always imputed**
//!    — Derand trades precision for fill count, which is exactly the
//!    behaviour the paper measures (high fill, precision well below
//!    RENUVER's).
//!
//! Placing a value in `(row, attr)` only changes violations of rules that
//! mention `attr`, so the violation-count delta is evaluated against a
//! per-cell precomputed plan (same hoisting RENUVER's verifier uses);
//! rules not mentioning `attr` contribute a candidate-independent constant
//! that cannot affect the argmin.

use renuver_data::{AttrId, Cell, Relation, Value};
use renuver_distance::DistanceOracle;
use renuver_rfd::{Rfd, RfdSet};

/// Configuration for [`Derand`].
#[derive(Debug, Clone)]
pub struct DerandConfig {
    /// Cap on candidates evaluated per cell (the IP relaxation's support).
    pub max_candidates_per_cell: usize,
}

impl Default for DerandConfig {
    fn default() -> Self {
        DerandConfig { max_candidates_per_cell: 64 }
    }
}

/// The Derand-style imputer.
#[derive(Debug, Clone, Default)]
pub struct Derand {
    config: DerandConfig,
}

/// The candidate-dependent part of the violation count for one cell.
struct CountPlan {
    /// `(attr threshold, rows)`: +1 violation per row whose `attr` value is
    /// within the threshold of the candidate (LHS-relevant rules whose RHS
    /// is already violated).
    close_counts: Vec<(f64, Vec<usize>)>,
    /// `(RHS threshold, rows)`: +1 violation per row whose `attr` value is
    /// beyond the threshold from the candidate (rules with `attr` as RHS
    /// and a satisfied LHS).
    far_counts: Vec<(f64, Vec<usize>)>,
}

impl CountPlan {
    fn build(
        oracle: &DistanceOracle,
        rel: &Relation,
        rules: &RfdSet,
        cell: Cell,
    ) -> CountPlan {
        let (row, attr) = (cell.row, cell.col);
        let t = rel.tuple(row);
        let mut close_counts = Vec::new();
        let mut far_counts = Vec::new();
        for rfd in rules.iter() {
            if rfd.lhs_contains(attr) {
                let rhs = rfd.rhs();
                if t[rhs.attr].is_null() {
                    continue;
                }
                let attr_thr = rfd
                    .lhs()
                    .iter()
                    .find(|c| c.attr == attr)
                    .expect("lhs_contains checked")
                    .threshold;
                let mut rows = Vec::new();
                'rows: for j in 0..rel.len() {
                    if j == row || rel.is_missing(j, attr) || rel.is_missing(j, rhs.attr) {
                        continue;
                    }
                    for c in rfd.lhs() {
                        if c.attr != attr
                            && oracle
                                .distance_bounded(rel, c.attr, row, j, c.threshold)
                                .is_none()
                        {
                            continue 'rows;
                        }
                    }
                    if oracle
                        .distance_bounded(rel, rhs.attr, row, j, rhs.threshold)
                        .is_none()
                    {
                        rows.push(j);
                    }
                }
                if !rows.is_empty() {
                    close_counts.push((attr_thr, rows));
                }
            } else if rfd.rhs_attr() == attr {
                let mut rows = Vec::new();
                'rows2: for j in 0..rel.len() {
                    if j == row || rel.is_missing(j, attr) {
                        continue;
                    }
                    for c in rfd.lhs() {
                        if oracle
                            .distance_bounded(rel, c.attr, row, j, c.threshold)
                            .is_none()
                        {
                            continue 'rows2;
                        }
                    }
                    rows.push(j);
                }
                if !rows.is_empty() {
                    far_counts.push((rfd.rhs_threshold(), rows));
                }
            }
        }
        CountPlan { close_counts, far_counts }
    }

    /// Violations introduced by taking the value of `donor_row`.
    fn violations(
        &self,
        oracle: &DistanceOracle,
        rel: &Relation,
        attr: AttrId,
        donor_row: usize,
    ) -> usize {
        let mut count = 0;
        for (thr, rows) in &self.close_counts {
            count += rows
                .iter()
                .filter(|&&j| oracle.distance_bounded(rel, attr, donor_row, j, *thr).is_some())
                .count();
        }
        for (thr, rows) in &self.far_counts {
            count += rows
                .iter()
                .filter(|&&j| oracle.distance_bounded(rel, attr, donor_row, j, *thr).is_none())
                .count();
        }
        count
    }
}

impl Derand {
    /// Creates the imputer.
    pub fn new(config: DerandConfig) -> Self {
        Derand { config }
    }

    /// Imputes the relation under the rule set, returning the repaired
    /// relation.
    pub fn impute(&self, rel: &Relation, rules: &RfdSet) -> Relation {
        let mut out = rel.clone();
        let mut oracle = DistanceOracle::build(&out, 3000);
        for cell in rel.missing_cells() {
            let candidates = self.candidates(&oracle, &out, rules, cell);
            if candidates.is_empty() {
                continue;
            }
            let plan = CountPlan::build(&oracle, &out, rules, cell);
            // Derandomized choice: the candidate whose placement minimizes
            // the violation count against the current relation state; ties
            // break on the value ordering for determinism.
            let best = candidates
                .into_iter()
                .map(|donor| {
                    let violations = plan.violations(&oracle, &out, cell.col, donor);
                    (violations, out.value(donor, cell.col).clone())
                })
                .min_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            if let Some((_, v)) = best {
                out.set_value(cell.row, cell.col, v);
                oracle.update_cell(&out, cell.row, cell.col);
            }
        }
        out
    }

    /// Donor rows LHS-similar to `cell.row` under any rule with `cell.col`
    /// on the RHS — one per distinct value, in deterministic order.
    fn candidates(
        &self,
        oracle: &DistanceOracle,
        rel: &Relation,
        rules: &RfdSet,
        cell: Cell,
    ) -> Vec<usize> {
        let mut donors: Vec<usize> = Vec::new();
        let mut values: Vec<Value> = Vec::new();
        for idx in rules.rhs_index(cell.col) {
            let rfd = rules.get(idx);
            for j in 0..rel.len() {
                if j == cell.row || rel.is_missing(j, cell.col) {
                    continue;
                }
                if lhs_similar(oracle, rel, rfd, cell.row, j) {
                    let v = rel.value(j, cell.col);
                    if !values.contains(v) {
                        values.push(v.clone());
                        donors.push(j);
                    }
                }
            }
        }
        // Deterministic order by value, then cap.
        let mut paired: Vec<(Value, usize)> = values.into_iter().zip(donors).collect();
        paired.sort_by(|a, b| a.0.total_cmp(&b.0));
        paired.truncate(self.config.max_candidates_per_cell);
        paired.into_iter().map(|(_, d)| d).collect()
    }
}

/// LHS similarity of a tuple pair under one rule.
fn lhs_similar(
    oracle: &DistanceOracle,
    rel: &Relation,
    rfd: &Rfd,
    i: usize,
    j: usize,
) -> bool {
    rfd.lhs()
        .iter()
        .all(|c| oracle.distance_bounded(rel, c.attr, i, j, c.threshold).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema};
    use renuver_rfd::Constraint;

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(schema, rows).unwrap()
    }

    fn rule_a_to_b() -> RfdSet {
        RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 1.0)],
            Constraint::new(1, 0.0),
        )])
    }

    #[test]
    fn imputes_similar_tuple_value() {
        let r = rel(vec![
            vec![Value::Int(10), Value::Int(7)],
            vec![Value::Int(10), Value::Null],
            vec![Value::Int(50), Value::Int(99)],
        ]);
        let out = Derand::default().impute(&r, &rule_a_to_b());
        assert_eq!(out.value(1, 1), &Value::Int(7));
    }

    #[test]
    fn always_imputes_when_candidates_exist() {
        // Conflicting candidates: rows 0 and 1 both A-similar to row 2 but
        // with different B. RENUVER would leave the cell missing; Derand
        // picks the lower-violation (here: either) value anyway.
        let r = rel(vec![
            vec![Value::Int(10), Value::Int(7)],
            vec![Value::Int(10), Value::Int(9)],
            vec![Value::Int(10), Value::Null],
        ]);
        let out = Derand::default().impute(&r, &rule_a_to_b());
        assert!(!out.is_missing(2, 1));
    }

    #[test]
    fn prefers_lower_violation_candidate() {
        // Candidates 7 (violates against two tuples) and 9 (violates
        // against one): 9 must win even though 7 sorts first.
        let r = rel(vec![
            vec![Value::Int(10), Value::Int(9)],
            vec![Value::Int(11), Value::Int(9)],
            vec![Value::Int(12), Value::Int(7)],
            vec![Value::Int(10), Value::Null],
        ]);
        // A(≤2) → B(≤0): candidates for row 3 are {7, 9}; value 7 violates
        // against rows 0/1, value 9 violates only against row 2.
        let rules = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 2.0)],
            Constraint::new(1, 0.0),
        )]);
        let out = Derand::default().impute(&r, &rules);
        assert_eq!(out.value(3, 1), &Value::Int(9));
    }

    #[test]
    fn no_rules_no_imputations() {
        let r = rel(vec![
            vec![Value::Int(10), Value::Int(7)],
            vec![Value::Int(10), Value::Null],
        ]);
        let out = Derand::default().impute(&r, &RfdSet::new());
        assert!(out.is_missing(1, 1));
    }

    #[test]
    fn earlier_imputations_feed_later_cells() {
        let r = rel(vec![
            vec![Value::Int(10), Value::Int(7)],
            vec![Value::Int(10), Value::Null],
            vec![Value::Int(10), Value::Null],
        ]);
        let out = Derand::default().impute(&r, &rule_a_to_b());
        assert_eq!(out.value(1, 1), &Value::Int(7));
        assert_eq!(out.value(2, 1), &Value::Int(7));
    }

    #[test]
    fn candidate_cap_respected() {
        let mut rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(10), Value::Int(i)])
            .collect();
        rows.push(vec![Value::Int(10), Value::Null]);
        let r = rel(rows);
        let derand = Derand::new(DerandConfig { max_candidates_per_cell: 3 });
        // With the cap, only the three smallest values compete.
        let out = derand.impute(&r, &rule_a_to_b());
        match out.value(20, 1) {
            Value::Int(v) => assert!((0..3).contains(v)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deterministic() {
        let r = rel(vec![
            vec![Value::Int(10), Value::Int(7)],
            vec![Value::Int(11), Value::Int(9)],
            vec![Value::Int(10), Value::Null],
        ]);
        let d = Derand::default();
        assert_eq!(d.impute(&r, &rule_a_to_b()), d.impute(&r, &rule_a_to_b()));
    }
}
