//! Comparator imputation approaches (paper Section 6.3).
//!
//! The paper benchmarks RENUVER against three strategies, each reimplemented
//! here at algorithmic fidelity (the originals are Java/Python systems; see
//! DESIGN.md, substitution 3):
//!
//! - [`knn`] — the grey-relational nearest-neighbour imputer of Huang & Lee
//!   (ref. \[14\]): grey relational coefficients rank complete tuples, the
//!   top-k donate via weighted mean (numeric) or weighted mode
//!   (categorical).
//! - [`derand`] — the Derand algorithm of Song et al. (ref. \[23\]):
//!   candidates from differential-dependency similarity (the same RFD set
//!   RENUVER receives), then a derandomized conditional-expectation pass
//!   that maximizes the number of imputed cells.
//! - [`holoclean`] — the probabilistic-inference core of Holoclean (ref.
//!   \[20\]): pruned candidate domains, co-occurrence and frequency features,
//!   and denial-constraint violation penalties combined in a log-linear
//!   score.

pub mod derand;
pub mod holoclean;
pub mod knn;

pub use derand::{Derand, DerandConfig};
pub use holoclean::{Holoclean, HolocleanConfig};
pub use knn::{GreyKnn, GreyKnnConfig};
