//! Batch verification: one oracle pass serves many cells.
//!
//! The per-cell loop's expensive steps — the witness scans behind a
//! [`VerifyPlan`] and the donor scans behind candidate generation — are
//! `O(n)` relation passes whose output depends on the *target cell* only
//! through (a) the imputed attribute and (b) the target row's values on
//! the attributes the relevant RFDs constrain. Missing cells that share an
//! RFD cluster and agree on those values (typical in serving batches, and
//! in any column whose misses concentrate on a few LHS signatures) would
//! recompute identical scans cell after cell.
//!
//! [`CellCache`] keys that work by `(attr, signature values)` and replays
//! it. Soundness relies on three invariants, all enforced here:
//!
//! - **Signature-determinism.** Every cached computation reads the target
//!   row only on the signature attributes (see [`CellCache::new`] for the
//!   exact set), and distances are pure functions of the compared values —
//!   so two cells with bit-equal signatures get bit-equal scans. Float
//!   signatures compare by bit pattern, which never merges values the
//!   oracle could tell apart.
//! - **Write tracking.** An imputation writes one cell; only that row's
//!   donor/witness status can change in any cached entry. Writes land in
//!   each affected entry's `pending` set ([`CellCache::note_write`]), and
//!   the next reuse re-evaluates exactly those rows with the same
//!   predicates the full scan uses — removing them first, so a row whose
//!   changed values *demote* it is dropped too. The patched lists equal a
//!   fresh scan of the current relation.
//! - **Version gating.** Cluster composition (and therefore the cached
//!   per-cluster candidate lists) depends on the active Σ' set; key
//!   reactivation bumps [`CellCache::bump_active`] and stale entries are
//!   rebuilt on next touch.
//!
//! The degraded (budget-pressure) verification rung bypasses the cache:
//! its restricted witness lists depend on the changed-rows set, which is
//! not signature-determined.
//!
//! Results are bit-identical with the cache off (`RenuverConfig::
//! batch_verify = false`), asserted by `tests/batch_differential.rs` and
//! the unit tests below.

use std::collections::{BTreeSet, HashMap};

use renuver_data::{AttrId, Relation, Value};
use renuver_distance::{DistanceOracle, SimilarityIndex};
use renuver_rfd::{Rfd, RfdSet};

use crate::candidates::{find_candidate_tuples_with, Candidate, ClusterScorer};
use crate::config::VerifyScope;
use crate::verify::{close_witness, far_witness, VerifyPlan, WitnessKind};

/// A [`Value`] projected to a hashable key. Floats key by bit pattern:
/// `-0.0`/`0.0` and distinct NaNs land in different buckets (forgoing a
/// reuse, never corrupting one), while bit-equal floats — including equal
/// NaNs — always produce identical distances downstream.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum KeyValue {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Text(String),
}

impl KeyValue {
    fn of(v: &Value) -> KeyValue {
        match v {
            Value::Null => KeyValue::Null,
            Value::Bool(b) => KeyValue::Bool(*b),
            Value::Int(i) => KeyValue::Int(*i),
            Value::Float(f) => KeyValue::Float(f.to_bits()),
            Value::Text(s) => KeyValue::Text(s.clone()),
        }
    }
}

/// Cache key: the imputed attribute plus the target row's values on that
/// attribute's signature attributes, in ascending attribute order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct SigKey {
    attr: AttrId,
    values: Vec<KeyValue>,
}

/// One cluster's cached candidate list: the *unsorted* scan output
/// (ascending donor row), plus the cluster's sigma indices so pending
/// rows can be re-scored with the cluster's own thresholds.
struct CachedCluster {
    members: Vec<usize>,
    list: Vec<Candidate>,
}

struct CacheEntry {
    /// [`CellCache::version`] at creation; a mismatch means the active Σ'
    /// changed and the entry is rebuilt on next touch.
    version: u64,
    /// Rows written since the entry's lists were last reconciled.
    pending: BTreeSet<usize>,
    /// Witness lists for the verify plan, kept current up to `pending`.
    witnesses: crate::verify::WitnessLists,
    /// Per-cluster-position candidate lists, filled lazily as the cluster
    /// loop reaches them.
    candidates: Vec<Option<CachedCluster>>,
}

/// The batch-verification cache for one `impute_prepared` run. See the
/// module docs for the contract.
pub(crate) struct CellCache {
    enabled: bool,
    version: u64,
    /// Per attribute: the signature attributes (sorted) whose target-row
    /// values determine that attribute's cached scans.
    sig_attrs: Vec<Vec<AttrId>>,
    /// Per attribute: `sig_attrs ∪ {attr}` (sorted) — a write to any of
    /// these invalidates/amends entries for that attribute. The attribute
    /// itself is always included: a filled cell becomes a new donor and a
    /// new potential witness.
    read_attrs: Vec<Vec<AttrId>>,
    entries: HashMap<SigKey, CacheEntry>,
    plans_built: u64,
    plans_reused: u64,
}

impl CellCache {
    /// Derives the signature sets from `sigma`: for cells on attribute
    /// `A`, every scan reads the target row on
    ///
    /// - the LHS attributes of each RFD with RHS `A` (cluster candidate
    ///   scans, and `Full`-scope far-witness scans), and
    /// - the LHS attributes and the RHS attribute of each RFD with `A` in
    ///   its LHS (close-witness scans).
    ///
    /// Nothing else about the target row is consulted — the index-seeded
    /// scan variants read more, but their output is pinned identical to
    /// the exact scan by the superset contract.
    pub(crate) fn new(enabled: bool, sigma: &RfdSet, arity: usize) -> CellCache {
        let mut sig: Vec<BTreeSet<AttrId>> = vec![BTreeSet::new(); arity];
        for rfd in sigma.iter() {
            let rhs = rfd.rhs_attr();
            if rhs < arity {
                for c in rfd.lhs() {
                    sig[rhs].insert(c.attr);
                }
            }
            for c in rfd.lhs() {
                if c.attr >= arity {
                    continue;
                }
                for c2 in rfd.lhs() {
                    if c2.attr != c.attr {
                        sig[c.attr].insert(c2.attr);
                    }
                }
                sig[c.attr].insert(rhs);
            }
        }
        let sig_attrs: Vec<Vec<AttrId>> =
            sig.iter().map(|s| s.iter().copied().collect()).collect();
        let read_attrs: Vec<Vec<AttrId>> = sig
            .iter()
            .enumerate()
            .map(|(a, s)| {
                let mut r = s.clone();
                r.insert(a);
                r.into_iter().collect()
            })
            .collect();
        CellCache {
            enabled,
            version: 0,
            sig_attrs,
            read_attrs,
            entries: HashMap::new(),
            plans_built: 0,
            plans_reused: 0,
        }
    }

    /// The cache key for cell `(row, attr)`, or `None` when caching is
    /// disabled (the caller then takes the uncached paths).
    pub(crate) fn key_for(&self, rel: &Relation, row: usize, attr: AttrId) -> Option<SigKey> {
        if !self.enabled {
            return None;
        }
        let values =
            self.sig_attrs[attr].iter().map(|&a| KeyValue::of(rel.value(row, a))).collect();
        Some(SigKey { attr, values })
    }

    /// The active Σ' set changed (key reactivation): cluster composition
    /// may differ from here on, so existing entries are stale.
    pub(crate) fn bump_active(&mut self) {
        self.version += 1;
    }

    /// Record an imputation write to `(row, attr)`: every entry whose
    /// read set contains `attr` must re-evaluate `row` before next use.
    pub(crate) fn note_write(&mut self, row: usize, attr: AttrId) {
        if !self.enabled {
            return;
        }
        let CellCache { read_attrs, entries, .. } = self;
        for (key, entry) in entries.iter_mut() {
            if read_attrs[key.attr].binary_search(&attr).is_ok() {
                entry.pending.insert(row);
            }
        }
    }

    pub(crate) fn plans_built(&self) -> u64 {
        self.plans_built
    }

    pub(crate) fn plans_reused(&self) -> u64 {
        self.plans_reused
    }

    /// The verify plan for cell `(row, attr)`: compiled from the cached
    /// witness lists when an entry with this signature exists (after
    /// reconciling pending rows), otherwise from a fresh witness scan that
    /// seeds the entry. Must be called before
    /// [`CellCache::cluster_candidates`] for the cell — reconciliation
    /// happens here, and no writes occur mid-cell.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn plan_for(
        &mut self,
        key: &SigKey,
        oracle: &DistanceOracle,
        index: Option<&SimilarityIndex>,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        sigma: &RfdSet,
        scope: VerifyScope,
    ) -> VerifyPlan {
        let version = self.version;
        let reusable = self.entries.get(key).is_some_and(|e| e.version == version);
        if reusable {
            self.plans_reused += 1;
            let entry = self.entries.get_mut(key).expect("entry checked above");
            if !entry.pending.is_empty() {
                let pending: Vec<usize> = entry.pending.iter().copied().collect();
                entry.pending.clear();
                for w in &mut entry.witnesses.0 {
                    let rfd = sigma.get(w.sigma_idx);
                    for &p in &pending {
                        if let Ok(pos) = w.rows.binary_search(&p) {
                            w.rows.remove(pos);
                        }
                        let keep = match w.kind {
                            WitnessKind::Close => close_witness(oracle, rel, row, attr, rfd, p),
                            WitnessKind::Far => far_witness(oracle, rel, row, attr, rfd, p),
                        };
                        if keep {
                            let pos = w.rows.binary_search(&p).unwrap_err();
                            w.rows.insert(pos, p);
                        }
                    }
                }
                let mut dist_buf: Vec<Option<f64>> = vec![None; rel.arity()];
                for slot in entry.candidates.iter_mut().flatten() {
                    let rfds: Vec<&Rfd> =
                        slot.members.iter().map(|&i| sigma.get(i)).collect();
                    let scorer = ClusterScorer::new(rel.arity(), &rfds);
                    for &p in &pending {
                        if let Ok(pos) = slot.list.binary_search_by(|c| c.row.cmp(&p)) {
                            slot.list.remove(pos);
                        }
                        if let Some(c) = scorer.score(oracle, rel, row, attr, p, &mut dist_buf) {
                            let pos = slot
                                .list
                                .binary_search_by(|x| x.row.cmp(&c.row))
                                .unwrap_err();
                            slot.list.insert(pos, c);
                        }
                    }
                }
            }
            let entry = self.entries.get(key).expect("entry checked above");
            return VerifyPlan::from_witnesses(oracle, attr, &entry.witnesses);
        }
        self.plans_built += 1;
        let witnesses = VerifyPlan::collect_witnesses(
            oracle,
            index,
            rel,
            row,
            attr,
            sigma.iter(),
            scope,
            None,
        );
        let plan = VerifyPlan::from_witnesses(oracle, attr, &witnesses);
        self.entries.insert(
            key.clone(),
            CacheEntry { version, pending: BTreeSet::new(), witnesses, candidates: Vec::new() },
        );
        plan
    }

    /// The candidate list for the cell's cluster at position
    /// `cluster_idx` (whose sigma indices are `members`): the cached scan
    /// output when present, otherwise a fresh scan that fills the slot.
    /// Returns the *unsorted* list, exactly as
    /// [`find_candidate_tuples_with`] would — the caller sorts and
    /// truncates as usual.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn cluster_candidates(
        &mut self,
        key: &SigKey,
        cluster_idx: usize,
        members: &[usize],
        oracle: &DistanceOracle,
        index: Option<&SimilarityIndex>,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        rfds: &[&Rfd],
    ) -> Vec<Candidate> {
        let entry = self.entries.get_mut(key).expect("plan_for seeds the entry first");
        debug_assert_eq!(entry.version, self.version);
        debug_assert!(entry.pending.is_empty(), "plan_for reconciles before the cluster loop");
        if entry.candidates.len() <= cluster_idx {
            entry.candidates.resize_with(cluster_idx + 1, || None);
        }
        match &mut entry.candidates[cluster_idx] {
            Some(cached) => {
                debug_assert_eq!(cached.members, members, "cluster layout is version-stable");
                cached.list.clone()
            }
            slot @ None => {
                let list = find_candidate_tuples_with(oracle, index, rel, row, attr, rfds);
                *slot = Some(CachedCluster { members: members.to_vec(), list: list.clone() });
                list
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema};
    use renuver_rfd::Constraint;

    fn schema() -> Schema {
        Schema::new([
            ("City", AttrType::Text),
            ("Zip", AttrType::Text),
            ("Region", AttrType::Text),
        ])
        .unwrap()
    }

    fn t(city: Option<&str>, zip: Option<&str>, region: Option<&str>) -> Vec<Value> {
        [city, zip, region].iter().map(|v| v.map(Value::from).unwrap_or(Value::Null)).collect()
    }

    fn sigma() -> RfdSet {
        RfdSet::from_vec(vec![
            // City ≈ → Zip =
            Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(1, 0.0)),
            // Zip = → Region =
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
        ])
    }

    #[test]
    fn signatures_cover_every_target_row_read() {
        let cache = CellCache::new(true, &sigma(), 3);
        // Zip cells: candidate scans read City (cluster LHS); close-witness
        // scans for Zip-on-LHS RFDs read Region (their RHS). City itself
        // never hosts an RFD RHS here, so its signature is just its LHS
        // co-attrs and RHS.
        assert_eq!(cache.sig_attrs[1], vec![0, 2]);
        assert_eq!(cache.read_attrs[1], vec![0, 1, 2]);
        // City appears only in RFD 0's LHS alone → signature is its RHS.
        assert_eq!(cache.sig_attrs[0], vec![1]);
        assert_eq!(cache.read_attrs[0], vec![0, 1]);
    }

    #[test]
    fn same_signature_cells_share_and_writes_reconcile() {
        // Rows 4 and 5 both miss Zip with the same City signature; row 6
        // misses Zip with a different one. After row 4 is imputed (a write
        // to Zip), row 5's reuse must re-admit row 4 as a donor/witness —
        // exactly what a fresh scan would see.
        let rel_rows = vec![
            t(Some("Springfield"), Some("62701"), Some("IL")),
            t(Some("Springfield"), Some("62701"), Some("IL")),
            t(Some("Shelbyville"), Some("62565"), Some("IL")),
            t(Some("Ogdenville"), Some("11111"), Some("ND")),
            t(Some("Springfield"), None, Some("IL")),
            t(Some("Springfield"), None, Some("IL")),
            t(Some("Shelbyville"), None, Some("IL")),
        ];
        let rel = Relation::new(schema(), rel_rows).unwrap();
        let sigma = sigma();
        let oracle = DistanceOracle::build(&rel, 3000);
        let mut cache = CellCache::new(true, &sigma, rel.arity());

        let k4 = cache.key_for(&rel, 4, 1).unwrap();
        let k5 = cache.key_for(&rel, 5, 1).unwrap();
        let k6 = cache.key_for(&rel, 6, 1).unwrap();
        assert_eq!(k4, k5, "same City+Region signature");
        assert_ne!(k4, k6);

        let scope = VerifyScope::Full;
        let _plan4 = cache.plan_for(&k4, &oracle, None, &rel, 4, 1, &sigma, scope);
        assert_eq!((cache.plans_built(), cache.plans_reused()), (1, 0));
        let members = vec![0usize];
        let rfds: Vec<&Rfd> = members.iter().map(|&i| sigma.get(i)).collect();
        let base =
            cache.cluster_candidates(&k4, 0, &members, &oracle, None, &rel, 4, 1, &rfds);
        assert_eq!(
            base,
            find_candidate_tuples_with(&oracle, None, &rel, 4, 1, &rfds),
            "cached base equals a fresh scan"
        );

        // Impute row 4 from row 0 and record the write.
        let mut rel = rel;
        rel.set_value(4, 1, rel.value(0, 1).clone());
        let mut oracle = oracle;
        oracle.update_cell(&rel, 4, 1);
        cache.note_write(4, 1);

        // Row 5 reuses the entry; the reconciled lists must equal fresh
        // scans of the *current* relation (row 4 is now a donor).
        let plan5 = cache.plan_for(&k5, &oracle, None, &rel, 5, 1, &sigma, scope);
        assert_eq!((cache.plans_built(), cache.plans_reused()), (1, 1));
        let reconciled =
            cache.cluster_candidates(&k5, 0, &members, &oracle, None, &rel, 5, 1, &rfds);
        let fresh = find_candidate_tuples_with(&oracle, None, &rel, 5, 1, &rfds);
        assert_eq!(reconciled, fresh);
        assert!(fresh.iter().any(|c| c.row == 4), "imputed row joined the donor pool");
        let fresh_plan =
            VerifyPlan::build(&oracle, &rel, 5, 1, sigma.iter(), scope);
        for donor in 0..rel.len() {
            if rel.is_missing(donor, 1) {
                continue;
            }
            assert_eq!(
                plan5.admits(&oracle, &rel, 1, donor),
                fresh_plan.admits(&oracle, &rel, 1, donor),
                "donor {donor}"
            );
        }
    }

    #[test]
    fn version_bump_invalidates_entries() {
        let rel = Relation::new(
            schema(),
            vec![
                t(Some("Springfield"), Some("62701"), Some("IL")),
                t(Some("Springfield"), None, Some("IL")),
            ],
        )
        .unwrap();
        let sigma = sigma();
        let oracle = DistanceOracle::build(&rel, 3000);
        let mut cache = CellCache::new(true, &sigma, rel.arity());
        let k = cache.key_for(&rel, 1, 1).unwrap();
        let _ = cache.plan_for(&k, &oracle, None, &rel, 1, 1, &sigma, VerifyScope::Full);
        cache.bump_active();
        let _ = cache.plan_for(&k, &oracle, None, &rel, 1, 1, &sigma, VerifyScope::Full);
        assert_eq!((cache.plans_built(), cache.plans_reused()), (2, 0));
    }

    #[test]
    fn disabled_cache_yields_no_keys() {
        let rel = Relation::new(schema(), vec![t(Some("a"), None, Some("b"))]).unwrap();
        let cache = CellCache::new(false, &sigma(), rel.arity());
        assert!(cache.key_for(&rel, 0, 1).is_none());
    }
}
