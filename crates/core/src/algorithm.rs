//! The RENUVER main procedure (Algorithms 1 and 2).

use renuver_budget::{BudgetReport, BudgetTrip};
use renuver_data::{Cell, Relation};
use renuver_distance::{DistanceOracle, SimilarityIndex};
use renuver_obs::{Counter, Field, FieldValue, Histogram};
use renuver_rfd::check::stays_key_after_update_with_index;
use renuver_rfd::{Rfd, RfdSet};

use crate::batch::CellCache;
use crate::candidates::{find_candidate_tuples_with, sort_candidates};
use crate::config::{ClusterOrder, ImputationOrder, IndexMode, RenuverConfig, AUTO_MIN_ROWS};
use crate::result::{
    CellExplain, CellOutcome, DryReason, ExplainWinner, ImputationResult, ImputationStats,
    ImputedCell, TraceEvent,
};
use crate::verify::VerifyPlan;

/// What one cell's imputation attempt produced: the written cell (when one
/// stuck) plus the explain-level detail the caller folds into a
/// [`CellExplain`] and the tracer's `cell` event. The heavy fields
/// (`generating_rfds`, `winner`) are only populated when explain detail
/// was requested; the counts are always exact.
struct CellAttempt {
    imputed: Option<ImputedCell>,
    clusters: usize,
    candidates: usize,
    generating_rfds: Vec<usize>,
    winner: Option<ExplainWinner>,
    dried_up: Option<DryReason>,
}

/// Everything [`Renuver::impute_prepared`] produces except the relation
/// itself (which the caller owns and passed in by `&mut`). The one-shot
/// path folds these straight into an [`ImputationResult`]; the serving
/// engine remaps the cell coordinates to batch-relative first.
pub(crate) struct PreparedParts {
    pub(crate) imputed: Vec<ImputedCell>,
    pub(crate) unimputed: Vec<Cell>,
    pub(crate) outcomes: Vec<(Cell, CellOutcome)>,
    pub(crate) stats: ImputationStats,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) explains: Vec<CellExplain>,
    pub(crate) budget: BudgetReport,
}

/// Metric handles the per-cell loop increments, registered once per run
/// (only when the tracer is enabled — a disabled run touches no registry).
struct CoreMetrics {
    candidates_per_cell: Histogram,
    verify_full: Counter,
    verify_changed_rows: Counter,
}

/// Flattens a [`CellExplain`] into the `cell` trace-event payload
/// (schema: `renuver_obs::schema`, kind `cell`).
fn cell_event_fields(exp: &CellExplain) -> Vec<Field> {
    let mut fields = vec![
        ("row", FieldValue::U64(exp.cell.row as u64)),
        ("attr", FieldValue::U64(exp.cell.col as u64)),
        ("outcome", FieldValue::Str(exp.outcome.label())),
        ("clusters", FieldValue::U64(exp.clusters as u64)),
        ("candidates", FieldValue::U64(exp.candidates as u64)),
    ];
    if !exp.generating_rfds.is_empty() {
        fields.push((
            "rfds",
            FieldValue::U64s(exp.generating_rfds.iter().map(|&i| i as u64).collect()),
        ));
    }
    if let Some(w) = &exp.winner {
        fields.push(("donor_row", FieldValue::U64(w.donor_row as u64)));
        fields.push(("via_rfd", FieldValue::U64(w.via_rfd as u64)));
        fields.push(("distance", FieldValue::F64(w.distance)));
        if let Some(margin) = w.runner_up_margin {
            fields.push(("margin", FieldValue::F64(margin)));
        }
        fields.push(("lhs_dists", FieldValue::F64s(w.lhs_distances.clone())));
    }
    if let Some(reason) = exp.dried_up {
        fields.push(("reason", FieldValue::Str(reason.label())));
        if let DryReason::Budget(trip) = reason {
            fields.push(("trip", FieldValue::Str(trip.label())));
        }
    }
    fields
}

/// The RENUVER imputation engine.
///
/// ```
/// use renuver_core::{Renuver, RenuverConfig};
/// use renuver_rfd::{Constraint, Rfd, RfdSet};
/// use renuver_data::{AttrType, Relation, Schema, Value};
///
/// let schema = Schema::new([("City", AttrType::Text), ("Zip", AttrType::Text)]).unwrap();
/// let rel = Relation::new(schema, vec![
///     vec!["Salerno".into(), "84084".into()],
///     vec!["Salerno".into(), Value::Null],
/// ]).unwrap();
/// // City(≤0) → Zip(≤0): same city, same zip.
/// let rfds = RfdSet::from_vec(vec![
///     Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
/// ]);
/// let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
/// assert_eq!(result.relation.value(1, 1), &Value::Text("84084".into()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Renuver {
    config: RenuverConfig,
}

impl Renuver {
    /// Creates an engine with the given configuration.
    pub fn new(config: RenuverConfig) -> Self {
        Renuver { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RenuverConfig {
        &self.config
    }

    /// Runs RENUVER (Algorithm 1) over `rel` with the dependency set
    /// `sigma`, returning the imputed relation and per-cell outcomes.
    ///
    /// The input relation is not modified; imputation happens on a clone
    /// (`r'` in the paper's notation).
    pub fn impute(&self, rel: &Relation, sigma: &RfdSet) -> ImputationResult {
        self.impute_rows(rel, sigma, 0..rel.len())
    }

    /// Incremental imputation (the paper's Section 7 future-work item on
    /// incremental scenarios): only the missing cells of the freshly
    /// appended tuples `first_new_row..` are imputed; the existing tuples
    /// serve as donors and consistency witnesses but are never modified.
    ///
    /// Appending a batch and calling this is equivalent to re-running the
    /// full algorithm with the old rows' missing cells masked — the
    /// pre-processing (key detection over the whole instance) and the
    /// verification still consider every tuple.
    pub fn impute_appended(
        &self,
        rel: &Relation,
        first_new_row: usize,
        sigma: &RfdSet,
    ) -> ImputationResult {
        self.impute_rows(rel, sigma, first_new_row..rel.len())
    }

    /// [`Renuver::impute`] restricted to missing cells in `row_range`.
    /// Rows outside the range participate as candidate donors and in
    /// verification but are never imputed — the engine of
    /// [`Renuver::impute_with_donors`] and [`Renuver::impute_appended`].
    ///
    /// Installs a thread pool sized by [`RenuverConfig::parallelism`] so
    /// the hot-path scans (oracle build, donor scans, verification scans)
    /// pick the configured width up from thread-local state; the per-cell
    /// imputation loop itself stays sequential because each imputation can
    /// turn the imputed tuple into a donor for the next cell.
    pub(crate) fn impute_rows(
        &self,
        rel: &Relation,
        sigma: &RfdSet,
        row_range: std::ops::Range<usize>,
    ) -> ImputationResult {
        match rayon::ThreadPoolBuilder::new()
            .num_threads(self.config.parallelism)
            .build()
        {
            Ok(pool) => pool.install(|| self.impute_rows_inner(rel, sigma, row_range)),
            // Pool construction can fail when the OS refuses new threads;
            // the inner run needs none — the scans detect the missing pool
            // and take their sequential paths.
            Err(_) => self.impute_rows_inner(rel, sigma, row_range),
        }
    }

    fn impute_rows_inner(
        &self,
        rel: &Relation,
        sigma: &RfdSet,
        row_range: std::ops::Range<usize>,
    ) -> ImputationResult {
        let budget = &self.config.budget;
        let tracer = &self.config.tracer;
        let chunks_before = rayon::chunks_dispatched();
        let run_span = tracer.span("core::impute");
        tracer.event("run_start", run_span.id(), || {
            vec![
                ("subject", FieldValue::Str("impute")),
                ("rows", FieldValue::U64(rel.len() as u64)),
                ("attrs", FieldValue::U64(rel.arity() as u64)),
                ("missing", FieldValue::U64(rel.missing_count() as u64)),
                ("rfds", FieldValue::U64(sigma.len() as u64)),
            ]
        });
        let mut rel = rel.clone();
        // Dictionary-encode the text columns once; every distance query in
        // key detection, candidate generation, and verification becomes a
        // matrix lookup. Kept current after every imputation. Under a
        // tripped budget the build degrades column-wise to direct
        // computation (same answers, no cache).
        let mut oracle = DistanceOracle::build_traced(&rel, 3000, budget, tracer);
        // The similarity index prunes the `distance ≤ t` scans in key
        // detection, candidate generation, and verification — decisions
        // are identical with or without it (the superset contract in
        // `renuver_distance::index`). Kept current after every imputation,
        // like the oracle. Budget trips degrade construction per attribute
        // to the scan path.
        let mut index: Option<SimilarityIndex> = match self.config.index_mode {
            IndexMode::Scan => None,
            IndexMode::Indexed => {
                Some(SimilarityIndex::build_traced(&rel, &oracle, budget, tracer))
            }
            IndexMode::Auto => (rel.len() >= AUTO_MIN_ROWS)
                .then(|| SimilarityIndex::build_traced(&rel, &oracle, budget, tracer)),
        };
        let parts = self.impute_prepared(
            &mut rel,
            &mut oracle,
            &mut index,
            sigma,
            row_range,
            &run_span,
            chunks_before,
        );
        ImputationResult {
            relation: rel,
            imputed: parts.imputed,
            unimputed: parts.unimputed,
            outcomes: parts.outcomes,
            stats: parts.stats,
            trace: parts.trace,
            explains: parts.explains,
            budget: parts.budget,
        }
    }

    /// The core of [`Renuver::impute_rows_inner`] over *prebuilt* state:
    /// runs pre-processing (key partitioning) and the per-cell imputation
    /// loop against a relation whose oracle and index the caller already
    /// owns. This is the seam the serving [`crate::engine::Engine`] uses
    /// to answer requests without rebuilding the distance structures —
    /// the one-shot path above builds them fresh and delegates here, so
    /// both paths make bit-for-bit identical decisions by construction.
    ///
    /// `rel`, `oracle`, and `index` are mutated in place (imputations
    /// write cells and re-index them); `run_span` parents the emitted
    /// trace; `chunks_before` is the rayon chunk counter at run start
    /// (for the `parallel.chunks` gauge).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn impute_prepared(
        &self,
        rel: &mut Relation,
        oracle: &mut DistanceOracle,
        index: &mut Option<SimilarityIndex>,
        sigma: &RfdSet,
        row_range: std::ops::Range<usize>,
        run_span: &renuver_obs::Span,
        chunks_before: u64,
    ) -> PreparedParts {
        let budget = &self.config.budget;
        let tracer = &self.config.tracer;
        // Explain detail feeds both the result's `explains` vector and the
        // tracer's per-cell events; computing it is gated on either
        // consumer so disabled runs do no extra work.
        let explain_on = self.config.explain || tracer.is_enabled();
        let mut stats = ImputationStats::default();

        // Pre-processing (lines 1-6): Σ' = non-key RFDs; r̂ = incomplete
        // tuples. `active` tracks Σ' membership so key-RFDs can be
        // re-admitted after imputations (line 14 / Example 5.1). When the
        // budget cuts the key scan short, unchecked RFDs stay active.
        let (non_keys, keys, _keys_cut) = {
            let _span = run_span.child("core::partition_keys");
            sigma.partition_keys_budgeted_with(oracle, index.as_ref(), rel, budget)
        };
        stats.keys_filtered = keys.len();
        let mut active = vec![false; sigma.len()];
        for &i in &non_keys {
            active[i] = true;
        }
        let mut dormant_keys = keys;

        let mut incomplete = rel.incomplete_rows();
        incomplete.retain(|&row| row_range.contains(&row));
        let mut imputed = Vec::new();
        let mut unimputed = Vec::new();
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut explains: Vec<CellExplain> = Vec::new();
        let metrics = tracer.is_enabled().then(|| {
            let m = tracer.metrics();
            CoreMetrics {
                candidates_per_cell: m.histogram("core.candidates_per_cell"),
                verify_full: m.counter("core.verify_full"),
                verify_changed_rows: m.counter("core.verify_changed_rows"),
            }
        });
        // Rows imputed in this run — the witness neighborhood the degraded
        // verification rung restricts itself to.
        let mut touched: Vec<usize> = Vec::new();
        // Batch verification: witness and candidate scans shared between
        // cells with the same imputed attribute and LHS signature (see
        // `crate::batch`). Decisions are identical with the cache off.
        let mut cache = CellCache::new(self.config.batch_verify, sigma, rel.arity());

        // Imputation (lines 11-14): visit missing cells in the configured
        // order (paper default: tuple by tuple, attributes within). The
        // budget ladder per cell: full verify → (pressure ≥ degrade_at)
        // changed-cell neighborhood verify → (tripped) skip the rest.
        let cells_span = run_span.child("core::impute_cells");
        let cells = self.ordered_cells(rel, &incomplete);
        let mut outcomes: Vec<(Cell, CellOutcome)> = Vec::with_capacity(cells.len());
        for Cell { row, col: attr } in cells {
            {
                if !rel.is_missing(row, attr) {
                    continue;
                }
                let cell = Cell::new(row, attr);
                stats.missing_total += 1;
                if let Err(trip) = budget.check("core::cell") {
                    let outcome = if trip == BudgetTrip::Cancelled {
                        stats.cancelled += 1;
                        CellOutcome::Cancelled
                    } else {
                        stats.skipped_budget += 1;
                        CellOutcome::SkippedBudget
                    };
                    if self.config.trace {
                        trace.push(TraceEvent::LeftMissing { cell });
                    }
                    unimputed.push(cell);
                    stats.unimputed += 1;
                    outcomes.push((cell, outcome));
                    if explain_on && self.config.explain_sample.admits(stats.missing_total - 1, false)
                    {
                        let exp = CellExplain {
                            cell,
                            outcome,
                            clusters: 0,
                            candidates: 0,
                            generating_rfds: Vec::new(),
                            winner: None,
                            dried_up: Some(if outcome == CellOutcome::Cancelled {
                                DryReason::Cancelled
                            } else {
                                DryReason::Budget(trip)
                            }),
                        };
                        cells_span.event("cell", || cell_event_fields(&exp));
                        if self.config.explain {
                            explains.push(exp);
                        }
                    }
                    continue;
                }
                // The intermediate rung: close to the limit, verify only
                // against rows changed this run and stop re-examining keys.
                let degraded =
                    budget.is_limited() && budget.pressure() >= self.config.degrade_at;
                if self.config.trace {
                    trace.push(TraceEvent::CellStarted { cell });
                }
                if let Some(cm) = &metrics {
                    if degraded {
                        cm.verify_changed_rows.inc();
                    } else {
                        cm.verify_full.inc();
                    }
                }
                let CellAttempt {
                    imputed: written,
                    clusters,
                    candidates,
                    generating_rfds,
                    winner,
                    dried_up,
                } = self.impute_missing_value(
                    &mut *rel,
                    oracle,
                    index.as_ref(),
                    row,
                    attr,
                    sigma,
                    &active,
                    degraded.then_some(touched.as_slice()),
                    explain_on,
                    &mut stats,
                    &mut trace,
                    &mut cache,
                );
                if let Some(cm) = &metrics {
                    cm.candidates_per_cell.observe(candidates as u64);
                }
                let outcome = match written {
                    Some(cell_rec) => {
                        oracle.update_cell(rel, row, attr);
                        if let Some(ix) = index.as_mut() {
                            ix.update_cell(rel, row, attr);
                        }
                        cache.note_write(row, attr);
                        if self.config.trace {
                            trace.push(TraceEvent::Imputed {
                                cell: cell_rec.cell,
                                donor_row: cell_rec.donor_row,
                            });
                        }
                        imputed.push(cell_rec);
                        stats.imputed += 1;
                        outcomes.push((cell, CellOutcome::Imputed));
                        if !touched.contains(&row) {
                            touched.push(row);
                        }
                        // Line 14: an imputed value can turn a key-RFD into
                        // a usable one; only pairs involving `row` changed.
                        // The degraded rung skips this O(n·|keys|) scan.
                        if !self.config.skip_key_reevaluation && !degraded {
                            let reactivated_before = stats.keys_reactivated;
                            dormant_keys.retain(|&k| {
                                if stays_key_after_update_with_index(
                                    oracle,
                                    index.as_ref(),
                                    rel,
                                    sigma.get(k),
                                    row,
                                ) {
                                    true
                                } else {
                                    active[k] = true;
                                    stats.keys_reactivated += 1;
                                    false
                                }
                            });
                            if stats.keys_reactivated != reactivated_before {
                                // Σ' grew: cluster composition (and thus
                                // cached candidate lists) may change.
                                cache.bump_active();
                            }
                        }
                        CellOutcome::Imputed
                    }
                    None => {
                        if self.config.trace {
                            trace.push(TraceEvent::LeftMissing { cell });
                        }
                        unimputed.push(cell);
                        stats.unimputed += 1;
                        outcomes.push((cell, CellOutcome::NoCandidates));
                        CellOutcome::NoCandidates
                    }
                };
                if explain_on
                    && self
                        .config
                        .explain_sample
                        .admits(stats.missing_total - 1, outcome == CellOutcome::Imputed)
                {
                    let exp = CellExplain {
                        cell,
                        outcome,
                        clusters,
                        candidates,
                        generating_rfds,
                        winner,
                        dried_up,
                    };
                    cells_span.event("cell", || cell_event_fields(&exp));
                    if self.config.explain {
                        explains.push(exp);
                    }
                }
            }
        }

        drop(cells_span);

        // Roll the run counters into the metrics registry and bracket the
        // trace with the budget accounting and run summary.
        if tracer.is_enabled() {
            let m = tracer.metrics();
            m.counter("core.cells_imputed").add(stats.imputed as u64);
            m.counter("core.cells_no_candidates")
                .add((stats.unimputed - stats.skipped_budget - stats.cancelled) as u64);
            m.counter("core.cells_skipped_budget").add(stats.skipped_budget as u64);
            m.counter("core.cells_cancelled").add(stats.cancelled as u64);
            m.counter("core.candidates_scored").add(stats.candidates_scored as u64);
            m.counter("core.clusters_visited").add(stats.clusters_visited as u64);
            m.counter("core.verifications").add(stats.verifications as u64);
            m.counter("core.verification_failures")
                .add(stats.verification_failures as u64);
            m.counter("core.keys_reactivated").add(stats.keys_reactivated as u64);
            m.counter("core.batch_plans_built").add(cache.plans_built());
            m.counter("core.batch_plans_reused").add(cache.plans_reused());
            m.gauge("parallel.threads").set(rayon::current_num_threads() as u64);
            // Chunks dispatched by this run's parallel scans (the global
            // counter is monotonic; concurrent runs inflate each other's
            // deltas, which is acceptable for an aggregate gauge).
            m.gauge("parallel.chunks").set(rayon::chunks_dispatched() - chunks_before);
        }
        let mut report = budget.report();
        if tracer.is_enabled() {
            // Per-phase self-time attribution from the spans closed so
            // far (the still-open run span is excluded by construction).
            report.phases = renuver_obs::flamegraph::phase_totals(&tracer.records());
        }
        tracer.event("budget_report", run_span.id(), || {
            let mut fields = vec![
                ("ops", FieldValue::U64(report.ops)),
                ("tripped", FieldValue::Bool(report.tripped.is_some())),
            ];
            if let Some(trip) = report.tripped {
                fields.push(("trip", FieldValue::Str(trip.label())));
            }
            if let Some(phase) = report.tripped_at {
                fields.push(("phase", FieldValue::Str(phase)));
            }
            fields
        });
        tracer.event("run_end", run_span.id(), || {
            vec![
                ("subject", FieldValue::Str("impute")),
                ("imputed", FieldValue::U64(stats.imputed as u64)),
                ("unimputed", FieldValue::U64(stats.unimputed as u64)),
                ("missing", FieldValue::U64(stats.missing_total as u64)),
            ]
        });

        PreparedParts {
            imputed,
            unimputed,
            outcomes,
            stats,
            trace,
            explains,
            budget: report,
        }
    }

    /// Produces the missing cells of the given rows in the configured
    /// visiting order.
    fn ordered_cells(&self, rel: &Relation, rows: &[usize]) -> Vec<Cell> {
        let mut cells: Vec<Cell> = Vec::new();
        for &row in rows {
            for attr in 0..rel.arity() {
                if rel.is_missing(row, attr) {
                    cells.push(Cell::new(row, attr));
                }
            }
        }
        match self.config.imputation_order {
            ImputationOrder::RowMajor => {}
            ImputationOrder::ColumnMajor => {
                cells.sort_by_key(|c| (c.col, c.row));
            }
            ImputationOrder::FewestMissingFirst => {
                let mut per_row = vec![0usize; rel.len()];
                for c in &cells {
                    per_row[c.row] += 1;
                }
                cells.sort_by_key(|c| (per_row[c.row], c.row, c.col));
            }
        }
        cells
    }

    /// IMPUTE_MISSING_VALUE (Algorithm 2): walks the RHS-threshold clusters
    /// for `attr`, scoring and verifying candidates until one sticks.
    /// Returns the attempt record: the imputed cell when a candidate passed
    /// verification (the cell stays missing otherwise), always with the
    /// cluster/candidate counts, and — when `explain_on` — the generating
    /// RFDs, the winner's distance breakdown, and the dry-up reason.
    #[allow(clippy::too_many_arguments)]
    fn impute_missing_value(
        &self,
        rel: &mut Relation,
        oracle: &DistanceOracle,
        index: Option<&SimilarityIndex>,
        row: usize,
        attr: usize,
        sigma: &RfdSet,
        active: &[bool],
        restrict: Option<&[usize]>,
        explain_on: bool,
        stats: &mut ImputationStats,
        trace: &mut Vec<TraceEvent>,
        cache: &mut CellCache,
    ) -> CellAttempt {
        // RFD selection (Algorithm 1 lines 8-9), restricted to the active
        // Σ'. Clusters hold sigma indices (so explain records can name the
        // dependencies) and come back in ascending RHS-threshold order.
        let mut clusters: Vec<(f64, Vec<usize>)> = Vec::new();
        for (i, rfd) in sigma.iter().enumerate() {
            if !active[i] || rfd.rhs_attr() != attr {
                continue;
            }
            let thr = rfd.rhs_threshold();
            match clusters.iter_mut().find(|(t, _)| *t == thr) {
                Some((_, v)) => v.push(i),
                None => clusters.push((thr, vec![i])),
            }
        }
        // total_cmp, not partial_cmp().unwrap(): a NaN threshold (possible
        // with degenerate discovered RFDs) must not panic the engine.
        clusters.sort_by(|a, b| a.0.total_cmp(&b.0));
        if self.config.cluster_order == ClusterOrder::Descending {
            clusters.reverse();
        }
        let mut attempt = CellAttempt {
            imputed: None,
            clusters: clusters.len(),
            candidates: 0,
            generating_rfds: Vec::new(),
            winner: None,
            dried_up: None,
        };
        if clusters.is_empty() {
            attempt.dried_up = Some(DryReason::NoActiveRfds);
            return attempt;
        }

        // Verification runs against the FULL Σ, dormant keys included: the
        // imputation under test can itself create the first LHS-similar
        // pair of a key-RFD (Example 5.1) and violate it in the same stroke
        // — checking only Σ' would let that slip through. (Algorithm 4 is
        // handed Σ', but Definition 4.3 demands `r' ⊨ Σ`.) The plan hoists
        // the candidate-independent pair scans out of the candidate loop;
        // `VerifyPlan::admits` is equivalent to `is_faultless` on the
        // mutated relation. The degraded budget rung restricts the witness
        // scan to the rows this run already changed — a deliberate
        // weakening (violations against untouched rows go unseen) traded
        // for finishing more cells before the budget's hard stop.
        // The batch cache shares the plan's witness scans (and the cluster
        // loop's candidate scans below) between same-signature cells; the
        // degraded rung bypasses it — restricted witness lists depend on
        // the changed-rows set, not the signature.
        let cache_key = match restrict {
            None => cache.key_for(rel, row, attr),
            Some(_) => None,
        };
        let plan = match (&cache_key, restrict) {
            (Some(key), _) => cache.plan_for(
                key,
                oracle,
                index,
                rel,
                row,
                attr,
                sigma,
                self.config.verify_scope,
            ),
            (None, Some(rows)) => VerifyPlan::build_over(
                oracle,
                rel,
                row,
                attr,
                sigma.iter(),
                self.config.verify_scope,
                rows,
            ),
            (None, None) => VerifyPlan::build_with(
                oracle,
                index,
                rel,
                row,
                attr,
                sigma.iter(),
                self.config.verify_scope,
            ),
        };

        for (cluster_idx, (cluster_threshold, members)) in clusters.iter().enumerate() {
            stats.clusters_visited += 1;
            let rfds: Vec<&Rfd> = members.iter().map(|&i| sigma.get(i)).collect();
            let mut candidates = match &cache_key {
                Some(key) => cache.cluster_candidates(
                    key, cluster_idx, members, oracle, index, rel, row, attr, &rfds,
                ),
                None => find_candidate_tuples_with(oracle, index, rel, row, attr, &rfds),
            };
            stats.candidates_scored += candidates.len();
            attempt.candidates += candidates.len();
            if self.config.trace {
                trace.push(TraceEvent::ClusterVisited {
                    cell: Cell::new(row, attr),
                    rhs_threshold: *cluster_threshold,
                    candidates: candidates.len(),
                });
            }
            if explain_on {
                for cand in &candidates {
                    attempt.generating_rfds.push(members[cand.via]);
                }
            }
            sort_candidates(&mut candidates);
            if let Some(cap) = self.config.max_candidates_per_cluster {
                candidates.truncate(cap);
            }
            for (pos, cand) in candidates.iter().enumerate() {
                stats.verifications += 1;
                if plan.admits(oracle, rel, attr, cand.row) {
                    if explain_on {
                        // Explain detail for the winner, computed against
                        // the pre-imputation relation: the per-constraint
                        // distances whose mean is the winning score, and
                        // the gap to the next-ranked candidate.
                        let via_rfd = members[cand.via];
                        let lhs_distances = sigma
                            .get(via_rfd)
                            .lhs()
                            .iter()
                            .map(|c| {
                                oracle
                                    .distance_bounded(rel, c.attr, row, cand.row, c.threshold)
                                    .unwrap_or(f64::NAN)
                            })
                            .collect();
                        attempt.winner = Some(ExplainWinner {
                            donor_row: cand.row,
                            distance: cand.distance,
                            via_rfd,
                            lhs_distances,
                            runner_up_margin: candidates
                                .get(pos + 1)
                                .map(|next| next.distance - cand.distance),
                        });
                    }
                    let value = rel.value(cand.row, attr).clone();
                    rel.set_value(row, attr, value.clone());
                    attempt.imputed = Some(ImputedCell {
                        cell: Cell::new(row, attr),
                        value,
                        donor_row: cand.row,
                        distance: cand.distance,
                        cluster_threshold: *cluster_threshold,
                        via: rfds[cand.via].clone(),
                    });
                    attempt.generating_rfds.sort_unstable();
                    attempt.generating_rfds.dedup();
                    return attempt;
                }
                stats.verification_failures += 1;
                if self.config.trace {
                    trace.push(TraceEvent::CandidateRejected {
                        cell: Cell::new(row, attr),
                        donor_row: cand.row,
                        distance: cand.distance,
                    });
                }
            }
        }
        attempt.dried_up = Some(if attempt.candidates == 0 {
            DryReason::NoCandidates
        } else {
            DryReason::AllRejected
        });
        attempt.generating_rfds.sort_unstable();
        attempt.generating_rfds.dedup();
        attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VerifyScope;
    use renuver_data::{AttrType, Schema, Value};
    use renuver_rfd::Constraint;

    /// Table 2 sample: Name, City, Phone, Type, Class.
    fn restaurant_sample() -> Relation {
        let schema = Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Phone", AttrType::Text),
            ("Type", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        let t = |name: &str, city: Option<&str>, phone: Option<&str>, ty: Option<&str>, class: i64| {
            vec![
                Value::from(name),
                city.map(Value::from).unwrap_or(Value::Null),
                phone.map(Value::from).unwrap_or(Value::Null),
                ty.map(Value::from).unwrap_or(Value::Null),
                Value::Int(class),
            ]
        };
        Relation::new(
            schema,
            vec![
                t("Granita", Some("Malibu"), Some("310/456-0488"), Some("Californian"), 6),
                t("Chinois Main", Some("LA"), Some("310-392-9025"), Some("French"), 5),
                t("Citrus", Some("Los Angeles"), Some("213/857-0034"), Some("Californian"), 6),
                t("Citrus", Some("Los Angeles"), None, Some("Californian"), 6),
                t("Fenix", Some("Hollywood"), Some("213/848-6677"), None, 5),
                t("Fenix Argyle", None, Some("213/848-6677"), Some("French (new)"), 5),
                t("C. Main", Some("Los Angeles"), None, Some("French"), 5),
            ],
        )
        .unwrap()
    }

    /// The Figure 1 dependency set φ1..φ7.
    fn figure_1_sigma() -> RfdSet {
        RfdSet::from_vec(vec![
            // φ1: Name(≤8), Phone(≤0), Class(≤1) → Type(≤0)  [key]
            Rfd::new(
                vec![Constraint::new(0, 8.0), Constraint::new(2, 0.0), Constraint::new(4, 1.0)],
                Constraint::new(3, 0.0),
            ),
            // φ2: Class(≤0) → Type(≤5)
            Rfd::new(vec![Constraint::new(4, 0.0)], Constraint::new(3, 5.0)),
            // φ3: City(≤2) → Phone(≤2)
            Rfd::new(vec![Constraint::new(1, 2.0)], Constraint::new(2, 2.0)),
            // φ4: Name(≤4) → Phone(≤1)
            Rfd::new(vec![Constraint::new(0, 4.0)], Constraint::new(2, 1.0)),
            // φ5: Name(≤8), Phone(≤0) → City(≤9)
            Rfd::new(
                vec![Constraint::new(0, 8.0), Constraint::new(2, 0.0)],
                Constraint::new(1, 9.0),
            ),
            // φ6: Name(≤6), City(≤9) → Phone(≤0)
            Rfd::new(
                vec![Constraint::new(0, 6.0), Constraint::new(1, 9.0)],
                Constraint::new(2, 0.0),
            ),
            // φ7: Phone(≤1) → Class(≤0)
            Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0)),
        ])
    }

    #[test]
    fn doc_example_city_zip() {
        let schema =
            Schema::new([("City", AttrType::Text), ("Zip", AttrType::Text)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec!["Salerno".into(), "84084".into()],
                vec!["Salerno".into(), Value::Null],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        assert_eq!(result.relation.value(1, 1), &Value::Text("84084".into()));
        assert_eq!(result.stats.imputed, 1);
        assert_eq!(result.stats.missing_total, 1);
    }

    #[test]
    fn figure_1_t7_phone_gets_t2_value() {
        // The paper's walk-through: imputing t7[Phone] first tries t3's
        // phone (dist 3), which φ7 rejects, then accepts t2's phone
        // (dist 7.5).
        let rel = restaurant_sample();
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &figure_1_sigma());
        let cell = Cell::new(6, 2);
        let imputed = result.imputed.iter().find(|c| c.cell == cell);
        let imputed = imputed.expect("t7[Phone] should be imputed");
        assert_eq!(imputed.value, Value::Text("310-392-9025".into()));
        assert_eq!(imputed.donor_row, 1);
        assert_eq!(imputed.distance, 7.5);
        // The justifying RFD recorded via `Candidate::via` must be one of
        // the cluster's Phone-RHS dependencies, resolved through the
        // cluster-slice index (not a candidate-list position).
        assert_eq!(imputed.via.rhs_attr(), 2);
        assert!(figure_1_sigma().iter().any(|r| *r == imputed.via));
        // At least one verification failed along the way (t3 rejected).
        assert!(result.stats.verification_failures >= 1);
    }

    #[test]
    fn input_relation_untouched() {
        let rel = restaurant_sample();
        let before = rel.clone();
        let _ = Renuver::new(RenuverConfig::default()).impute(&rel, &figure_1_sigma());
        assert_eq!(rel, before);
    }

    #[test]
    fn no_rfds_means_nothing_imputed() {
        let rel = restaurant_sample();
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &RfdSet::new());
        assert_eq!(result.stats.imputed, 0);
        assert_eq!(result.stats.unimputed, result.stats.missing_total);
        assert_eq!(result.relation.missing_count(), rel.missing_count());
    }

    #[test]
    fn complete_relation_is_noop() {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(3), Value::Int(4)]],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 1.0)],
            Constraint::new(1, 1.0),
        )]);
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        assert_eq!(result.stats.missing_total, 0);
        assert_eq!(result.relation, rel);
    }

    #[test]
    fn imputed_tuple_becomes_candidate() {
        // Row 1 misses B; row 2 misses B and only matches row 1 on A.
        // Once row 1 is imputed from row 0, row 2 can be imputed from row 1.
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(10), Value::Int(5)],
                vec![Value::Int(10), Value::Null],
                vec![Value::Int(11), Value::Null],
            ],
        )
        .unwrap();
        // A(≤0) → B(≤0) fills row 1 from row 0; A(≤1) → B(≤2) then lets
        // row 2 borrow from rows 0/1.
        let rfds = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
            Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(1, 2.0)),
        ]);
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        assert_eq!(result.stats.imputed, 2);
        assert_eq!(result.relation.value(1, 1), &Value::Int(5));
        assert_eq!(result.relation.value(2, 1), &Value::Int(5));
    }

    #[test]
    fn inconsistent_candidates_left_missing() {
        // Both potential donors for row 2's B trip the guard
        // B(≤0) → C(≤0) — equal B values with distant C values — so the
        // cell stays missing (Section 4: better unimputed than wrong).
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("B", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(100), Value::Int(7)],
                vec![Value::Int(1), Value::Int(200), Value::Int(8)],
                vec![Value::Int(1), Value::Null, Value::Int(9)],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![
            // Candidate generator: A(≤0) → B(≤200).
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 200.0)),
            // Consistency guard with B on the LHS: B(≤0) → C(≤0). Imputing
            // row 2 with either donor's B makes it B-equal to a row whose C
            // differs from row 2's.
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
        ]);
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        assert_eq!(result.stats.imputed, 0);
        assert!(result.relation.is_missing(2, 1));
        assert_eq!(result.unimputed, vec![Cell::new(2, 1)]);
        assert_eq!(result.stats.verification_failures, 2);
    }

    #[test]
    fn full_scope_rejects_what_lhs_only_accepts() {
        // A(≤1) → B(≤100) with non-transitive LHS similarity: row 2 (A=1)
        // is within distance 1 of both row 0 (A=0, B=0) and row 1 (A=2,
        // B=500), which are NOT similar to each other — so the dependency
        // holds on the input. Either candidate value for row 2's B puts it
        // within 1 of a tuple whose B is 500 away. LhsOnly (Algorithm 4
        // literal, B not on any LHS) accepts the first candidate; Full
        // (Definition 4.3) rejects both.
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(0), Value::Int(0)],
                vec![Value::Int(2), Value::Int(500)],
                vec![Value::Int(1), Value::Null],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 1.0)],
            Constraint::new(1, 100.0),
        )]);
        let full = Renuver::new(RenuverConfig {
            verify_scope: VerifyScope::Full,
            ..RenuverConfig::default()
        })
        .impute(&rel, &rfds);
        assert_eq!(full.stats.imputed, 0);
        assert_eq!(full.stats.verification_failures, 2);
        let lhs_only = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        assert_eq!(lhs_only.stats.imputed, 1);
        assert_eq!(lhs_only.relation.value(2, 1), &Value::Int(0));
    }

    #[test]
    fn key_reactivation_enables_late_imputation() {
        // Schema (A, C, B). φ_c: C(≤0) → B(≤0) starts as a key: row 1's C is
        // missing and rows 0/2 have distinct C. φ_a: A(≤0) → C(≤0) fills
        // row 1's C from row 0 (A=1), turning φ_c non-key (Example 5.1);
        // φ_c then fills row 1's B — processed after C in column order.
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("C", AttrType::Int),
            ("B", AttrType::Int),
        ])
        .unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(9), Value::Int(40)],
                vec![Value::Int(1), Value::Null, Value::Null],
                vec![Value::Int(5), Value::Int(8), Value::Int(77)],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
        ]);
        let with = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        assert_eq!(with.stats.imputed, 2);
        assert_eq!(with.relation.value(1, 1), &Value::Int(9));
        assert_eq!(with.relation.value(1, 2), &Value::Int(40));
        assert_eq!(with.stats.keys_reactivated, 1);
        assert_eq!(with.stats.keys_filtered, 1);

        // With re-evaluation disabled, B stays missing.
        let without = Renuver::new(RenuverConfig {
            skip_key_reevaluation: true,
            ..RenuverConfig::default()
        })
        .impute(&rel, &rfds);
        assert_eq!(without.relation.value(1, 1), &Value::Int(9));
        assert!(without.relation.is_missing(1, 2));
    }

    #[test]
    fn candidate_cap_limits_verifications() {
        let rel = restaurant_sample();
        let capped = Renuver::new(RenuverConfig {
            max_candidates_per_cluster: Some(1),
            ..RenuverConfig::default()
        })
        .impute(&rel, &figure_1_sigma());
        let uncapped = Renuver::new(RenuverConfig::default()).impute(&rel, &figure_1_sigma());
        assert!(capped.stats.verifications <= uncapped.stats.verifications);
    }

    #[test]
    fn incremental_imputes_only_appended_rows() {
        // Two batches: the base instance has a missing value of its own,
        // which incremental imputation must leave alone.
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Null], // pre-existing hole
                // appended batch:
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(9), Value::Int(90)],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 1.0)],
            Constraint::new(1, 0.0),
        )]);
        let result = Renuver::new(RenuverConfig::default()).impute_appended(&rel, 2, &rfds);
        assert_eq!(result.stats.missing_total, 1); // only the appended hole
        assert_eq!(result.relation.value(2, 1), &Value::Int(10));
        assert!(result.relation.is_missing(1, 1)); // old hole untouched
    }

    #[test]
    fn incremental_with_empty_batch_is_noop() {
        let schema = Schema::new([("A", AttrType::Int)]).unwrap();
        let rel = Relation::new(schema, vec![vec![Value::Null]]).unwrap();
        let result = Renuver::new(RenuverConfig::default()).impute_appended(
            &rel,
            rel.len(),
            &RfdSet::new(),
        );
        assert_eq!(result.stats.missing_total, 0);
        assert_eq!(result.relation, rel);
    }

    #[test]
    fn imputation_orders_visit_all_cells() {
        use crate::config::ImputationOrder;
        let rel = restaurant_sample();
        let sigma = figure_1_sigma();
        for order in [
            ImputationOrder::RowMajor,
            ImputationOrder::ColumnMajor,
            ImputationOrder::FewestMissingFirst,
        ] {
            let result = Renuver::new(RenuverConfig {
                imputation_order: order,
                ..RenuverConfig::default()
            })
            .impute(&rel, &sigma);
            assert_eq!(result.stats.missing_total, rel.missing_count(), "{order:?}");
            assert_eq!(
                result.stats.imputed + result.stats.unimputed,
                result.stats.missing_total,
                "{order:?}"
            );
        }
    }

    #[test]
    fn fewest_missing_first_can_unlock_chains() {
        // Row 1 misses only B (easy); row 2 misses B and C. Row-major hits
        // row 1 first anyway here, so instead demonstrate the order is
        // honored: column-major imputes all B cells before any C cell,
        // which the donor chain B→C requires in this construction.
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("B", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                // C missing and B missing; C's donor needs row 1's B first.
                vec![Value::Int(1), Value::Null, Value::Null],
            ],
        )
        .unwrap();
        let sigma = RfdSet::from_vec(vec![
            // A(≤0) → B(≤0) fills B; B(≤0) → C(≤0) then fills C.
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
        ]);
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);
        assert_eq!(result.stats.imputed, 2);
        assert_eq!(result.relation.value(1, 2), &Value::Int(100));
    }

    #[test]
    fn trace_records_the_walkthrough() {
        let rel = restaurant_sample();
        let traced = Renuver::new(RenuverConfig { trace: true, ..RenuverConfig::default() })
            .impute(&rel, &figure_1_sigma());
        use crate::result::TraceEvent as E;
        // One CellStarted per missing value, one terminal event each.
        let started = traced.trace.iter().filter(|e| matches!(e, E::CellStarted { .. })).count();
        assert_eq!(started, rel.missing_count());
        let terminal = traced
            .trace
            .iter()
            .filter(|e| matches!(e, E::Imputed { .. } | E::LeftMissing { .. }))
            .count();
        assert_eq!(terminal, rel.missing_count());
        // t7[Phone]'s rejection of donor t3 (distance 3) is in the log.
        assert!(traced.trace.iter().any(|e| matches!(
            e,
            E::CandidateRejected { cell, donor_row: 2, distance } if *cell == Cell::new(6, 2) && *distance == 3.0
        )), "{:#?}", traced.trace);
        // Rejections in the log match the counter.
        let rejected = traced
            .trace
            .iter()
            .filter(|e| matches!(e, E::CandidateRejected { .. }))
            .count();
        assert_eq!(rejected, traced.stats.verification_failures);
        // Untraced runs have an empty log and identical outcomes.
        let plain = Renuver::new(RenuverConfig::default()).impute(&rel, &figure_1_sigma());
        assert!(plain.trace.is_empty());
        assert_eq!(plain.relation, traced.relation);
    }

    #[test]
    fn explain_records_account_for_every_cell() {
        let rel = restaurant_sample();
        let sigma = figure_1_sigma();
        let tracer = renuver_obs::Tracer::enabled();
        let cfg = RenuverConfig {
            tracer: tracer.clone(),
            explain: true,
            ..RenuverConfig::default()
        };
        let r = Renuver::new(cfg).impute(&rel, &sigma);
        assert_eq!(r.explains.len(), r.stats.missing_total);
        for e in &r.explains {
            match e.outcome {
                CellOutcome::Imputed => {
                    // The winner matches the provenance record, names its
                    // sigma index, and its LHS distance vector averages to
                    // the winning score.
                    let w = e.winner.as_ref().expect("imputed cell has a winner");
                    let ic = r.imputed.iter().find(|c| c.cell == e.cell).unwrap();
                    assert_eq!(w.donor_row, ic.donor_row);
                    assert_eq!(w.distance, ic.distance);
                    assert_eq!(sigma.get(w.via_rfd), &ic.via);
                    let mean =
                        w.lhs_distances.iter().sum::<f64>() / w.lhs_distances.len() as f64;
                    assert!((mean - w.distance).abs() < 1e-9, "{e:?}");
                    assert!(e.generating_rfds.contains(&w.via_rfd));
                    assert!(e.dried_up.is_none());
                }
                _ => {
                    assert!(e.winner.is_none());
                    assert!(e.dried_up.is_some(), "{e:?}");
                }
            }
        }
        // One `cell` trace event per missing cell.
        let cell_events = tracer.records().iter().filter(|rec| rec.kind == "cell").count();
        assert_eq!(cell_events, r.stats.missing_total);
        // Tracing + explain change no decision.
        let plain = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);
        assert_eq!(plain.relation, r.relation);
        assert_eq!(plain.outcomes, r.outcomes);
        assert_eq!(plain.stats, r.stats);
        assert!(plain.explains.is_empty(), "explain is opt-in");
    }

    #[test]
    fn t7_phone_explain_names_the_race() {
        // The walk-through cell t7[Phone]: donor t2 wins at distance 7.5
        // after t3 (distance 3) is rejected — so the winner's runner-up
        // margin, if any, is measured from 7.5, and φ6 generated both
        // candidates.
        let rel = restaurant_sample();
        let sigma = figure_1_sigma();
        let cfg = RenuverConfig { explain: true, ..RenuverConfig::default() };
        let r = Renuver::new(cfg).impute(&rel, &sigma);
        let e = r.explains.iter().find(|e| e.cell == Cell::new(6, 2)).unwrap();
        assert_eq!(e.outcome, CellOutcome::Imputed);
        assert!(e.candidates >= 2, "{e:?}");
        let w = e.winner.as_ref().unwrap();
        assert_eq!(w.donor_row, 1);
        assert_eq!(w.distance, 7.5);
        assert_eq!(sigma.get(w.via_rfd).rhs_attr(), 2);
    }

    #[test]
    fn dry_reasons_distinguish_no_rfds_no_candidates_and_rejections() {
        use renuver_budget::BudgetTrip;
        // (a) All candidates rejected by the consistency guard.
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("B", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        let rel = Relation::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Int(100), Value::Int(7)],
                vec![Value::Int(1), Value::Int(200), Value::Int(8)],
                vec![Value::Int(1), Value::Null, Value::Int(9)],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 200.0)),
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
        ]);
        let cfg = RenuverConfig { explain: true, ..RenuverConfig::default() };
        let r = Renuver::new(cfg.clone()).impute(&rel, &rfds);
        assert_eq!(r.explains[0].dried_up, Some(DryReason::AllRejected));
        assert_eq!(r.explains[0].candidates, 2);

        // (b) No active RFD targets the attribute at all.
        let rel_b = Relation::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Int(2), Value::Int(5)],
            ],
        )
        .unwrap();
        let only_b =
            RfdSet::from_vec(vec![Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0))]);
        let r = Renuver::new(cfg.clone()).impute(&rel_b, &only_b);
        assert_eq!(r.explains[0].dried_up, Some(DryReason::NoActiveRfds));
        assert_eq!(r.explains[0].clusters, 0);

        // (c) Clusters exist but match no donor: rows 1 and 2 keep the RFD
        // non-key (they are LHS-similar with equal C), but neither is
        // A-similar to the target row 0.
        let rel_c = Relation::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Null],
                vec![Value::Int(50), Value::Int(2), Value::Int(5)],
                vec![Value::Int(50), Value::Int(3), Value::Int(5)],
            ],
        )
        .unwrap();
        let tight =
            RfdSet::from_vec(vec![Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(2, 0.0))]);
        let r = Renuver::new(cfg.clone()).impute(&rel_c, &tight);
        assert_eq!(r.explains[0].dried_up, Some(DryReason::NoCandidates));
        assert!(r.explains[0].clusters > 0 && r.explains[0].candidates == 0);

        // (d) Budget trips before the cell: the explain names the trip.
        let skipped = Renuver::new(RenuverConfig {
            budget: renuver_budget::Budget::unlimited().with_ops_limit(0),
            parallelism: 1,
            ..cfg
        })
        .impute(&rel, &rfds);
        assert_eq!(skipped.explains.len(), skipped.stats.missing_total);
        assert!(skipped
            .explains
            .iter()
            .all(|e| e.dried_up == Some(DryReason::Budget(BudgetTrip::Ops))));
    }

    #[test]
    fn traced_run_emits_spans_and_run_brackets() {
        let rel = restaurant_sample();
        let tracer = renuver_obs::Tracer::enabled();
        let cfg = RenuverConfig { tracer: tracer.clone(), ..RenuverConfig::default() };
        let _ = Renuver::new(cfg).impute(&rel, &figure_1_sigma());
        let records = tracer.records();
        let labels: Vec<&str> = records
            .iter()
            .filter(|r| r.kind == "span")
            .filter_map(|r| {
                r.fields.iter().find(|(n, _)| *n == "label").map(|(_, v)| match v {
                    renuver_obs::FieldValue::Str(s) => *s,
                    _ => "",
                })
            })
            .collect();
        for want in
            ["core::impute", "core::partition_keys", "core::impute_cells", "distance::oracle_build"]
        {
            assert!(labels.contains(&want), "missing span {want}: {labels:?}");
        }
        for kind in ["run_start", "run_end", "budget_report"] {
            assert_eq!(records.iter().filter(|r| r.kind == kind).count(), 1, "{kind}");
        }
        // The whole trace validates against the schema.
        let text = tracer.to_jsonl();
        renuver_obs::schema::validate_trace(&text).unwrap();
        // Run counters landed in the registry.
        let m = tracer.metrics();
        assert!(m.counter("core.cells_imputed").get() > 0);
        assert_eq!(m.counter("core.verify_full").get() as usize, rel.missing_count());
    }

    #[test]
    fn stats_are_consistent() {
        let rel = restaurant_sample();
        let r = Renuver::new(RenuverConfig::default()).impute(&rel, &figure_1_sigma());
        assert_eq!(r.stats.missing_total, rel.missing_count());
        assert_eq!(r.stats.imputed + r.stats.unimputed, r.stats.missing_total);
        assert_eq!(r.imputed.len(), r.stats.imputed);
        assert_eq!(r.unimputed.len(), r.stats.unimputed);
        assert_eq!(
            r.relation.missing_count(),
            rel.missing_count() - r.stats.imputed
        );
    }

    #[test]
    fn outcomes_cover_every_missing_cell() {
        let rel = restaurant_sample();
        let r = Renuver::new(RenuverConfig::default()).impute(&rel, &figure_1_sigma());
        assert_eq!(r.outcomes.len(), r.stats.missing_total);
        let imputed =
            r.outcomes.iter().filter(|(_, o)| *o == CellOutcome::Imputed).count();
        assert_eq!(imputed, r.stats.imputed);
        let no_cand =
            r.outcomes.iter().filter(|(_, o)| *o == CellOutcome::NoCandidates).count();
        assert_eq!(no_cand, r.stats.unimputed);
        // An unlimited run trips nothing.
        assert_eq!(r.stats.skipped_budget, 0);
        assert_eq!(r.stats.cancelled, 0);
        assert!(r.budget.tripped.is_none());
    }

    #[test]
    fn exhausted_budget_skips_cells_but_stays_consistent() {
        // A zero-op budget trips before the first cell: everything is
        // skipped, the stats invariant holds, and the report names the
        // trip site.
        let rel = restaurant_sample();
        let cfg = RenuverConfig {
            budget: renuver_budget::Budget::unlimited().with_ops_limit(0),
            parallelism: 1,
            ..RenuverConfig::default()
        };
        let r = Renuver::new(cfg).impute(&rel, &figure_1_sigma());
        assert_eq!(r.stats.imputed, 0);
        assert_eq!(r.stats.unimputed, rel.missing_count());
        assert_eq!(r.stats.skipped_budget, rel.missing_count());
        assert!(r
            .outcomes
            .iter()
            .all(|(_, o)| *o == CellOutcome::SkippedBudget));
        assert_eq!(r.stats.imputed + r.stats.unimputed, r.stats.missing_total);
        assert_eq!(r.budget.tripped, Some(renuver_budget::BudgetTrip::Ops));
        assert!(r.budget.tripped_at.is_some());
        // The input is returned unchanged (minus nothing).
        assert_eq!(r.relation.missing_count(), rel.missing_count());
    }

    #[test]
    fn cancelled_run_reports_cancelled_cells() {
        let rel = restaurant_sample();
        let budget = renuver_budget::Budget::unlimited();
        budget.cancel();
        let cfg =
            RenuverConfig { budget, parallelism: 1, ..RenuverConfig::default() };
        let r = Renuver::new(cfg).impute(&rel, &figure_1_sigma());
        assert_eq!(r.stats.imputed, 0);
        assert_eq!(r.stats.cancelled, rel.missing_count());
        assert!(r.outcomes.iter().all(|(_, o)| *o == CellOutcome::Cancelled));
        assert_eq!(r.budget.tripped, Some(renuver_budget::BudgetTrip::Cancelled));
    }

    #[test]
    fn budget_limited_runs_are_deterministic() {
        // Two runs under the same finite ops budget at parallelism = 1 make
        // bit-for-bit identical decisions. Ops limits are deterministic
        // (unlike wall-clock deadlines), so the trip lands on the same cell.
        let rel = restaurant_sample();
        let sigma = figure_1_sigma();
        // Calibrate the limit off an unlimited run's checkpoint count: half
        // of it always trips mid-run (the per-cell checks come last), so the
        // test keeps exercising the budget path even as check density
        // evolves.
        let full = {
            let cfg = RenuverConfig { parallelism: 1, ..RenuverConfig::default() };
            Renuver::new(cfg).impute(&rel, &sigma)
        };
        let limit = full.budget.ops / 2;
        let run = || {
            let cfg = RenuverConfig {
                budget: renuver_budget::Budget::unlimited().with_ops_limit(limit),
                parallelism: 1,
                ..RenuverConfig::default()
            };
            Renuver::new(cfg).impute(&rel, &sigma)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // The limit is tight enough that something was actually skipped —
        // otherwise this test wouldn't exercise the budget path at all.
        assert!(a.stats.skipped_budget > 0, "{:?}", a.stats);
    }

    #[test]
    fn degraded_mode_still_imputes() {
        // degrade_at = 0.0 forces the changed-cell-neighborhood rung for
        // every cell of a limited (but never-tripping) run. The doc example
        // still fills its cell: restricted verification only weakens
        // rejection, never acceptance.
        let schema =
            Schema::new([("City", AttrType::Text), ("Zip", AttrType::Text)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec!["Salerno".into(), "84084".into()],
                vec!["Salerno".into(), Value::Null],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let cfg = RenuverConfig {
            budget: renuver_budget::Budget::unlimited().with_ops_limit(1_000_000),
            degrade_at: 0.0,
            parallelism: 1,
            ..RenuverConfig::default()
        };
        let result = Renuver::new(cfg).impute(&rel, &rfds);
        assert_eq!(result.relation.value(1, 1), &Value::Text("84084".into()));
        assert_eq!(result.stats.imputed, 1);
    }
}
