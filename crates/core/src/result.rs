//! Imputation outputs: the repaired relation, per-cell outcomes, counters.

use renuver_budget::{BudgetReport, BudgetTrip};
use renuver_data::{Cell, Relation, Value};
use renuver_rfd::Rfd;

/// What happened to one missing cell — the per-cell taxonomy of a
/// (possibly budget-limited) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellOutcome {
    /// A consistent candidate was found and written.
    Imputed,
    /// The cell was attempted but no candidate passed verification (or no
    /// active RFD could generate one); left missing, per Section 4.
    NoCandidates,
    /// The budget tripped before this cell was attempted; left missing.
    SkippedBudget,
    /// Cancellation was requested before this cell was attempted; left
    /// missing.
    Cancelled,
}

impl CellOutcome {
    /// Machine-readable label, matching `renuver_obs::schema::OUTCOMES`.
    pub fn label(self) -> &'static str {
        match self {
            CellOutcome::Imputed => "imputed",
            CellOutcome::NoCandidates => "no_candidates",
            CellOutcome::SkippedBudget => "skipped_budget",
            CellOutcome::Cancelled => "cancelled",
        }
    }
}

/// The first reason a cell's candidate search dried up, in pipeline order:
/// no dependency could even target the attribute, the dependencies matched
/// no donor, every donor failed verification, or the budget/cancellation
/// cut the attempt off before it began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DryReason {
    /// No active RFD has the cell's attribute on its RHS — Algorithm 2
    /// had no cluster to walk.
    NoActiveRfds,
    /// Clusters existed but produced zero plausible candidates
    /// (Algorithm 3 returned empty for every cluster).
    NoCandidates,
    /// Candidates were generated and ranked, but every one failed
    /// IS_FAULTLESS.
    AllRejected,
    /// The budget tripped before the cell was attempted.
    Budget(BudgetTrip),
    /// The run was cancelled before the cell was attempted.
    Cancelled,
}

impl DryReason {
    /// Machine-readable label, matching `renuver_obs::schema::DRY_REASONS`.
    pub fn label(self) -> &'static str {
        match self {
            DryReason::NoActiveRfds => "no_active_rfds",
            DryReason::NoCandidates => "no_candidates",
            DryReason::AllRejected => "all_rejected",
            DryReason::Budget(_) => "budget",
            DryReason::Cancelled => "cancelled",
        }
    }
}

/// The winning candidate of an imputed cell, in explain detail: not just
/// who donated (that is [`ImputedCell`]) but *how close the race was* and
/// the per-attribute distance breakdown behind the score.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainWinner {
    /// The accepted donor row.
    pub donor_row: usize,
    /// The winning Equation 2 distance value.
    pub distance: f64,
    /// Index into the run's `sigma` of the RFD that achieved the minimum
    /// distance (the same dependency as [`ImputedCell::via`], by
    /// position rather than by value).
    pub via_rfd: usize,
    /// Per-LHS-constraint distances between the imputed tuple and the
    /// donor, in `via_rfd`'s LHS order — the terms whose mean is
    /// `distance`.
    pub lhs_distances: Vec<f64>,
    /// Distance gap to the next-ranked candidate of the winning cluster
    /// (`next.distance - winner.distance`), or `None` when the winner was
    /// the cluster's last candidate. Small margins flag coin-flip
    /// imputations; the gap is non-negative except after a NaN distance.
    pub runner_up_margin: Option<f64>,
}

/// Per-cell explain record (collected when
/// [`crate::config::RenuverConfig::explain`] is set): which dependencies
/// produced candidates, who won and by how much, or why the search dried
/// up. One record per missing cell, in visiting order — `explains` always
/// accounts for exactly the cells counted by
/// [`ImputationStats::missing_total`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellExplain {
    /// The missing cell.
    pub cell: Cell,
    /// What happened to it.
    pub outcome: CellOutcome,
    /// RHS-threshold clusters available for the cell's attribute.
    pub clusters: usize,
    /// Candidates scored across all clusters (before any
    /// `max_candidates_per_cluster` cap).
    pub candidates: usize,
    /// Sigma indices of the RFDs credited with generating candidates —
    /// each candidate is attributed to the dependency achieving its
    /// minimum distance. Sorted, deduplicated.
    pub generating_rfds: Vec<usize>,
    /// The winning candidate, when the cell was imputed.
    pub winner: Option<ExplainWinner>,
    /// Why the cell stayed missing, when it did.
    pub dried_up: Option<DryReason>,
}

/// One successfully imputed cell, with full provenance: where the value
/// came from, how close the donor was, and which dependency justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputedCell {
    /// The cell that was filled.
    pub cell: Cell,
    /// The value written into it.
    pub value: Value,
    /// Row of the candidate tuple the value was taken from.
    pub donor_row: usize,
    /// The Equation 2 distance value of the chosen candidate.
    pub distance: f64,
    /// RHS threshold of the cluster that produced the candidate.
    pub cluster_threshold: f64,
    /// The RFD whose LHS similarity selected the donor (the one achieving
    /// the minimum distance value in the winning cluster).
    pub via: Rfd,
}

/// One event of the imputation trace (collected when
/// [`crate::config::RenuverConfig::trace`] is set).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Work on a missing cell began.
    CellStarted {
        /// The missing cell.
        cell: Cell,
    },
    /// A threshold cluster was searched.
    ClusterVisited {
        /// The cell under imputation.
        cell: Cell,
        /// The cluster's RHS threshold.
        rhs_threshold: f64,
        /// Plausible candidates the cluster produced.
        candidates: usize,
    },
    /// A ranked candidate failed IS_FAULTLESS.
    CandidateRejected {
        /// The cell under imputation.
        cell: Cell,
        /// The rejected donor row.
        donor_row: usize,
        /// The candidate's distance value.
        distance: f64,
    },
    /// The cell was filled.
    Imputed {
        /// The cell.
        cell: Cell,
        /// The accepted donor row.
        donor_row: usize,
    },
    /// Every candidate failed; the cell stays missing.
    LeftMissing {
        /// The cell.
        cell: Cell,
    },
}

/// Counters describing the work an imputation run performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImputationStats {
    /// Missing values present in the input.
    pub missing_total: usize,
    /// Missing values successfully filled.
    pub imputed: usize,
    /// Missing values left unfilled (no consistent candidate found).
    pub unimputed: usize,
    /// Candidate tuples scored across all clusters (Algorithm 3 output
    /// rows).
    pub candidates_scored: usize,
    /// Candidate values submitted to IS_FAULTLESS.
    pub verifications: usize,
    /// Verifications that found a violation (candidate rejected).
    pub verification_failures: usize,
    /// Clusters visited across all missing values.
    pub clusters_visited: usize,
    /// Key-RFDs re-admitted to `Σ'` after an imputation (Example 5.1).
    pub keys_reactivated: usize,
    /// RFDs classified as keys during pre-processing.
    pub keys_filtered: usize,
    /// Cells skipped because the budget tripped (a subset of `unimputed`).
    pub skipped_budget: usize,
    /// Cells skipped because the run was cancelled (a subset of
    /// `unimputed`).
    pub cancelled: usize,
}

/// Result of a RENUVER run.
///
/// `PartialEq` compares every decision the run made — relation contents,
/// per-cell provenance, outcomes, counters, and trace — which is what the
/// parallel-vs-sequential determinism tests rely on. The [`BudgetReport`]
/// is deliberately *excluded*: it carries wall-clock and peak-memory
/// readings that differ between otherwise identical runs.
#[derive(Debug, Clone)]
pub struct ImputationResult {
    /// The relation after imputation (`r'`). Cells that could not be
    /// consistently imputed are left missing, per Section 4.
    pub relation: Relation,
    /// Successfully imputed cells, in imputation order.
    pub imputed: Vec<ImputedCell>,
    /// Cells left missing.
    pub unimputed: Vec<Cell>,
    /// Per-cell outcome for every missing cell of the run, in visiting
    /// order.
    pub outcomes: Vec<(Cell, CellOutcome)>,
    /// Work counters.
    pub stats: ImputationStats,
    /// Event log, populated only when the engine's `trace` flag is set
    /// (empty otherwise).
    pub trace: Vec<TraceEvent>,
    /// Per-cell explain records, populated only when the engine's
    /// `explain` flag is set (empty otherwise). When present, one record
    /// per missing cell in visiting order.
    pub explains: Vec<CellExplain>,
    /// Budget snapshot at the end of the run: elapsed time, peak bytes,
    /// and — when limited — which limit tripped and where.
    pub budget: BudgetReport,
}

impl PartialEq for ImputationResult {
    fn eq(&self, other: &Self) -> bool {
        self.relation == other.relation
            && self.imputed == other.imputed
            && self.unimputed == other.unimputed
            && self.outcomes == other.outcomes
            && self.stats == other.stats
            && self.trace == other.trace
            && self.explains == other.explains
    }
}

impl ImputationResult {
    /// Fraction of originally missing cells that were filled
    /// (0 when there was nothing to fill).
    pub fn fill_rate(&self) -> f64 {
        if self.stats.missing_total == 0 {
            0.0
        } else {
            self.stats.imputed as f64 / self.stats.missing_total as f64
        }
    }

    /// Looks up the imputed value for `cell`, if that cell was filled.
    pub fn value_for(&self, cell: Cell) -> Option<&Value> {
        self.imputed
            .iter()
            .find(|ic| ic.cell == cell)
            .map(|ic| &ic.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema};

    #[test]
    fn fill_rate() {
        let schema = Schema::new([("A", AttrType::Int)]).unwrap();
        let rel = Relation::empty(schema);
        let mut res = ImputationResult {
            relation: rel,
            imputed: vec![],
            unimputed: vec![],
            outcomes: vec![],
            stats: ImputationStats::default(),
            trace: vec![],
            explains: vec![],
            budget: BudgetReport::default(),
        };
        assert_eq!(res.fill_rate(), 0.0);
        res.stats.missing_total = 4;
        res.stats.imputed = 3;
        assert_eq!(res.fill_rate(), 0.75);
    }

    #[test]
    fn value_for_lookup() {
        let schema = Schema::new([("A", AttrType::Int)]).unwrap();
        let rel = Relation::empty(schema);
        let res = ImputationResult {
            relation: rel,
            imputed: vec![ImputedCell {
                cell: Cell::new(2, 0),
                value: Value::Int(7),
                donor_row: 1,
                distance: 0.5,
                cluster_threshold: 1.0,
                via: Rfd::new(
                    vec![renuver_rfd::Constraint::new(1, 0.0)],
                    renuver_rfd::Constraint::new(0, 1.0),
                ),
            }],
            unimputed: vec![Cell::new(3, 0)],
            outcomes: vec![
                (Cell::new(2, 0), CellOutcome::Imputed),
                (Cell::new(3, 0), CellOutcome::NoCandidates),
            ],
            stats: ImputationStats::default(),
            trace: vec![],
            explains: vec![],
            budget: BudgetReport::default(),
        };
        assert_eq!(res.value_for(Cell::new(2, 0)), Some(&Value::Int(7)));
        assert_eq!(res.value_for(Cell::new(3, 0)), None);
    }

    #[test]
    fn equality_ignores_budget_readings() {
        // Two runs that made identical decisions compare equal even when
        // their wall-clock/memory readings differ — what the determinism
        // tests compare.
        let schema = Schema::new([("A", AttrType::Int)]).unwrap();
        let rel = Relation::empty(schema);
        let a = ImputationResult {
            relation: rel,
            imputed: vec![],
            unimputed: vec![],
            outcomes: vec![],
            stats: ImputationStats::default(),
            trace: vec![],
            explains: vec![],
            budget: BudgetReport::default(),
        };
        let mut b = a.clone();
        b.budget.elapsed = std::time::Duration::from_secs(5);
        b.budget.peak_bytes = 1 << 30;
        assert_eq!(a, b);
        let mut c = a.clone();
        c.outcomes.push((Cell::new(0, 0), CellOutcome::SkippedBudget));
        assert_ne!(a, c);
    }
}
