//! A long-lived imputation engine for serving workloads.
//!
//! [`Renuver::impute`] is one-shot: it clones the relation and rebuilds
//! the distance oracle and similarity index on every call. That is the
//! right shape for batch repair but wasteful for a server answering many
//! small requests against the same reference instance. [`Engine`] owns
//! the relation, oracle, index, and RFD set once and answers per-request
//! imputation by *appending* the request tuples, running the shared
//! per-cell loop ([`Renuver::impute_prepared`]) over just the appended
//! rows, and rolling the appended state back — no clone of the reference
//! relation, no rebuild of the distance structures.
//!
//! # Equivalence with the one-shot path
//!
//! [`Engine::impute_batch`] produces bit-for-bit the same values as
//! appending the batch to the reference relation and calling
//! [`Renuver::impute_appended`] (asserted by `tests/serve_differential.rs`):
//!
//! - **Oracle.** Appended values already in a column's dictionary reuse
//!   their code; unknown values take the direct-computation fallback.
//!   Distances are integral Levenshtein counts, exact in both the `f32`
//!   matrix and the direct `f64` kernel, so both paths report identical
//!   distances — the same argument that makes `update_cell` sound.
//! - **Index.** Appended rows join the postings (known values) or the
//!   always-scanned foreign set (unknown values); either way every
//!   `rows_within` answer stays a superset that the caller re-checks
//!   exactly, so pruning differences cannot change decisions.
//! - **Key partitioning** runs per request over the full instance
//!   including the appended rows, exactly as `impute_appended` would.
//! - **Batch verification.** The shared per-cell loop carries the
//!   signature-sharing cache (`crate::batch`) when
//!   [`RenuverConfig::batch_verify`] is on, so request tuples whose
//!   missing cells share an imputed attribute and LHS signature — the
//!   common shape of a `/v1/impute` batch drawn from one broken feed —
//!   reuse one witness scan and one candidate scan per cluster. The
//!   cache lives and dies inside a single `impute_prepared` call, so it
//!   never leaks state across requests, and
//!   `tests/batch_differential.rs` pins that batches answer identically
//!   with it off.

use renuver_budget::BudgetReport;
use renuver_data::{Cell, DataError, Relation, Schema, Tuple};
use renuver_distance::{DistanceOracle, SimilarityIndex, DEFAULT_DICT_CAP};
use renuver_obs::FieldValue;
use renuver_rfd::RfdSet;

use crate::algorithm::Renuver;
use crate::config::{IndexMode, RenuverConfig, AUTO_MIN_ROWS};
use crate::result::{CellExplain, CellOutcome, ImputationStats, ImputedCell};

/// A prepared imputation model: reference relation, distance oracle,
/// similarity index, and RFD set, ready to answer
/// [`Engine::impute_batch`] requests without per-request rebuilds.
pub struct Engine {
    renuver: Renuver,
    sigma: RfdSet,
    rel: Relation,
    /// Rows `0..base_len` are the reference instance; anything beyond is
    /// transient request state and always rolled back before returning.
    base_len: usize,
    oracle: DistanceOracle,
    index: Option<SimilarityIndex>,
}

/// What [`Engine::impute_batch`] returns: the request tuples with their
/// missing values filled where possible, plus the same per-cell records
/// [`crate::ImputationResult`] carries — with every [`Cell`] remapped to
/// *batch-relative* rows (`0..tuples.len()`).
///
/// Donor rows in [`ImputedCell`] and
/// [`crate::result::ExplainWinner`] stay engine-absolute: a donor row
/// `< Engine::donor_rows()` names a reference tuple, and a donor row
/// `>= donor_rows()` names the batch tuple at `row - donor_rows()`
/// (earlier request tuples become donors for later cells, as in the
/// paper's main loop).
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The request tuples after imputation, in request order.
    pub tuples: Vec<Tuple>,
    /// Outcome per missing cell, batch-relative, in visiting order.
    pub outcomes: Vec<(Cell, CellOutcome)>,
    /// Successful imputations, batch-relative cells.
    pub imputed: Vec<ImputedCell>,
    /// Per-cell explain records (when configured), batch-relative cells.
    pub explains: Vec<CellExplain>,
    /// Run counters for this batch.
    pub stats: ImputationStats,
    /// Budget accounting for this batch (excluded from `==`: elapsed
    /// wall-time differs between otherwise identical runs).
    pub budget: BudgetReport,
}

impl PartialEq for BatchResult {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
            && self.outcomes == other.outcomes
            && self.imputed == other.imputed
            && self.explains == other.explains
            && self.stats == other.stats
    }
}

/// Accounting for one [`Engine::commit_tuples`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitStats {
    /// Rows adopted into the reference instance by this commit.
    pub rows: usize,
    /// Donor rows after the commit (`== Engine::donor_rows()`).
    pub donors: usize,
    /// Dictionary entries the oracle's matrix columns grew by.
    pub dict_grown: usize,
}

impl Engine {
    /// Builds an engine over `rel` and `sigma`: constructs the distance
    /// oracle and (per [`RenuverConfig::index_mode`]) the similarity
    /// index once, under a thread pool sized by
    /// [`RenuverConfig::parallelism`].
    pub fn prepare(rel: Relation, sigma: RfdSet, config: RenuverConfig) -> Engine {
        let build = |rel: &Relation, config: &RenuverConfig| {
            let budget = &config.budget;
            let tracer = &config.tracer;
            let oracle = DistanceOracle::build_traced(rel, DEFAULT_DICT_CAP, budget, tracer);
            let index = match config.index_mode {
                IndexMode::Scan => None,
                IndexMode::Indexed => {
                    Some(SimilarityIndex::build_traced(rel, &oracle, budget, tracer))
                }
                IndexMode::Auto => (rel.len() >= AUTO_MIN_ROWS)
                    .then(|| SimilarityIndex::build_traced(rel, &oracle, budget, tracer)),
            };
            (oracle, index)
        };
        let (oracle, index) = match rayon::ThreadPoolBuilder::new()
            .num_threads(config.parallelism)
            .build()
        {
            Ok(pool) => pool.install(|| build(&rel, &config)),
            Err(_) => build(&rel, &config),
        };
        Engine::from_parts(rel, sigma, oracle, index, config)
    }

    /// Assembles an engine from already-built parts — the artifact-load
    /// path, where the oracle and index come deserialized from disk
    /// instead of being rebuilt.
    ///
    /// The caller is responsible for `oracle` and `index` being
    /// consistent with `rel` (the artifact loader validates this
    /// structurally; a mismatched oracle would answer wrong distances).
    pub fn from_parts(
        rel: Relation,
        sigma: RfdSet,
        oracle: DistanceOracle,
        index: Option<SimilarityIndex>,
        config: RenuverConfig,
    ) -> Engine {
        let base_len = rel.len();
        Engine {
            renuver: Renuver::new(config),
            sigma,
            rel,
            base_len,
            oracle,
            index,
        }
    }

    /// The reference instance's schema.
    pub fn schema(&self) -> &Schema {
        self.rel.schema()
    }

    /// Number of reference tuples serving as donors.
    pub fn donor_rows(&self) -> usize {
        self.base_len
    }

    /// The RFD set the engine imputes with.
    pub fn sigma(&self) -> &RfdSet {
        &self.sigma
    }

    /// The reference relation.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RenuverConfig {
        self.renuver.config()
    }

    /// The dictionary-encoded distance oracle (for artifact snapshots).
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// The similarity index, if one was built (for artifact snapshots).
    pub fn index(&self) -> Option<&SimilarityIndex> {
        self.index.as_ref()
    }

    /// Drops any transient (appended) rows, restoring the engine to its
    /// reference state. A no-op in normal operation — [`Engine::impute_batch`]
    /// always rolls back before returning — but a server recovering an
    /// engine from a poisoned lock (a request panicked mid-batch) calls
    /// this to guarantee the reference instance before serving again.
    pub fn reset_transient(&mut self) {
        self.rel.truncate(self.base_len);
        self.oracle.truncate_rows(self.base_len);
        if let Some(ix) = self.index.as_mut() {
            ix.truncate_rows(self.base_len);
        }
    }

    /// Imputes the missing cells of `tuples` against the reference
    /// instance with the engine's own configuration.
    ///
    /// The tuples are appended, imputed exactly as
    /// [`Renuver::impute_appended`] would (see the module docs for the
    /// equivalence argument), and rolled back, so the engine's reference
    /// state is unchanged on return. Tuples must match the engine schema;
    /// on a [`DataError`] nothing is retained.
    pub fn impute_batch(&mut self, tuples: Vec<Tuple>) -> Result<BatchResult, DataError> {
        let config = self.renuver.config().clone();
        self.impute_batch_with(tuples, &config)
    }

    /// [`Engine::impute_batch`] under a per-request configuration —
    /// typically the engine config with a request-scoped
    /// [`renuver_budget::Budget`], tracer, or explain sampling swapped
    /// in. Structural knobs that shaped the prepared state
    /// ([`RenuverConfig::index_mode`]) are taken from the engine, not
    /// from `config`: the index either exists or it doesn't.
    pub fn impute_batch_with(
        &mut self,
        tuples: Vec<Tuple>,
        config: &RenuverConfig,
    ) -> Result<BatchResult, DataError> {
        let base = self.base_len;
        for tuple in tuples {
            if let Err(e) = self.rel.push(tuple) {
                // Arity or type mismatch part-way through the batch:
                // drop the rows already appended and report.
                self.rel.truncate(base);
                return Err(e);
            }
        }
        for row in base..self.rel.len() {
            self.oracle.append_row(&self.rel, row);
            if let Some(ix) = self.index.as_mut() {
                ix.append_row(&self.rel, row);
            }
        }

        let runner = Renuver::new(config.clone());
        let row_range = base..self.rel.len();
        let parts = {
            let mut run = || {
                let tracer = &runner.config().tracer;
                let chunks_before = rayon::chunks_dispatched();
                let run_span = tracer.span("core::impute");
                tracer.event("run_start", run_span.id(), || {
                    vec![
                        ("subject", FieldValue::Str("impute")),
                        ("rows", FieldValue::U64(self.rel.len() as u64)),
                        ("attrs", FieldValue::U64(self.rel.arity() as u64)),
                        ("missing", FieldValue::U64(self.rel.missing_count() as u64)),
                        ("rfds", FieldValue::U64(self.sigma.len() as u64)),
                    ]
                });
                runner.impute_prepared(
                    &mut self.rel,
                    &mut self.oracle,
                    &mut self.index,
                    &self.sigma,
                    row_range.clone(),
                    &run_span,
                    chunks_before,
                )
            };
            match rayon::ThreadPoolBuilder::new()
                .num_threads(runner.config().parallelism)
                .build()
            {
                Ok(pool) => pool.install(run),
                Err(_) => run(),
            }
        };

        let repaired: Vec<Tuple> =
            (base..self.rel.len()).map(|row| self.rel.tuple(row).clone()).collect();

        // Roll the transient rows back: the engine answers the next
        // request from the untouched reference state.
        self.rel.truncate(base);
        self.oracle.truncate_rows(base);
        if let Some(ix) = self.index.as_mut() {
            ix.truncate_rows(base);
        }

        let rebase = |cell: Cell| Cell::new(cell.row - base, cell.col);
        Ok(BatchResult {
            tuples: repaired,
            outcomes: parts
                .outcomes
                .into_iter()
                .map(|(cell, outcome)| (rebase(cell), outcome))
                .collect(),
            imputed: parts
                .imputed
                .into_iter()
                .map(|mut rec| {
                    rec.cell = rebase(rec.cell);
                    rec
                })
                .collect(),
            explains: parts
                .explains
                .into_iter()
                .map(|mut exp| {
                    exp.cell = rebase(exp.cell);
                    exp
                })
                .collect(),
            stats: parts.stats,
            budget: parts.budget,
        })
    }

    /// Permanently appends `tuples` to the reference instance: the rows
    /// become donors for every subsequent request, the oracle's
    /// dictionaries/matrices and the index's posting lists grow to cover
    /// them ([`DistanceOracle::commit_rows`] /
    /// [`SimilarityIndex::commit_rows`]), and [`Engine::donor_rows`]
    /// advances past them.
    ///
    /// The tuples are adopted **as given** — no imputation runs. The
    /// durable write path calls [`Engine::impute_batch_with`] first and
    /// commits the repaired tuples it returns; WAL replay commits the
    /// repaired tuples recorded at ingest time through this same method,
    /// which is what makes a recovered engine bit-identical to one that
    /// never crashed: both states are the same sequence of deterministic
    /// `commit_tuples` calls over the same snapshot.
    ///
    /// On a [`DataError`] (arity/type mismatch part-way through) the
    /// whole batch rolls back via the transactional truncate and the
    /// engine keeps its prior reference state.
    pub fn commit_tuples(&mut self, tuples: Vec<Tuple>) -> Result<CommitStats, DataError> {
        let base = self.base_len;
        for tuple in tuples {
            if let Err(e) = self.rel.push(tuple) {
                self.rel.truncate(base);
                return Err(e);
            }
        }
        for row in base..self.rel.len() {
            self.oracle.append_row(&self.rel, row);
            if let Some(ix) = self.index.as_mut() {
                ix.append_row(&self.rel, row);
            }
        }
        // Infallible from here on: the commit either happened entirely
        // (all pushes succeeded above) or not at all.
        let dict_grown = self.oracle.commit_rows(&self.rel, base, DEFAULT_DICT_CAP);
        if let Some(ix) = self.index.as_mut() {
            ix.commit_rows(&self.rel, base);
        }
        self.base_len = self.rel.len();
        Ok(CommitStats { rows: self.base_len - base, donors: self.base_len, dict_grown })
    }

    /// Repairs `tuples` with the engine's shared per-cell loop, then
    /// commits the repaired batch — `impute_batch_with` followed by
    /// [`Engine::commit_tuples`], the in-process shape of `/v1/ingest`.
    /// On error nothing is retained.
    pub fn ingest_batch_with(
        &mut self,
        tuples: Vec<Tuple>,
        config: &RenuverConfig,
    ) -> Result<(BatchResult, CommitStats), DataError> {
        let result = self.impute_batch_with(tuples, config)?;
        let stats = self.commit_tuples(result.tuples.clone())?;
        Ok((result, stats))
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema, Value};
    use renuver_rfd::{Constraint, Rfd};

    fn shop_schema() -> Schema {
        Schema::new([("City", AttrType::Text), ("Zip", AttrType::Text)]).unwrap()
    }

    fn reference() -> Relation {
        let t = |c: &str, z: &str| vec![Value::Text(c.into()), Value::Text(z.into())];
        Relation::new(
            shop_schema(),
            vec![
                t("West Jordan", "84084"),
                t("West Jordan", "84084"),
                t("Salt Lake", "84101"),
                t("Salt Lake", "84101"),
                t("Provo", "84601"),
            ],
        )
        .unwrap()
    }

    fn sigma() -> RfdSet {
        RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )])
    }

    #[test]
    fn batch_matches_impute_appended() {
        let rel = reference();
        let sigma = sigma();
        let batch = vec![
            vec![Value::Text("Salt Lake".into()), Value::Null],
            vec![Value::Text("Provo".into()), Value::Null],
            vec![Value::Text("Nowhere".into()), Value::Null],
        ];

        // Reference: append + one-shot incremental run.
        let mut appended = rel.clone();
        for t in &batch {
            appended.push(t.clone()).unwrap();
        }
        let oneshot = Renuver::new(RenuverConfig::default()).impute_appended(
            &appended,
            rel.len(),
            &sigma,
        );

        let mut engine = Engine::prepare(rel.clone(), sigma, RenuverConfig::default());
        let result = engine.impute_batch(batch.clone()).unwrap();

        for (i, t) in result.tuples.iter().enumerate() {
            assert_eq!(t, oneshot.relation.tuple(rel.len() + i), "batch row {i}");
        }
        assert_eq!(result.stats, oneshot.stats);
        assert_eq!(result.tuples[0][1], Value::Text("84101".into()));
        assert_eq!(result.tuples[1][1], Value::Text("84601".into()));
        assert_eq!(result.tuples[2][1], Value::Null, "no donor city within 0");

        // The engine rolled its state back and answers again identically.
        assert_eq!(engine.relation().len(), engine.donor_rows());
        let again = engine.impute_batch(batch).unwrap();
        assert_eq!(again, result);
    }

    #[test]
    fn outcomes_are_batch_relative() {
        let mut engine = Engine::prepare(reference(), sigma(), RenuverConfig::default());
        let result = engine
            .impute_batch(vec![vec![Value::Text("Provo".into()), Value::Null]])
            .unwrap();
        assert_eq!(result.outcomes.len(), 1);
        assert_eq!(result.outcomes[0].0, Cell::new(0, 1));
        assert_eq!(result.outcomes[0].1, CellOutcome::Imputed);
        assert_eq!(result.imputed[0].cell, Cell::new(0, 1));
        assert!(
            result.imputed[0].donor_row < engine.donor_rows(),
            "donor came from the reference instance"
        );
    }

    #[test]
    fn commit_tuples_matches_prepare_from_scratch() {
        let mut engine = Engine::prepare(reference(), sigma(), RenuverConfig::default());
        let batch = vec![
            vec![Value::Text("Ogden".into()), Value::Text("84401".into())],
            vec![Value::Text("Provo".into()), Value::Text("84601".into())],
        ];
        let stats = engine.commit_tuples(batch.clone()).unwrap();
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.donors, 7);
        assert_eq!(stats.dict_grown, 2, "Ogden and 84401 are new dictionary values");
        assert_eq!(engine.donor_rows(), 7);

        // The committed engine's distance structures are bit-identical to
        // an engine prepared over the grown relation from scratch.
        let mut grown = reference();
        for t in &batch {
            grown.push(t.clone()).unwrap();
        }
        let fresh = Engine::prepare(grown, sigma(), RenuverConfig::default());
        assert_eq!(engine.oracle().to_snapshot(), fresh.oracle().to_snapshot());
        assert_eq!(
            engine.index().map(|ix| ix.to_snapshot()),
            fresh.index().map(|ix| ix.to_snapshot())
        );

        // The committed rows serve as donors for later requests.
        let result = engine
            .impute_batch(vec![vec![Value::Text("Ogden".into()), Value::Null]])
            .unwrap();
        assert_eq!(result.tuples[0][1], Value::Text("84401".into()));
    }

    #[test]
    fn ingest_repairs_then_commits() {
        let mut engine = Engine::prepare(reference(), sigma(), RenuverConfig::default());
        let config = engine.config().clone();
        let (result, stats) = engine
            .ingest_batch_with(
                vec![vec![Value::Text("Provo".into()), Value::Null]],
                &config,
            )
            .unwrap();
        assert_eq!(result.tuples[0][1], Value::Text("84601".into()));
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.dict_grown, 0, "the repaired tuple only holds known values");
        assert_eq!(engine.donor_rows(), 6);
        // The adopted row is a full-fledged donor; the engine's state is
        // exactly prepare() over the repaired relation.
        let mut grown = reference();
        grown.push(vec![Value::Text("Provo".into()), Value::Text("84601".into())]).unwrap();
        let fresh = Engine::prepare(grown, sigma(), RenuverConfig::default());
        assert_eq!(engine.oracle().to_snapshot(), fresh.oracle().to_snapshot());
    }

    #[test]
    fn failed_commit_rolls_back_entirely() {
        let mut engine = Engine::prepare(reference(), sigma(), RenuverConfig::default());
        let before = engine.oracle().to_snapshot();
        let err = engine.commit_tuples(vec![
            vec![Value::Text("Ogden".into()), Value::Text("84401".into())],
            vec![Value::Text("arity".into())],
        ]);
        assert!(err.is_err());
        assert_eq!(engine.donor_rows(), 5);
        assert_eq!(engine.relation().len(), 5);
        assert_eq!(engine.oracle().to_snapshot(), before);
    }

    #[test]
    fn bad_tuples_leave_the_engine_clean() {
        let mut engine = Engine::prepare(reference(), sigma(), RenuverConfig::default());
        let err = engine.impute_batch(vec![
            vec![Value::Text("Provo".into()), Value::Null],
            vec![Value::Text("arity".into())],
        ]);
        assert!(err.is_err());
        assert_eq!(engine.relation().len(), engine.donor_rows());
        // Still serviceable after the failed request.
        let ok = engine
            .impute_batch(vec![vec![Value::Text("Provo".into()), Value::Null]])
            .unwrap();
        assert_eq!(ok.tuples[0][1], Value::Text("84601".into()));
    }
}
