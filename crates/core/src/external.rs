//! Multi-dataset candidate selection — one of the paper's future-work
//! items (Section 7: "extend RENUVER with the possibility of selecting
//! plausible candidate tuples among multiple datasets").
//!
//! [`Renuver::impute_with_donors`] appends the tuples of the donor
//! relations to the target instance, runs the standard algorithm over the
//! combined instance restricted to the target's missing cells, and splits
//! the donors back off. Semantics:
//!
//! - candidate tuples (and distance rankings) draw from the union;
//! - IS_FAULTLESS checks consistency against the union, so an imputation
//!   must not contradict the donor data either;
//! - key-RFD classification happens on the union (a dependency that is a
//!   key on the small target alone may be usable thanks to donor pairs);
//! - missing values inside donor relations are never imputed.

use renuver_data::{Relation, Value};
use renuver_rfd::RfdSet;

use crate::algorithm::Renuver;
use crate::result::ImputationResult;

/// Error returned when a donor relation cannot be combined with the
/// target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaMismatch {
    /// Index of the offending donor relation.
    pub donor: usize,
}

impl std::fmt::Display for SchemaMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "donor relation #{} does not share the target's schema", self.donor)
    }
}

impl std::error::Error for SchemaMismatch {}

impl Renuver {
    /// Imputes `rel`, additionally drawing candidate tuples from the donor
    /// relations (which must share the target's schema exactly).
    ///
    /// In the returned result, [`crate::result::ImputedCell::donor_row`]
    /// indexes the combined instance: values `< rel.len()` are target rows,
    /// larger values point into the donors in order.
    ///
    /// # Errors
    /// [`SchemaMismatch`] when a donor's schema differs from the target's.
    pub fn impute_with_donors(
        &self,
        rel: &Relation,
        donors: &[&Relation],
        sigma: &RfdSet,
    ) -> Result<ImputationResult, SchemaMismatch> {
        for (i, donor) in donors.iter().enumerate() {
            if donor.schema() != rel.schema() {
                return Err(SchemaMismatch { donor: i });
            }
        }
        let n = rel.len();
        let mut combined = rel.clone();
        for (i, donor) in donors.iter().enumerate() {
            for t in donor.tuples() {
                // Equality was checked above, but a push failure must not
                // take the process down — report it as the mismatch it is.
                combined.push(t.clone()).map_err(|_| SchemaMismatch { donor: i })?;
            }
        }

        let mut result = self.impute_rows(&combined, sigma, 0..n);
        result.relation.truncate(n);
        Ok(result)
    }
}

/// A tiny helper type used by tests to build a donor with the same schema.
pub fn donor_like(rel: &Relation, tuples: Vec<Vec<Value>>) -> Relation {
    Relation::new(rel.schema().clone(), tuples).expect("tuples fit the schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RenuverConfig;
    use renuver_data::{AttrType, Schema};
    use renuver_rfd::{Constraint, Rfd};

    fn target() -> Relation {
        let schema = Schema::new([("City", AttrType::Text), ("Zip", AttrType::Text)]).unwrap();
        Relation::new(
            schema,
            vec![
                vec!["Milano".into(), "20121".into()],
                vec!["Salerno".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    fn city_zip_rfds() -> RfdSet {
        RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )])
    }

    #[test]
    fn donor_enables_otherwise_impossible_imputation() {
        let rel = target();
        let rfds = city_zip_rfds();
        // Alone: no tuple shares the city → nothing to impute.
        let alone = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        assert_eq!(alone.stats.imputed, 0);

        // With a donor dataset containing Salerno, the zip arrives.
        let donor = donor_like(&rel, vec![vec!["Salerno".into(), "84084".into()]]);
        let with = Renuver::new(RenuverConfig::default())
            .impute_with_donors(&rel, &[&donor], &rfds)
            .unwrap();
        assert_eq!(with.stats.imputed, 1);
        assert_eq!(with.relation.value(1, 1), &Value::Text("84084".into()));
        assert_eq!(with.relation.len(), rel.len()); // donors split back off
        assert_eq!(with.imputed[0].donor_row, 2); // combined-instance index
    }

    #[test]
    fn donor_missing_values_not_imputed() {
        let rel = target();
        let rfds = city_zip_rfds();
        let donor = donor_like(
            &rel,
            vec![
                vec!["Salerno".into(), "84084".into()],
                vec!["Milano".into(), Value::Null], // imputable, but a donor
            ],
        );
        let result = Renuver::new(RenuverConfig::default())
            .impute_with_donors(&rel, &[&donor], &rfds)
            .unwrap();
        // Only the target's cell was considered.
        assert_eq!(result.stats.missing_total, 1);
        assert_eq!(result.stats.imputed, 1);
    }

    #[test]
    fn donor_data_participates_in_verification() {
        // The donor contains a conflicting zip for Salerno, so a candidate
        // drawn from it is rejected by the guard Zip(≤0) → City(≤0)... and
        // with two contradicting donors, consistency fails for both values.
        let rel = target();
        let rfds = RfdSet::from_vec(vec![
            // Generator: City(≤0) → Zip(≤9000). Wide RHS so both donor zips
            // are candidates.
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 9000.0)),
            // Guard with the imputed attribute on its LHS: Zip(≤0) → City(≤1).
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(0, 1.0)),
        ]);
        let donor = donor_like(
            &rel,
            vec![
                vec!["Salerno".into(), "84084".into()],
                // Same zip listed under a very different city: imputing
                // 84084 into the Salerno row violates the guard against
                // this tuple.
                vec!["Castellammare".into(), "84084".into()],
            ],
        );
        let result = Renuver::new(RenuverConfig::default())
            .impute_with_donors(&rel, &[&donor], &rfds)
            .unwrap();
        assert_eq!(result.stats.imputed, 0, "{:?}", result.imputed);
        assert!(result.stats.verification_failures >= 1);
    }

    #[test]
    fn schema_mismatch_reported() {
        let rel = target();
        let other_schema =
            Schema::new([("City", AttrType::Text), ("Zip", AttrType::Int)]).unwrap();
        let donor = Relation::empty(other_schema);
        let err = Renuver::new(RenuverConfig::default())
            .impute_with_donors(&rel, &[&donor], &city_zip_rfds())
            .unwrap_err();
        assert_eq!(err, SchemaMismatch { donor: 0 });
        assert!(err.to_string().contains("#0"));
    }

    #[test]
    fn no_donors_matches_plain_impute() {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Null],
            ],
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let engine = Renuver::new(RenuverConfig::default());
        let plain = engine.impute(&rel, &rfds);
        let with = engine.impute_with_donors(&rel, &[], &rfds).unwrap();
        assert_eq!(plain.relation, with.relation);
        assert_eq!(plain.stats, with.stats);
    }
}
