//! Post-imputation consistency verification (Algorithm 4, IS_FAULTLESS).

use std::cell::RefCell;
use std::collections::HashMap;

use renuver_data::{AttrId, Relation};
use renuver_rfd::check::{pair_satisfies_lhs, pair_satisfies_rhs};
use renuver_rfd::Rfd;

use crate::config::VerifyScope;

/// IS_FAULTLESS: `true` iff the relation, with tuple `row` freshly imputed
/// on `attr`, still satisfies every RFD in `sigma` (restricted to the
/// dependencies the imputation can affect).
///
/// Only pairs involving `row` can newly violate a dependency — every other
/// pair is unchanged — so the check walks `(row, j)` pairs for each
/// relevant RFD:
///
/// - RFDs with `attr` on the **LHS** (Algorithm 4 line 1): the imputed
///   value may make `row` LHS-similar to tuples it previously was not,
///   exposing an RHS violation.
/// - With [`VerifyScope::Full`] (the Definition 4.3 semantics, see
///   `config`), RFDs with `attr` on the **RHS** as well: the imputed value
///   may disagree with an LHS-similar tuple, as in Example 4.4.
///
/// A pair whose RHS values are not both present cannot witness a violation
/// (Definition 3.2 compares actual values).
pub fn is_faultless<'a>(
    rel: &Relation,
    row: usize,
    attr: AttrId,
    sigma: impl Iterator<Item = &'a Rfd>,
    scope: VerifyScope,
) -> bool {
    for rfd in sigma {
        let relevant = match scope {
            VerifyScope::LhsOnly => rfd.lhs_contains(attr),
            VerifyScope::Full => rfd.lhs_contains(attr) || rfd.rhs_attr() == attr,
        };
        if !relevant {
            continue;
        }
        for j in 0..rel.len() {
            if j == row {
                continue;
            }
            let (i, j2) = (row.min(j), row.max(j));
            if pair_satisfies_lhs(rel, rfd, i, j2) && !pair_satisfies_rhs(rel, rfd, i, j2) {
                return false;
            }
        }
    }
    true
}

use renuver_distance::{intersect_sorted, DistanceOracle, MatrixView, RowCode, SimilarityIndex};

/// Which side of an RFD the witness rows constrain a candidate from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WitnessKind {
    /// Candidate rejected when *within* `thr` of a witness (`attr` on the
    /// RFD's LHS: the witnesses already violate the RHS).
    Close,
    /// Candidate rejected when *beyond* `thr` from a witness (`attr` is the
    /// RFD's RHS: the witnesses satisfy the whole LHS).
    Far,
}

/// The violation witnesses one RFD contributes to a cell's plan, tagged
/// with the RFD's position in `sigma` so the batch-verification cache can
/// re-evaluate individual rows later ([`close_witness`] /
/// [`far_witness`]). Unlike the compiled [`VerifyPlan`], empty row lists
/// are *kept*: a row written after the scan may join them.
#[derive(Debug, Clone)]
pub(crate) struct RfdWitnesses {
    pub(crate) sigma_idx: usize,
    pub(crate) kind: WitnessKind,
    pub(crate) thr: f64,
    /// Witness rows, ascending.
    pub(crate) rows: Vec<usize>,
}

/// All witness lists for one cell, in `sigma` order — the raw (and
/// expensive-to-compute) form a [`VerifyPlan`] compiles from, and the form
/// the batch cache stores and patches between cells.
#[derive(Debug, Clone)]
pub(crate) struct WitnessLists(pub(crate) Vec<RfdWitnesses>);

/// The per-RFD witness predicate for `attr`-on-LHS entries: `j` witnesses
/// a rejection iff it has a value on `attr`, satisfies the RFD's other LHS
/// constraints against `row`, and already violates the RHS against `row`.
pub(crate) fn close_witness(
    oracle: &DistanceOracle,
    rel: &Relation,
    row: usize,
    attr: AttrId,
    rfd: &Rfd,
    j: usize,
) -> bool {
    if j == row {
        return false;
    }
    let tj = rel.tuple(j);
    if tj[attr].is_null() {
        return false; // pair can never satisfy the attr constraint
    }
    for c in rfd.lhs() {
        if c.attr == attr {
            continue;
        }
        if oracle.distance_bounded(rel, c.attr, row, j, c.threshold).is_none() {
            return false;
        }
    }
    // Violates iff RHS distance exceeds the threshold (missing j RHS →
    // not evaluable → no violation).
    let rhs = rfd.rhs();
    !tj[rhs.attr].is_null()
        && oracle.distance_bounded(rel, rhs.attr, row, j, rhs.threshold).is_none()
}

/// The per-RFD witness predicate for `attr`-as-RHS entries (`Full` scope):
/// `j` witnesses a rejection iff it has a value on `attr` and satisfies
/// the RFD's whole LHS against `row`.
pub(crate) fn far_witness(
    oracle: &DistanceOracle,
    rel: &Relation,
    row: usize,
    attr: AttrId,
    rfd: &Rfd,
    j: usize,
) -> bool {
    if j == row {
        return false;
    }
    if rel.tuple(j)[attr].is_null() {
        return false; // RHS pair not evaluable
    }
    rfd.lhs().iter().all(|c| oracle.distance_bounded(rel, c.attr, row, j, c.threshold).is_some())
}

/// A precompiled consistency check for one cell `(row, attr)`.
///
/// [`is_faultless`] rescans every pair for every candidate, but only the
/// candidate value itself changes between candidates of one cell — the
/// other LHS distances, the RHS distances of LHS-relevant RFDs, and the
/// LHS satisfaction of RHS-relevant RFDs are all fixed. `VerifyPlan`
/// hoists that invariant work out of the candidate loop:
///
/// - For each RFD with `attr` on its **LHS**: precompute the rows that
///   satisfy the remaining LHS constraints *and* already violate the RHS —
///   a candidate is rejected iff it is within the `attr` threshold of such
///   a row.
/// - For each RFD with `attr` as its **RHS** (`Full` scope only):
///   precompute the rows that satisfy the whole LHS — a candidate is
///   rejected iff it is beyond the RHS threshold from such a row's value.
///
/// When the imputed column is matrix-encoded by the [`DistanceOracle`],
/// each witness set is additionally collapsed to a `u64`-block bitset over
/// the column's *dictionary codes* — distinct witness values, not rows.
/// [`VerifyPlan::admits`] then resolves the donor's code, lazily builds a
/// "codes within threshold of this donor" mask straight from the distance
/// matrix (memoized per `(threshold, donor code)` across entries), and
/// decides each entry with word-AND sweeps instead of per-row oracle
/// calls. Rows whose value fell outside the dictionary stay on the exact
/// per-row path, so decisions are bit-identical to the row loop.
///
/// Equivalent to [`is_faultless`] (asserted by tests and the
/// `verify_plan_matches_reference` property test in `tests/`), but one
/// relation scan per cell instead of one per candidate.
pub struct VerifyPlan {
    /// Reject when the candidate value is *within* the threshold of any
    /// listed row's value on the imputed attribute.
    reject_if_close: Vec<WitnessSet>,
    /// Reject when the candidate value is *beyond* the threshold from any
    /// listed row's value.
    reject_if_far: Vec<WitnessSet>,
    /// `(threshold bits, donor code) → codes within threshold` masks,
    /// shared across entries. `admits` runs in the sequential candidate
    /// loop, so interior mutability through `RefCell` is safe.
    masks: RefCell<MaskMemo>,
}

/// Memoized "codes within threshold of this donor" bitset masks, keyed by
/// `(threshold bits, donor code)`.
type MaskMemo = HashMap<(u64, u32), Box<[u64]>>;

/// One compiled entry of a [`VerifyPlan`].
struct WitnessSet {
    thr: f64,
    /// All witness rows, ascending — the exact fallback path, used when
    /// the column is not matrix-encoded or the donor's value is not in
    /// the dictionary.
    rows: Vec<usize>,
    /// Distinct dictionary codes of the witnesses' values on the imputed
    /// attribute, as a `u64`-block bitset over the column dictionary;
    /// `None` when the column is not matrix-encoded.
    codes: Option<Box<[u64]>>,
    /// Witness rows whose value lies outside the dictionary — always
    /// checked per-row through the oracle.
    foreign: Vec<usize>,
}

impl WitnessSet {
    fn build(view: Option<&MatrixView<'_>>, thr: f64, rows: Vec<usize>) -> WitnessSet {
        let Some(view) = view else {
            return WitnessSet { thr, rows, codes: None, foreign: Vec::new() };
        };
        let mut codes = vec![0u64; view.dict_len().div_ceil(64)].into_boxed_slice();
        let mut foreign = Vec::new();
        for &j in &rows {
            match view.code(j) {
                RowCode::Code(c) => codes[(c / 64) as usize] |= 1 << (c % 64),
                // Foreign values take the per-row oracle path; a null here
                // is impossible (witness predicates require a value) but
                // the per-row path answers it correctly regardless.
                RowCode::Foreign | RowCode::Null => foreign.push(j),
            }
        }
        WitnessSet { thr, rows, codes: Some(codes), foreign }
    }
}

/// Bitset of the dictionary codes within `thr` of code `d`, read straight
/// off the distance matrix row.
fn within_mask(view: &MatrixView<'_>, d: u32, thr: f64) -> Box<[u64]> {
    let k = view.dict_len();
    let mut mask = vec![0u64; k.div_ceil(64)].into_boxed_slice();
    for c in 0..k as u32 {
        if view.distance(d, c) <= thr {
            mask[(c / 64) as usize] |= 1 << (c % 64);
        }
    }
    mask
}

/// Collects the rows `0..n` (minus nothing — callers exclude rows inside
/// `pred`) satisfying `pred`, in ascending order. Falls back to a plain
/// sequential filter on one thread or short relations; the parallel path
/// evaluates `pred` per fixed index chunk and merges chunks in order, so
/// the result is identical either way.
fn scan_matching_rows(n: usize, pred: impl Fn(usize) -> bool + Sync) -> Vec<usize> {
    if rayon::current_num_threads() <= 1 || n < rayon::MIN_PAR_LEN {
        (0..n).filter(|&j| pred(j)).collect()
    } else {
        rayon::par_map_indexed(n, &pred)
            .into_iter()
            .enumerate()
            .filter_map(|(j, keep)| keep.then_some(j))
            .collect()
    }
}

/// Row collection for plan building: the full `0..n` scan, or — in the
/// degraded (budget-pressure) mode — only the explicitly listed rows.
fn collect_rows(
    n: usize,
    restrict: Option<&[usize]>,
    pred: impl Fn(usize) -> bool + Sync,
) -> Vec<usize> {
    match restrict {
        Some(rows) => rows.iter().copied().filter(|&j| pred(j)).collect(),
        None => scan_matching_rows(n, pred),
    }
}

impl VerifyPlan {
    /// Builds the plan for imputing `(row, attr)`; `rel[row][attr]` must
    /// currently be missing.
    pub fn build<'a>(
        oracle: &DistanceOracle,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        sigma: impl Iterator<Item = &'a Rfd>,
        scope: VerifyScope,
    ) -> VerifyPlan {
        let lists = Self::collect_witnesses(oracle, None, rel, row, attr, sigma, scope, None);
        Self::from_witnesses(oracle, attr, &lists)
    }

    /// [`VerifyPlan::build`] with an optional [`SimilarityIndex`]: each
    /// RFD's witness scan is seeded with the index-retrieved superset of
    /// rows satisfying its indexed candidate-independent LHS constraints,
    /// then filtered by the same exact predicate the scan applies to all
    /// rows — the resulting plan is identical, it was just built from
    /// fewer exact checks.
    pub fn build_with<'a>(
        oracle: &DistanceOracle,
        index: Option<&SimilarityIndex>,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        sigma: impl Iterator<Item = &'a Rfd>,
        scope: VerifyScope,
    ) -> VerifyPlan {
        let lists = Self::collect_witnesses(oracle, index, rel, row, attr, sigma, scope, None);
        Self::from_witnesses(oracle, attr, &lists)
    }

    /// [`VerifyPlan::build`] restricted to `rows` as the only potential
    /// violation witnesses — the degraded rung of the budget ladder. Under
    /// budget pressure the engine verifies candidates only against the
    /// tuples *changed this run* (the neighborhood where a fresh
    /// inconsistency is most likely), trading the full `O(n)` pair scan
    /// for an `O(|rows|)` one. Weaker than the full check, but still
    /// rejects the violations imputation chains most commonly introduce.
    pub fn build_over<'a>(
        oracle: &DistanceOracle,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        sigma: impl Iterator<Item = &'a Rfd>,
        scope: VerifyScope,
        rows: &[usize],
    ) -> VerifyPlan {
        let lists =
            Self::collect_witnesses(oracle, None, rel, row, attr, sigma, scope, Some(rows));
        Self::from_witnesses(oracle, attr, &lists)
    }

    /// The expensive half of plan building: scan the relation once per
    /// relevant RFD for its violation witnesses. Empty lists are kept (see
    /// [`WitnessLists`]); [`VerifyPlan::from_witnesses`] drops them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn collect_witnesses<'a>(
        oracle: &DistanceOracle,
        index: Option<&SimilarityIndex>,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        sigma: impl Iterator<Item = &'a Rfd>,
        scope: VerifyScope,
        restrict: Option<&[usize]>,
    ) -> WitnessLists {
        debug_assert!(rel.is_missing(row, attr));
        // Superset of the rows within threshold of `row` on every *indexed*
        // constraint in `lhs` (minus the `skip` attribute); `None` when no
        // constraint is indexed and the full scan is needed. Already-
        // restricted (degraded-mode) builds skip the index: the witness
        // list is small by construction.
        let index_base = |lhs: &[renuver_rfd::Constraint], skip: Option<AttrId>| {
            if restrict.is_some() {
                return None;
            }
            let mut base: Option<Vec<usize>> = None;
            for c in lhs {
                if Some(c.attr) == skip {
                    continue;
                }
                // Unindexed constraints stay with the exact predicate; any
                // indexed one already prunes the witness scan.
                let Some(within) =
                    index.and_then(|ix| ix.rows_within(rel, c.attr, row, c.threshold))
                else {
                    continue;
                };
                base = Some(match base {
                    None => within,
                    Some(acc) => intersect_sorted(&acc, &within),
                });
            }
            base
        };
        let mut entries = Vec::new();
        let t = rel.tuple(row);
        for (sigma_idx, rfd) in sigma.enumerate() {
            if rfd.lhs_contains(attr) {
                // Candidate-independent parts: the other LHS constraints
                // and the (fixed) RHS comparison.
                if t[rfd.rhs().attr].is_null() {
                    continue; // RHS not evaluable → cannot violate
                }
                let Some(attr_thr) =
                    rfd.lhs().iter().find(|c| c.attr == attr).map(|c| c.threshold)
                else {
                    continue; // unreachable: lhs_contains checked above
                };
                let base = index_base(rfd.lhs(), Some(attr));
                let rows = collect_rows(rel.len(), base.as_deref().or(restrict), |j| {
                    close_witness(oracle, rel, row, attr, rfd, j)
                });
                entries.push(RfdWitnesses {
                    sigma_idx,
                    kind: WitnessKind::Close,
                    thr: attr_thr,
                    rows,
                });
            } else if scope == VerifyScope::Full && rfd.rhs_attr() == attr {
                // LHS is fully candidate-independent.
                let base = index_base(rfd.lhs(), None);
                let rows = collect_rows(rel.len(), base.as_deref().or(restrict), |j| {
                    far_witness(oracle, rel, row, attr, rfd, j)
                });
                entries.push(RfdWitnesses {
                    sigma_idx,
                    kind: WitnessKind::Far,
                    thr: rfd.rhs_threshold(),
                    rows,
                });
            }
        }
        WitnessLists(entries)
    }

    /// Compiles witness lists into an admissibility plan: code bitsets for
    /// matrix-encoded columns, exact row lists otherwise.
    pub(crate) fn from_witnesses(
        oracle: &DistanceOracle,
        attr: AttrId,
        lists: &WitnessLists,
    ) -> VerifyPlan {
        let view = oracle.matrix_view(attr);
        let mut reject_if_close = Vec::new();
        let mut reject_if_far = Vec::new();
        for w in &lists.0 {
            if w.rows.is_empty() {
                continue; // an empty witness list can never reject
            }
            let set = WitnessSet::build(view.as_ref(), w.thr, w.rows.clone());
            match w.kind {
                WitnessKind::Close => reject_if_close.push(set),
                WitnessKind::Far => reject_if_far.push(set),
            }
        }
        VerifyPlan { reject_if_close, reject_if_far, masks: RefCell::new(HashMap::new()) }
    }

    /// `true` iff imputing the cell with the value of `donor_row` on the
    /// imputed attribute keeps the instance consistent. Candidates are
    /// always values of existing tuples (Algorithm 3), so the comparison
    /// is a pair of oracle lookups per constraining row — or, on the
    /// matrix fast path, one word-AND sweep per entry.
    pub fn admits(
        &self,
        oracle: &DistanceOracle,
        rel: &Relation,
        attr: AttrId,
        donor_row: usize,
    ) -> bool {
        let view = oracle.matrix_view(attr);
        let donor_code = view.as_ref().and_then(|v| match v.code(donor_row) {
            RowCode::Code(c) => Some(c),
            RowCode::Foreign | RowCode::Null => None,
        });
        for set in &self.reject_if_close {
            if self.rejects(oracle, rel, attr, donor_row, view.as_ref(), donor_code, set, true) {
                return false;
            }
        }
        for set in &self.reject_if_far {
            if self.rejects(oracle, rel, attr, donor_row, view.as_ref(), donor_code, set, false) {
                return false;
            }
        }
        true
    }

    /// Decides one entry: `close` rejects on a witness *within* `thr`,
    /// `!close` (far) on a witness *beyond* it. Both reduce to "some
    /// witness whose within-ness equals `close`".
    #[allow(clippy::too_many_arguments)]
    fn rejects(
        &self,
        oracle: &DistanceOracle,
        rel: &Relation,
        attr: AttrId,
        donor_row: usize,
        view: Option<&MatrixView<'_>>,
        donor_code: Option<u32>,
        set: &WitnessSet,
        close: bool,
    ) -> bool {
        if let (Some(view), Some(d), Some(codes)) = (view, donor_code, set.codes.as_ref()) {
            let coded_hit = {
                let mut masks = self.masks.borrow_mut();
                let mask = masks
                    .entry((set.thr.to_bits(), d))
                    .or_insert_with(|| within_mask(view, d, set.thr));
                if close {
                    codes.iter().zip(mask.iter()).any(|(&w, &m)| w & m != 0)
                } else {
                    codes.iter().zip(mask.iter()).any(|(&w, &m)| w & !m != 0)
                }
            };
            return coded_hit
                || set.foreign.iter().any(|&j| {
                    oracle.distance_bounded(rel, attr, donor_row, j, set.thr).is_some() == close
                });
        }
        set.rows
            .iter()
            .any(|&j| oracle.distance_bounded(rel, attr, donor_row, j, set.thr).is_some() == close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Relation, Schema, Value};
    use renuver_rfd::Constraint;

    /// Table 2 sample: Name, City, Phone, Type, Class.
    fn restaurant_sample() -> Relation {
        let schema = Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Phone", AttrType::Text),
            ("Type", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        let t = |name: &str, city: Option<&str>, phone: Option<&str>, ty: Option<&str>, class: i64| {
            vec![
                Value::from(name),
                city.map(Value::from).unwrap_or(Value::Null),
                phone.map(Value::from).unwrap_or(Value::Null),
                ty.map(Value::from).unwrap_or(Value::Null),
                Value::Int(class),
            ]
        };
        Relation::new(
            schema,
            vec![
                t("Granita", Some("Malibu"), Some("310/456-0488"), Some("Californian"), 6),
                t("Chinois Main", Some("LA"), Some("310-392-9025"), Some("French"), 5),
                t("Citrus", Some("Los Angeles"), Some("213/857-0034"), Some("Californian"), 6),
                t("Citrus", Some("Los Angeles"), None, Some("Californian"), 6),
                t("Fenix", Some("Hollywood"), Some("213/848-6677"), None, 5),
                t("Fenix Argyle", None, Some("213/848-6677"), Some("French (new)"), 5),
                t("C. Main", Some("Los Angeles"), None, Some("French"), 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example_5_9_rejects_class_violation() {
        // Impute t7[Phone] with t3's phone; φ: Phone(≤1) → Class(≤0) is then
        // violated by (t3, t7): same phone, classes 6 vs 5.
        let mut rel = restaurant_sample();
        rel.set_value(6, 2, rel.value(2, 2).clone());
        let phi = Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0));
        assert!(!is_faultless(&rel, 6, 2, [&phi].into_iter(), VerifyScope::LhsOnly));
        assert!(!is_faultless(&rel, 6, 2, [&phi].into_iter(), VerifyScope::Full));
    }

    #[test]
    fn accepts_consistent_imputation() {
        // Impute t7[Phone] with t2's phone instead (the paper's accepted
        // choice): Phone(≤1) → Class(≤0) stays satisfied — t2 and t7 share
        // class 5, and no other tuple is within phone distance 1.
        let mut rel = restaurant_sample();
        rel.set_value(6, 2, rel.value(1, 2).clone());
        let phi = Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0));
        assert!(is_faultless(&rel, 6, 2, [&phi].into_iter(), VerifyScope::Full));
    }

    #[test]
    fn example_4_4_rhs_scope_difference() {
        // Impute t7[Phone] with t1's phone. φ0: Phone(≤0) → City(≤10) has
        // the imputed attribute on its LHS and catches the violation in
        // both scopes; Name(≤20) → Phone(≤2) has it on the RHS and is only
        // checked under Full.
        let mut rel = restaurant_sample();
        rel.set_value(6, 2, rel.value(0, 2).clone());
        let phi0 = Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(1, 10.0));
        assert!(!is_faultless(&rel, 6, 2, [&phi0].into_iter(), VerifyScope::Full));
        assert!(!is_faultless(&rel, 6, 2, [&phi0].into_iter(), VerifyScope::LhsOnly));

        let name_phone = Rfd::new(vec![Constraint::new(0, 20.0)], Constraint::new(2, 2.0));
        // Every tuple is within Name distance 20 of t7, and t1's phone is
        // far from the others → RHS violation, visible only in Full scope.
        assert!(!is_faultless(
            &rel, 6, 2,
            [&name_phone].into_iter(),
            VerifyScope::Full
        ));
        assert!(is_faultless(
            &rel, 6, 2,
            [&name_phone].into_iter(),
            VerifyScope::LhsOnly
        ));
    }

    #[test]
    fn irrelevant_rfds_are_skipped() {
        // An RFD not mentioning the imputed attribute is never checked, even
        // if (hypothetically) violated elsewhere.
        let rel = restaurant_sample();
        // City(≤0) → Class(≤0): t3/t7 share "Los Angeles" with classes 6, 5
        // → violated in the data, but irrelevant to imputing Phone.
        let phi = Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(4, 0.0));
        assert!(is_faultless(&rel, 6, 2, [&phi].into_iter(), VerifyScope::Full));
    }

    #[test]
    fn build_over_restricts_witnesses() {
        // Imputing t7[Phone] with t3's phone violates Phone(≤1) → Class(≤0)
        // via witness row 2 (t3). The restricted plan only sees the rows it
        // is given: with row 2 listed it rejects like the full plan; with a
        // disjoint row list the violation is invisible — the documented
        // weakening of the degraded mode.
        let rel = restaurant_sample();
        let oracle = DistanceOracle::direct(&rel);
        let phi = Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0));
        let full =
            VerifyPlan::build(&oracle, &rel, 6, 2, [&phi].into_iter(), VerifyScope::LhsOnly);
        assert!(!full.admits(&oracle, &rel, 2, 2));
        let seeing = VerifyPlan::build_over(
            &oracle, &rel, 6, 2, [&phi].into_iter(), VerifyScope::LhsOnly, &[2],
        );
        assert!(!seeing.admits(&oracle, &rel, 2, 2));
        let blind = VerifyPlan::build_over(
            &oracle, &rel, 6, 2, [&phi].into_iter(), VerifyScope::LhsOnly, &[0, 4],
        );
        assert!(blind.admits(&oracle, &rel, 2, 2));
    }

    #[test]
    fn indexed_plan_admits_exactly_like_scan_plan() {
        let rel = restaurant_sample();
        let oracle = DistanceOracle::build(&rel, 3000);
        let index = SimilarityIndex::build(&rel, &oracle);
        let sigma = [
            Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0)),
            Rfd::new(
                vec![Constraint::new(0, 8.0), Constraint::new(2, 0.0)],
                Constraint::new(1, 9.0),
            ),
            Rfd::new(vec![Constraint::new(0, 20.0)], Constraint::new(2, 2.0)),
        ];
        for scope in [VerifyScope::LhsOnly, VerifyScope::Full] {
            for (row, attr) in [(6, 2), (3, 2), (5, 1), (4, 3)] {
                assert!(rel.is_missing(row, attr));
                let scan =
                    VerifyPlan::build(&oracle, &rel, row, attr, sigma.iter(), scope);
                let indexed = VerifyPlan::build_with(
                    &oracle,
                    Some(&index),
                    &rel,
                    row,
                    attr,
                    sigma.iter(),
                    scope,
                );
                for donor in 0..rel.len() {
                    if rel.is_missing(donor, attr) {
                        continue;
                    }
                    assert_eq!(
                        scan.admits(&oracle, &rel, attr, donor),
                        indexed.admits(&oracle, &rel, attr, donor),
                        "scope {scope:?} cell ({row},{attr}) donor {donor}"
                    );
                }
            }
        }
    }

    #[test]
    fn bitset_plan_admits_exactly_like_direct_plan() {
        // The same plan compiled against a matrix-backed oracle (code
        // bitsets + word-AND sweeps) and a direct oracle (per-row distance
        // calls) must admit identically for every donor — the fast path is
        // an encoding of the row loop, not an approximation of it.
        let rel = restaurant_sample();
        let matrix = DistanceOracle::build(&rel, 3000);
        let direct = DistanceOracle::direct(&rel);
        let sigma = [
            Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0)),
            Rfd::new(
                vec![Constraint::new(0, 8.0), Constraint::new(2, 0.0)],
                Constraint::new(1, 9.0),
            ),
            Rfd::new(vec![Constraint::new(0, 20.0)], Constraint::new(2, 2.0)),
            Rfd::new(vec![Constraint::new(1, 2.0)], Constraint::new(2, 1.0)),
        ];
        for scope in [VerifyScope::LhsOnly, VerifyScope::Full] {
            for (row, attr) in [(6, 2), (3, 2), (5, 1), (4, 3)] {
                let fast = VerifyPlan::build(&matrix, &rel, row, attr, sigma.iter(), scope);
                let slow = VerifyPlan::build(&direct, &rel, row, attr, sigma.iter(), scope);
                for donor in 0..rel.len() {
                    if rel.is_missing(donor, attr) {
                        continue;
                    }
                    assert_eq!(
                        fast.admits(&matrix, &rel, attr, donor),
                        slow.admits(&direct, &rel, attr, donor),
                        "scope {scope:?} cell ({row},{attr}) donor {donor}"
                    );
                }
            }
        }
    }

    #[test]
    fn compiled_plan_matches_witness_lists() {
        // `collect_witnesses` + `from_witnesses` is the composition the
        // batch cache relies on: recompiling stored lists yields a plan
        // that admits exactly like a fresh build, and re-running the
        // per-row predicates reproduces every stored list.
        let rel = restaurant_sample();
        let oracle = DistanceOracle::build(&rel, 3000);
        let sigma = [
            Rfd::new(vec![Constraint::new(2, 1.0)], Constraint::new(4, 0.0)),
            Rfd::new(vec![Constraint::new(0, 20.0)], Constraint::new(2, 2.0)),
        ];
        let (row, attr) = (6, 2);
        let lists = VerifyPlan::collect_witnesses(
            &oracle,
            None,
            &rel,
            row,
            attr,
            sigma.iter(),
            VerifyScope::Full,
            None,
        );
        for w in &lists.0 {
            let rfd = &sigma[w.sigma_idx];
            let fresh: Vec<usize> = (0..rel.len())
                .filter(|&j| match w.kind {
                    WitnessKind::Close => close_witness(&oracle, &rel, row, attr, rfd, j),
                    WitnessKind::Far => far_witness(&oracle, &rel, row, attr, rfd, j),
                })
                .collect();
            assert_eq!(w.rows, fresh, "rfd {} kind {:?}", w.sigma_idx, w.kind);
        }
        let recompiled = VerifyPlan::from_witnesses(&oracle, attr, &lists);
        let fresh = VerifyPlan::build(&oracle, &rel, row, attr, sigma.iter(), VerifyScope::Full);
        for donor in 0..rel.len() {
            if rel.is_missing(donor, attr) {
                continue;
            }
            assert_eq!(
                recompiled.admits(&oracle, &rel, attr, donor),
                fresh.admits(&oracle, &rel, attr, donor),
                "donor {donor}"
            );
        }
    }

    #[test]
    fn missing_rhs_pairs_do_not_violate() {
        // t5/t6 same phone; t6's City missing → Phone(≤0) → City(≤0) cannot
        // be violated by that pair.
        let rel = restaurant_sample();
        let phi = Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(1, 0.0));
        assert!(is_faultless(&rel, 4, 2, [&phi].into_iter(), VerifyScope::Full));
    }
}
