//! Horizontal sharding of the engine: relation partitioning plus a
//! sharded imputation path that is **bit-identical** to the single-engine
//! batch path (`Engine::impute_batch`).
//!
//! A shard set is a partition of the donor relation into N disjoint part
//! relations. Rows are assigned by hashing the partition attributes —
//! the LHS of the lowest-index *key* RFD when one exists (those rows can
//! never be LHS-similar across buckets of an exact key, so the split
//! follows the dependency structure), the union of all LHS attributes
//! otherwise. The assignment only shapes load distribution; results never
//! depend on it, because every scan below runs over the *global* row
//! order 0..n reconstructed through the `locate` table.
//!
//! [`impute_sharded`] re-runs the RENUVER per-cell loop (Algorithms 1/2)
//! over that global view with plain value-level distances
//! ([`renuver_distance::value_distance_bounded`], the exact function the
//! [`renuver_distance::DistanceOracle`] computes through its caches), so
//! candidate lists, verification verdicts, tie-breaks, stats, and explain
//! records match the single engine byte for byte — `tests/
//! shard_differential.rs` pins the equivalence across shard counts,
//! index modes, and batch-verification settings. Candidate and witness
//! scans fan out across the shard parts on scoped threads (merged with
//! the same `(distance, row)` total order), which is what buys the
//! multi-shard speedup without a determinism tax.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use renuver_budget::BudgetTrip;
use renuver_obs::FieldValue;
use renuver_data::{AttrId, Cell, DataError, Relation, Tuple, Value};
use renuver_distance::value_distance_bounded;
use renuver_rfd::{Rfd, RfdSet};

use crate::candidates::{sort_candidates, Candidate};
use crate::config::{ClusterOrder, ImputationOrder, RenuverConfig, VerifyScope};
use crate::engine::BatchResult;
use crate::result::{
    CellExplain, CellOutcome, DryReason, ExplainWinner, ImputationStats, ImputedCell,
};

/// Row-count threshold below which per-cluster scans stay sequential:
/// thread spawns cost more than they save on small relations.
const PAR_MIN_ROWS: usize = 4096;

/// A partition of a relation into shard parts, with the `locate` table
/// mapping each original (global) row id to its `(shard, local)` home.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The attributes whose rendered values are hashed for assignment.
    pub attrs: Vec<AttrId>,
    /// The part relations, all sharing the source schema.
    pub parts: Vec<Relation>,
    /// `locate[g] = (shard, local)` for every original row `g`, in the
    /// original row order. Part-local order is therefore a subsequence of
    /// the global order.
    pub locate: Vec<(u32, u32)>,
}

/// The partition attributes for `rel` under `sigma`: the LHS of the
/// lowest-index key RFD when one exists, else the union of all LHS
/// attributes, else every attribute. Purely a routing choice — results
/// are independent of it.
pub fn partition_attrs(rel: &Relation, sigma: &RfdSet) -> Vec<AttrId> {
    for rfd in sigma.iter() {
        if renuver_rfd::check::is_key(rel, rfd) {
            let mut attrs: Vec<AttrId> = rfd.lhs().iter().map(|c| c.attr).collect();
            attrs.sort_unstable();
            attrs.dedup();
            return attrs;
        }
    }
    let mut attrs: Vec<AttrId> =
        sigma.iter().flat_map(|r| r.lhs().iter().map(|c| c.attr)).collect();
    attrs.sort_unstable();
    attrs.dedup();
    if attrs.is_empty() {
        (0..rel.arity()).collect()
    } else {
        attrs
    }
}

/// The owning shard of a tuple: FNV-1a over the rendered partition-attr
/// values, mod `n_shards`. Stable across processes and platforms — the
/// serve layer persists the attrs in its manifest precisely so WAL replay
/// re-derives the same assignment.
pub fn shard_of(tuple: &[Value], attrs: &[AttrId], n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &a in attrs {
        for &b in tuple[a].render().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Attribute separator: ("ab", "") and ("a", "b") must not collide
        // into systematically identical buckets.
        h ^= 0x1f;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % n_shards as u64) as usize
}

/// Partitions `rel` into `n_shards` parts using [`partition_attrs`].
pub fn partition(rel: &Relation, sigma: &RfdSet, n_shards: usize) -> ShardPlan {
    let attrs = partition_attrs(rel, sigma);
    partition_by(rel, &attrs, n_shards)
}

/// Partitions `rel` by hashing the given attributes.
pub fn partition_by(rel: &Relation, attrs: &[AttrId], n_shards: usize) -> ShardPlan {
    let n_shards = n_shards.max(1);
    let mut parts: Vec<Relation> =
        (0..n_shards).map(|_| Relation::empty(rel.schema().clone())).collect();
    let mut locate = Vec::with_capacity(rel.len());
    for g in 0..rel.len() {
        let k = shard_of(rel.tuple(g), attrs, n_shards);
        locate.push((k as u32, parts[k].len() as u32));
        parts[k].push(rel.tuple(g).clone()).expect("partition preserves the schema");
    }
    ShardPlan { attrs: attrs.to_vec(), parts, locate }
}

/// The owning shard of each tuple in a batch, in batch order — the
/// routing step of a sharded ingest commit.
pub fn assign(tuples: &[Tuple], attrs: &[AttrId], n_shards: usize) -> Vec<usize> {
    tuples.iter().map(|t| shard_of(t, attrs, n_shards)).collect()
}

/// Commits a repaired batch into the shard set: each tuple is routed to
/// its owning shard and the `locate` table grows in strict batch order,
/// so the global ids the tuples receive are exactly the ids
/// `Engine::commit_tuples` would hand them on the unsharded relation.
pub fn commit_sharded(plan: &mut ShardPlan, tuples: &[Tuple]) {
    let n = plan.parts.len();
    for t in tuples {
        let k = shard_of(t, &plan.attrs, n);
        plan.locate.push((k as u32, plan.parts[k].len() as u32));
        plan.parts[k].push(t.clone()).expect("committed tuples match the schema");
    }
}

// --------------------------------------------------------------- global view

/// Read-only view of the sharded relation in the original global row
/// order: rows `0..base` resolve through `locate` into the parts, rows
/// `base..len` into the per-request scratch relation holding the batch.
struct View<'a> {
    parts: &'a [&'a Relation],
    locate: &'a [(u32, u32)],
    scratch: &'a Relation,
    /// Per-part scan-time accumulators (nanoseconds), one slot per shard
    /// part, charged by the parallel scan fan-outs below. `None` when the
    /// run is untraced, so the hot path never reads a clock. Sequential
    /// scans (small relations) and the scratch group are unattributed.
    legs: Option<&'a [AtomicU64]>,
}

impl<'a> View<'a> {
    fn len(&self) -> usize {
        self.locate.len() + self.scratch.len()
    }

    fn arity(&self) -> usize {
        self.scratch.arity()
    }

    fn value(&self, row: usize, attr: AttrId) -> &'a Value {
        match row.checked_sub(self.locate.len()) {
            Some(local) => self.scratch.value(local, attr),
            None => {
                let (s, l) = self.locate[row];
                self.parts[s as usize].value(l as usize, attr)
            }
        }
    }

    fn is_missing(&self, row: usize, attr: AttrId) -> bool {
        self.value(row, attr).is_null()
    }

    /// `δ_A(t_i[A], t_j[A])` bounded by `thr` — exactly what the oracle's
    /// `distance_bounded` computes through its caches.
    fn dist(&self, attr: AttrId, i: usize, j: usize, thr: f64) -> Option<f64> {
        value_distance_bounded(self.value(i, attr), self.value(j, attr), thr)
    }

    /// The global row ids each scan task owns: one slice per part (in
    /// part-local order, which ascends globally) plus the scratch rows.
    fn scan_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.parts.len() + 1];
        for (g, &(s, _)) in self.locate.iter().enumerate() {
            groups[s as usize].push(g);
        }
        groups[self.parts.len()].extend(self.locate.len()..self.len());
        groups
    }

    fn parallel(&self) -> bool {
        self.parts.len() > 1 && self.len() >= PAR_MIN_ROWS
    }

    /// Runs `work` for scan group `gi`, charging its wall time to the
    /// group's leg-clock slot when a clock is attached. The scratch
    /// group (index `parts.len()`) has no slot and runs unclocked.
    fn time_group<T>(&self, gi: usize, work: impl FnOnce() -> T) -> T {
        match self.legs.and_then(|legs| legs.get(gi)) {
            Some(slot) => {
                let t0 = Instant::now();
                let out = work();
                slot.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                out
            }
            None => work(),
        }
    }

    /// Runs `f` over every global row, fanned out per shard part on scoped
    /// threads when the relation is large enough, and returns the matches
    /// concatenated in group order. Callers must not depend on output
    /// order (candidate lists are sorted afterwards; witness lists are
    /// existence-checked only).
    fn scan<T: Send>(&self, f: impl Fn(usize) -> Option<T> + Sync) -> Vec<T> {
        if !self.parallel() {
            return (0..self.len()).filter_map(f).collect();
        }
        let groups = self.scan_groups();
        let f = &f;
        let mut out = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .enumerate()
                .map(|(gi, rows)| {
                    scope.spawn(move || {
                        self.time_group(gi, || {
                            rows.iter().filter_map(|&g| f(g)).collect::<Vec<T>>()
                        })
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("shard scan worker panicked"));
            }
        });
        out
    }
}

// ------------------------------------------------------- pair predicates

fn pair_satisfies_lhs(view: &View<'_>, rfd: &Rfd, i: usize, j: usize) -> bool {
    rfd.lhs().iter().all(|c| view.dist(c.attr, i, j, c.threshold).is_some())
}

/// Key-RFD test over the global view — verdict-identical to
/// `renuver_rfd::check::is_key_with`, including the equality-bucket fast
/// path for zero-threshold LHS constraints.
fn is_key(view: &View<'_>, rfd: &Rfd) -> bool {
    let n = view.len();
    if let Some(eq) = rfd.lhs().iter().find(|c| c.threshold == 0.0) {
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        for row in 0..n {
            let v = view.value(row, eq.attr);
            if !v.is_null() {
                buckets.entry(v.render()).or_default().push(row);
            }
        }
        for rows in buckets.values() {
            for (a, &i) in rows.iter().enumerate() {
                for &j in &rows[a + 1..] {
                    if pair_satisfies_lhs(view, rfd, i, j) {
                        return false;
                    }
                }
            }
        }
        return true;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if pair_satisfies_lhs(view, rfd, i, j) {
                return false;
            }
        }
    }
    true
}

fn stays_key_after_update(view: &View<'_>, rfd: &Rfd, row: usize) -> bool {
    (0..view.len())
        .all(|j| j == row || !pair_satisfies_lhs(view, rfd, row.min(j), row.max(j)))
}

// ------------------------------------------------------------ verification

/// One compiled witness set: reject a donor whose value's within-ness of
/// any listed row (w.r.t. `thr` on the imputed attribute) equals `close`.
struct WitnessSet {
    thr: f64,
    rows: Vec<usize>,
    close: bool,
}

/// Mirror of `VerifyPlan` (see `crate::verify`): witness rows collected
/// once per cell, candidate-dependent distance checks deferred to
/// [`admits`]. The bitset/matrix encodings of the original are skipped —
/// they are proven-equal encodings of exactly this row loop.
struct Plan {
    sets: Vec<WitnessSet>,
}

fn close_witness(view: &View<'_>, row: usize, attr: AttrId, rfd: &Rfd, j: usize) -> bool {
    if j == row || view.value(j, attr).is_null() {
        return false;
    }
    for c in rfd.lhs() {
        if c.attr == attr {
            continue;
        }
        if view.dist(c.attr, row, j, c.threshold).is_none() {
            return false;
        }
    }
    let rhs = rfd.rhs();
    !view.value(j, rhs.attr).is_null() && view.dist(rhs.attr, row, j, rhs.threshold).is_none()
}

fn far_witness(view: &View<'_>, row: usize, attr: AttrId, rfd: &Rfd, j: usize) -> bool {
    if j == row || view.value(j, attr).is_null() {
        return false;
    }
    rfd.lhs().iter().all(|c| view.dist(c.attr, row, j, c.threshold).is_some())
}

fn collect_rows(
    view: &View<'_>,
    restrict: Option<&[usize]>,
    pred: impl Fn(usize) -> bool + Sync,
) -> Vec<usize> {
    match restrict {
        Some(rows) => rows.iter().copied().filter(|&j| pred(j)).collect(),
        None => view.scan(|j| pred(j).then_some(j)),
    }
}

fn build_plan(
    view: &View<'_>,
    row: usize,
    attr: AttrId,
    sigma: &RfdSet,
    scope: VerifyScope,
    restrict: Option<&[usize]>,
) -> Plan {
    let mut sets = Vec::new();
    for rfd in sigma.iter() {
        if rfd.lhs_contains(attr) {
            if view.value(row, rfd.rhs().attr).is_null() {
                continue; // RHS not evaluable → cannot violate
            }
            let Some(attr_thr) = rfd.lhs().iter().find(|c| c.attr == attr).map(|c| c.threshold)
            else {
                continue;
            };
            let rows = collect_rows(view, restrict, |j| close_witness(view, row, attr, rfd, j));
            if !rows.is_empty() {
                sets.push(WitnessSet { thr: attr_thr, rows, close: true });
            }
        } else if scope == VerifyScope::Full && rfd.rhs_attr() == attr {
            let rows = collect_rows(view, restrict, |j| far_witness(view, row, attr, rfd, j));
            if !rows.is_empty() {
                sets.push(WitnessSet { thr: rfd.rhs_threshold(), rows, close: false });
            }
        }
    }
    Plan { sets }
}

fn admits(view: &View<'_>, plan: &Plan, attr: AttrId, donor_row: usize) -> bool {
    plan.sets.iter().all(|set| {
        !set.rows
            .iter()
            .any(|&j| view.dist(attr, donor_row, j, set.thr).is_some() == set.close)
    })
}

// ------------------------------------------------------------- candidates

/// Mirror of `find_candidate_tuples_with` / `ClusterScorer` over the
/// global view, with the per-donor arithmetic copied verbatim so scores
/// are float-identical. The scan fans out per shard part; the caller's
/// `sort_candidates` restores the canonical `(distance, row)` order.
fn find_candidates(view: &View<'_>, row: usize, attr: AttrId, cluster: &[&Rfd]) -> Vec<Candidate> {
    let m = view.arity();
    let mut max_thr: Vec<Option<f64>> = vec![None; m];
    for rfd in cluster {
        for c in rfd.lhs() {
            let slot = &mut max_thr[c.attr];
            *slot = Some(slot.map_or(c.threshold, |t: f64| t.max(c.threshold)));
        }
    }
    let score = |j: usize, dist_buf: &mut [Option<f64>]| -> Option<Candidate> {
        if j == row || view.is_missing(j, attr) {
            return None;
        }
        for (a, slot) in dist_buf.iter_mut().enumerate() {
            *slot = max_thr[a].and_then(|thr| view.dist(a, row, j, thr));
        }
        let mut dist_min = f64::INFINITY;
        let mut via = 0usize;
        for (idx, rfd) in cluster.iter().enumerate() {
            let lhs = rfd.lhs();
            let satisfied =
                lhs.iter().all(|c| matches!(dist_buf[c.attr], Some(d) if d <= c.threshold));
            if satisfied {
                let sum: f64 = lhs.iter().map(|c| dist_buf[c.attr].unwrap()).sum();
                let dist = sum / lhs.len() as f64;
                if dist < dist_min {
                    dist_min = dist;
                    via = idx;
                }
            }
        }
        dist_min.is_finite().then_some(Candidate { row: j, distance: dist_min, via })
    };
    if !view.parallel() {
        let mut dist_buf: Vec<Option<f64>> = vec![None; m];
        return (0..view.len()).filter_map(|j| score(j, &mut dist_buf)).collect();
    }
    let groups = view.scan_groups();
    let score = &score;
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .enumerate()
            .map(|(gi, rows)| {
                scope.spawn(move || {
                    view.time_group(gi, || {
                        let mut dist_buf: Vec<Option<f64>> = vec![None; m];
                        rows.iter().filter_map(|&j| score(j, &mut dist_buf)).collect::<Vec<_>>()
                    })
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("shard candidate scan worker panicked"));
        }
    });
    out
}

// ---------------------------------------------------------- the main loop

fn ordered_cells(view: &View<'_>, rows: &[usize], order: ImputationOrder) -> Vec<Cell> {
    let mut cells: Vec<Cell> = Vec::new();
    for &row in rows {
        for attr in 0..view.arity() {
            if view.is_missing(row, attr) {
                cells.push(Cell::new(row, attr));
            }
        }
    }
    match order {
        ImputationOrder::RowMajor => {}
        ImputationOrder::ColumnMajor => {
            cells.sort_by_key(|c| (c.col, c.row));
        }
        ImputationOrder::FewestMissingFirst => {
            let mut per_row = vec![0usize; view.len()];
            for c in &cells {
                per_row[c.row] += 1;
            }
            cells.sort_by_key(|c| (per_row[c.row], c.row, c.col));
        }
    }
    cells
}

/// What one cell's attempt produced (mirror of the private `CellAttempt`
/// in `crate::algorithm`).
struct Attempt {
    imputed: Option<ImputedCell>,
    clusters: usize,
    candidates: usize,
    generating_rfds: Vec<usize>,
    winner: Option<ExplainWinner>,
    dried_up: Option<DryReason>,
}

#[allow(clippy::too_many_arguments)]
fn impute_missing_value(
    parts: &[&Relation],
    locate: &[(u32, u32)],
    scratch: &mut Relation,
    row: usize,
    attr: AttrId,
    sigma: &RfdSet,
    config: &RenuverConfig,
    active: &[bool],
    restrict: Option<&[usize]>,
    explain_on: bool,
    legs: Option<&[AtomicU64]>,
    stats: &mut ImputationStats,
) -> Attempt {
    let mut clusters: Vec<(f64, Vec<usize>)> = Vec::new();
    for (i, rfd) in sigma.iter().enumerate() {
        if !active[i] || rfd.rhs_attr() != attr {
            continue;
        }
        let thr = rfd.rhs_threshold();
        match clusters.iter_mut().find(|(t, _)| *t == thr) {
            Some((_, v)) => v.push(i),
            None => clusters.push((thr, vec![i])),
        }
    }
    clusters.sort_by(|a, b| a.0.total_cmp(&b.0));
    if config.cluster_order == ClusterOrder::Descending {
        clusters.reverse();
    }
    let mut attempt = Attempt {
        imputed: None,
        clusters: clusters.len(),
        candidates: 0,
        generating_rfds: Vec::new(),
        winner: None,
        dried_up: None,
    };
    if clusters.is_empty() {
        attempt.dried_up = Some(DryReason::NoActiveRfds);
        return attempt;
    }

    // Selection phase: walk clusters and candidates over an immutable
    // view; the admitted donor's value is written to the scratch only
    // after the view's borrow ends.
    let base = locate.len();
    let selection = {
        let view = View { parts, locate, scratch: &*scratch, legs };
        let plan = build_plan(&view, row, attr, sigma, config.verify_scope, restrict);
        let mut found: Option<(Value, usize, f64, f64, usize)> = None;
        'clusters: for (cluster_threshold, members) in &clusters {
            stats.clusters_visited += 1;
            let rfds: Vec<&Rfd> = members.iter().map(|&i| sigma.get(i)).collect();
            let mut candidates = find_candidates(&view, row, attr, &rfds);
            stats.candidates_scored += candidates.len();
            attempt.candidates += candidates.len();
            if explain_on {
                for cand in &candidates {
                    attempt.generating_rfds.push(members[cand.via]);
                }
            }
            sort_candidates(&mut candidates);
            if let Some(cap) = config.max_candidates_per_cluster {
                candidates.truncate(cap);
            }
            for (pos, cand) in candidates.iter().enumerate() {
                stats.verifications += 1;
                if admits(&view, &plan, attr, cand.row) {
                    if explain_on {
                        // Winner detail against the pre-imputation view.
                        let via_rfd = members[cand.via];
                        let lhs_distances = sigma
                            .get(via_rfd)
                            .lhs()
                            .iter()
                            .map(|c| {
                                view.dist(c.attr, row, cand.row, c.threshold)
                                    .unwrap_or(f64::NAN)
                            })
                            .collect();
                        attempt.winner = Some(ExplainWinner {
                            donor_row: cand.row,
                            distance: cand.distance,
                            via_rfd,
                            lhs_distances,
                            runner_up_margin: candidates
                                .get(pos + 1)
                                .map(|next| next.distance - cand.distance),
                        });
                    }
                    let value = view.value(cand.row, attr).clone();
                    found =
                        Some((value, cand.row, cand.distance, *cluster_threshold, members[cand.via]));
                    break 'clusters;
                }
                stats.verification_failures += 1;
            }
        }
        found
    };
    match selection {
        Some((value, donor_row, distance, cluster_threshold, via_idx)) => {
            scratch.set_value(row - base, attr, value.clone());
            attempt.imputed = Some(ImputedCell {
                cell: Cell::new(row, attr),
                value,
                donor_row,
                distance,
                cluster_threshold,
                via: sigma.get(via_idx).clone(),
            });
        }
        None => {
            attempt.dried_up = Some(if attempt.candidates == 0 {
                DryReason::NoCandidates
            } else {
                DryReason::AllRejected
            });
        }
    }
    attempt.generating_rfds.sort_unstable();
    attempt.generating_rfds.dedup();
    attempt
}

/// Runs one request batch against the shard parts and returns a
/// [`BatchResult`] bit-identical to `Engine::impute_batch` on the
/// unsharded relation: same repaired tuples, outcomes, imputed records
/// (donor rows as global ids), explains, and stats. The parts are
/// read-only — the batch lives in a per-request scratch relation, so
/// concurrent requests never contend.
pub fn impute_sharded(
    parts: &[&Relation],
    locate: &[(u32, u32)],
    sigma: &RfdSet,
    config: &RenuverConfig,
    tuples: Vec<Tuple>,
) -> Result<BatchResult, DataError> {
    let schema = parts
        .first()
        .map(|p| p.schema().clone())
        .expect("impute_sharded needs at least one shard part");
    let mut scratch = Relation::empty(schema);
    for t in tuples {
        scratch.push(t)?;
    }
    let base = locate.len();
    let len = base + scratch.len();

    let budget = &config.budget;
    let tracer = &config.tracer;
    let run_span = tracer.span("core::impute");
    let explain_on = config.explain || tracer.is_enabled();
    let mut stats = ImputationStats::default();

    // Per-shard scan-time legs (nanoseconds), charged by the parallel
    // scan fan-outs and reported as `shard_leg` trace events. Allocated
    // only when traced so the untraced path never touches a clock.
    let legs: Option<Vec<AtomicU64>> =
        tracer.is_enabled().then(|| (0..parts.len()).map(|_| AtomicU64::new(0)).collect());

    // Pre-processing (Algorithm 1 lines 1-6) over the global view; the
    // loop mirrors `RfdSet::partition_keys_budgeted_with`, including the
    // budget poll per RFD.
    let (non_keys, keys) = {
        let _span = run_span.child("core::partition_keys");
        let view = View { parts, locate, scratch: &scratch, legs: legs.as_deref() };
        let mut non_keys = Vec::new();
        let mut keys = Vec::new();
        let mut cut = false;
        for (i, rfd) in sigma.iter().enumerate() {
            if !cut && budget.check("rfd::partition_keys").is_err() {
                cut = true;
            }
            if !cut && is_key(&view, rfd) {
                keys.push(i);
            } else {
                non_keys.push(i);
            }
        }
        (non_keys, keys)
    };
    stats.keys_filtered = keys.len();
    let mut active = vec![false; sigma.len()];
    for &i in &non_keys {
        active[i] = true;
    }
    let mut dormant_keys = keys;

    let incomplete: Vec<usize> = {
        let view = View { parts, locate, scratch: &scratch, legs: legs.as_deref() };
        (base..len).filter(|&r| (0..view.arity()).any(|a| view.is_missing(r, a))).collect()
    };
    let mut imputed: Vec<ImputedCell> = Vec::new();
    let mut explains: Vec<CellExplain> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();

    let cells_span = run_span.child("core::impute_cells");
    let cells = {
        let view = View { parts, locate, scratch: &scratch, legs: legs.as_deref() };
        ordered_cells(&view, &incomplete, config.imputation_order)
    };
    let mut outcomes: Vec<(Cell, CellOutcome)> = Vec::with_capacity(cells.len());
    for Cell { row, col: attr } in cells {
        if !scratch.is_missing(row - base, attr) {
            continue;
        }
        let cell = Cell::new(row, attr);
        stats.missing_total += 1;
        if let Err(trip) = budget.check("core::cell") {
            let outcome = if trip == BudgetTrip::Cancelled {
                stats.cancelled += 1;
                CellOutcome::Cancelled
            } else {
                stats.skipped_budget += 1;
                CellOutcome::SkippedBudget
            };
            stats.unimputed += 1;
            outcomes.push((cell, outcome));
            if config.explain && config.explain_sample.admits(stats.missing_total - 1, false) {
                explains.push(CellExplain {
                    cell,
                    outcome,
                    clusters: 0,
                    candidates: 0,
                    generating_rfds: Vec::new(),
                    winner: None,
                    dried_up: Some(if outcome == CellOutcome::Cancelled {
                        DryReason::Cancelled
                    } else {
                        DryReason::Budget(trip)
                    }),
                });
            }
            continue;
        }
        let degraded = budget.is_limited() && budget.pressure() >= config.degrade_at;
        let attempt = impute_missing_value(
            parts,
            locate,
            &mut scratch,
            row,
            attr,
            sigma,
            config,
            &active,
            degraded.then_some(touched.as_slice()),
            explain_on,
            legs.as_deref(),
            &mut stats,
        );
        let outcome = match attempt.imputed {
            Some(cell_rec) => {
                imputed.push(cell_rec);
                stats.imputed += 1;
                outcomes.push((cell, CellOutcome::Imputed));
                if !touched.contains(&row) {
                    touched.push(row);
                }
                if !config.skip_key_reevaluation && !degraded {
                    let view = View { parts, locate, scratch: &scratch, legs: legs.as_deref() };
                    dormant_keys.retain(|&k| {
                        if stays_key_after_update(&view, sigma.get(k), row) {
                            true
                        } else {
                            active[k] = true;
                            stats.keys_reactivated += 1;
                            false
                        }
                    });
                }
                CellOutcome::Imputed
            }
            None => {
                stats.unimputed += 1;
                outcomes.push((cell, CellOutcome::NoCandidates));
                CellOutcome::NoCandidates
            }
        };
        if config.explain
            && config.explain_sample.admits(stats.missing_total - 1, outcome == CellOutcome::Imputed)
        {
            explains.push(CellExplain {
                cell,
                outcome,
                clusters: attempt.clusters,
                candidates: attempt.candidates,
                generating_rfds: attempt.generating_rfds,
                winner: attempt.winner,
                dried_up: attempt.dried_up,
            });
        }
    }
    drop(cells_span);

    // One `shard_leg` event per part: the scan time the fan-out charged
    // to that part's clock (zero when scans stayed sequential).
    if let Some(legs) = &legs {
        for (k, slot) in legs.iter().enumerate() {
            let scan_us = slot.load(Ordering::Relaxed) / 1_000;
            run_span.event("shard_leg", || {
                vec![
                    ("shard", FieldValue::U64(k as u64)),
                    ("scan_us", FieldValue::U64(scan_us)),
                ]
            });
        }
    }

    let mut report = budget.report();
    if tracer.is_enabled() {
        report.phases = renuver_obs::flamegraph::phase_totals(&tracer.records());
    }

    // Rebase to batch-relative cells exactly as `Engine::impute_batch`
    // does; donor rows stay global.
    let rebase = |c: Cell| Cell::new(c.row - base, c.col);
    let out_tuples: Vec<Tuple> = (0..scratch.len()).map(|i| scratch.tuple(i).clone()).collect();
    let outcomes = outcomes.into_iter().map(|(c, o)| (rebase(c), o)).collect();
    let imputed = imputed
        .into_iter()
        .map(|mut rec| {
            rec.cell = rebase(rec.cell);
            rec
        })
        .collect();
    let explains = explains
        .into_iter()
        .map(|mut exp| {
            exp.cell = rebase(exp.cell);
            exp
        })
        .collect();
    Ok(BatchResult { tuples: out_tuples, outcomes, imputed, explains, stats, budget: report })
}
