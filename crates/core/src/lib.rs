//! The RENUVER imputation algorithm (paper Section 5).
//!
//! RENUVER takes a relation `r` and a set of RFD_c's `Σ` holding on it and
//! fills missing values in three steps:
//!
//! 1. **Pre-processing** (Algorithm 1 lines 1–6): extract the incomplete
//!    tuples `r̂` and drop key-RFDs from `Σ` to obtain `Σ'`.
//! 2. **RFD selection** (lines 7–10): for each missing value `t[A] = _`,
//!    select the RFDs with RHS attribute `A` and partition them into
//!    clusters `ρ_A^i` by RHS threshold.
//! 3. **Imputation** (lines 11–14, Algorithms 2–4): walk the clusters,
//!    generate plausible candidate tuples, rank them by the Equation 2
//!    distance value, and accept the first candidate whose value keeps the
//!    whole instance consistent (`IS_FAULTLESS`). After each successful
//!    imputation, key-RFDs are re-examined — an imputed value can turn a key
//!    into a usable dependency (Example 5.1), and the imputed tuple itself
//!    becomes a candidate for later missing values.

pub mod algorithm;
pub mod audit;
mod batch;
pub mod candidates;
pub mod config;
pub mod engine;
pub mod external;
pub mod result;
pub mod shard;
pub mod verify;

pub use algorithm::Renuver;
pub use audit::{audit, AuditConfig, AuditReport};
pub use candidates::{find_candidate_tuples, find_candidate_tuples_with, Candidate};
pub use config::{
    ClusterOrder, ExplainSample, ImputationOrder, IndexMode, RenuverConfig, VerifyScope,
};
pub use engine::{BatchResult, CommitStats, Engine};
pub use external::SchemaMismatch;
pub use result::{
    CellExplain, CellOutcome, DryReason, ExplainWinner, ImputationResult, ImputationStats,
    ImputedCell, TraceEvent,
};
pub use shard::{
    commit_sharded, impute_sharded, partition, partition_attrs, partition_by, shard_of, ShardPlan,
};
pub use verify::{is_faultless, VerifyPlan};
