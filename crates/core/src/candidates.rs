//! Generation of plausible candidate tuples (Algorithm 3).

use renuver_data::{AttrId, Relation};
use renuver_distance::{intersect_sorted, union_sorted, DistanceOracle, SimilarityIndex};
use renuver_rfd::Rfd;

/// A plausible candidate tuple for a missing value, scored by the minimum
/// Equation 2 distance value across the cluster's RFDs.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Row of the candidate tuple `t_j`.
    pub row: usize,
    /// `dist_min`: the smallest `Σ_B p[B] / |X|` over the cluster RFDs whose
    /// LHS the pair satisfies.
    pub distance: f64,
    /// Index (within the cluster slice) of the RFD that achieved
    /// `dist_min` — the dependency that justifies this candidate.
    pub via: usize,
}

/// FIND_CANDIDATE_TUPLES (Algorithm 3): scores every tuple `t_j ≠ t` with
/// `t_j[A] ≠ _` against the cluster `ρ_A^i` of RFDs, returning the tuples
/// that satisfy at least one RFD's LHS constraints, each with its minimum
/// distance value.
///
/// Distances are resolved through the [`DistanceOracle`] (dictionary-encoded
/// per-column caches); an attribute's distance is only needed up to the
/// largest threshold any cluster RFD puts on it, and a tuple that exceeds
/// every threshold on some attribute short-circuits the RFDs requiring it.
pub fn find_candidate_tuples(
    oracle: &DistanceOracle,
    rel: &Relation,
    row: usize,
    attr: AttrId,
    cluster: &[&Rfd],
) -> Vec<Candidate> {
    find_candidate_tuples_with(oracle, None, rel, row, attr, cluster)
}

/// The donor rows worth scoring, retrieved through the index: the union
/// over the cluster's RFDs of the intersection of each RFD's per-LHS-
/// constraint `rows_within` supersets. `None` when some RFD has no indexed
/// LHS attribute — every row would have to be scored anyway, so the caller
/// scans. The returned rows are ascending, so scoring them in order yields
/// exactly the scan's output (the score closure re-checks every constraint
/// exactly; see the superset contract in `renuver_distance::index`).
fn index_candidate_rows(
    index: &SimilarityIndex,
    rel: &Relation,
    row: usize,
    cluster: &[&Rfd],
) -> Option<Vec<usize>> {
    let mut union: Vec<usize> = Vec::new();
    for rfd in cluster {
        let mut rows: Option<Vec<usize>> = None;
        for c in rfd.lhs() {
            let Some(within) = index.rows_within(rel, c.attr, row, c.threshold) else {
                continue; // unindexed attribute — the exact check covers it
            };
            rows = Some(match rows {
                None => within,
                Some(acc) => intersect_sorted(&acc, &within),
            });
        }
        // An RFD with no indexed LHS attribute can match any row: no
        // pruning is possible for the whole cluster.
        let rows = rows?;
        union = union_sorted(&union, &rows);
    }
    Some(union)
}

/// [`find_candidate_tuples`] with an optional [`SimilarityIndex`]: when
/// every RFD of the cluster has at least one indexed LHS attribute, only
/// the index-retrieved donor rows are scored instead of all `n`. Output is
/// bit-for-bit identical either way (asserted by
/// `tests/index_differential.rs`).
pub fn find_candidate_tuples_with(
    oracle: &DistanceOracle,
    index: Option<&SimilarityIndex>,
    rel: &Relation,
    row: usize,
    attr: AttrId,
    cluster: &[&Rfd],
) -> Vec<Candidate> {
    let m = rel.arity();
    let scorer = ClusterScorer::new(m, cluster);
    let score = |j: usize, dist_buf: &mut [Option<f64>]| -> Option<Candidate> {
        scorer.score(oracle, rel, row, attr, j, dist_buf)
    };

    let n = rel.len();
    if let Some(rows) = index.and_then(|ix| index_candidate_rows(ix, rel, row, cluster)) {
        let mut dist_buf: Vec<Option<f64>> = vec![None; m];
        return rows.into_iter().filter_map(|j| score(j, &mut dist_buf)).collect();
    }
    if rayon::current_num_threads() <= 1 || n < rayon::MIN_PAR_LEN {
        // Sequential path: one reusable distance buffer for the whole scan.
        let mut dist_buf: Vec<Option<f64>> = vec![None; m];
        (0..n).filter_map(|j| score(j, &mut dist_buf)).collect()
    } else {
        // Parallel path: rows are scored in fixed index chunks and merged
        // back in order, so the output is identical to the sequential scan.
        rayon::par_map_indexed(n, |j| score(j, &mut vec![None; m]))
            .into_iter()
            .flatten()
            .collect()
    }
}

/// The per-donor scoring core of FIND_CANDIDATE_TUPLES, split out so the
/// batch-verification cache can re-score a *single* donor row (a row
/// written since a cached list was computed) with exactly the arithmetic
/// the full scan uses.
pub(crate) struct ClusterScorer<'c> {
    cluster: &'c [&'c Rfd],
    /// Largest threshold each attribute is compared against in this
    /// cluster; distances above it are never needed exactly.
    max_thr: Vec<Option<f64>>,
}

impl<'c> ClusterScorer<'c> {
    pub(crate) fn new(arity: usize, cluster: &'c [&'c Rfd]) -> ClusterScorer<'c> {
        let mut max_thr: Vec<Option<f64>> = vec![None; arity];
        for rfd in cluster {
            for c in rfd.lhs() {
                let slot = &mut max_thr[c.attr];
                *slot = Some(slot.map_or(c.threshold, |t: f64| t.max(c.threshold)));
            }
        }
        ClusterScorer { cluster, max_thr }
    }

    /// Scores donor row `j` for the cell `(row, attr)`, filling `dist_buf`
    /// (of length `rel.arity()`) with the partial distance pattern over
    /// the attributes this cluster uses (`None` = missing value on either
    /// side, or beyond every threshold).
    pub(crate) fn score(
        &self,
        oracle: &DistanceOracle,
        rel: &Relation,
        row: usize,
        attr: AttrId,
        j: usize,
        dist_buf: &mut [Option<f64>],
    ) -> Option<Candidate> {
        if j == row || rel.is_missing(j, attr) {
            return None;
        }
        for (a, slot) in dist_buf.iter_mut().enumerate() {
            *slot = self.max_thr[a].and_then(|thr| oracle.distance_bounded(rel, a, row, j, thr));
        }
        let mut dist_min = f64::INFINITY;
        let mut via = 0usize;
        for (idx, rfd) in self.cluster.iter().enumerate() {
            let lhs = rfd.lhs();
            let satisfied =
                lhs.iter().all(|c| matches!(dist_buf[c.attr], Some(d) if d <= c.threshold));
            if satisfied {
                let sum: f64 = lhs.iter().map(|c| dist_buf[c.attr].unwrap()).sum();
                let dist = sum / lhs.len() as f64;
                if dist < dist_min {
                    dist_min = dist;
                    via = idx;
                }
            }
        }
        dist_min.is_finite().then_some(Candidate { row: j, distance: dist_min, via })
    }
}

/// Sorts candidates by ascending distance value (Algorithm 2 line 3),
/// breaking ties by row index so the order — and therefore the whole
/// imputation — is deterministic.
///
/// Uses [`f64::total_cmp`], so NaN distances (possible when a discovered
/// RFD carries a NaN threshold) sort after every finite value instead of
/// panicking mid-imputation.
pub fn sort_candidates(candidates: &mut [Candidate]) {
    candidates.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.row.cmp(&b.row)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Relation, Schema, Value};
    use renuver_rfd::Constraint;

    /// Table 2 sample: Name, City, Phone, Type, Class.
    fn restaurant_sample() -> Relation {
        let schema = Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Phone", AttrType::Text),
            ("Type", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        let t = |name: &str, city: Option<&str>, phone: Option<&str>, ty: Option<&str>, class: i64| {
            vec![
                Value::from(name),
                city.map(Value::from).unwrap_or(Value::Null),
                phone.map(Value::from).unwrap_or(Value::Null),
                ty.map(Value::from).unwrap_or(Value::Null),
                Value::Int(class),
            ]
        };
        Relation::new(
            schema,
            vec![
                t("Granita", Some("Malibu"), Some("310/456-0488"), Some("Californian"), 6),
                t("Chinois Main", Some("LA"), Some("310-392-9025"), Some("French"), 5),
                t("Citrus", Some("Los Angeles"), Some("213/857-0034"), Some("Californian"), 6),
                t("Citrus", Some("Los Angeles"), None, Some("Californian"), 6),
                t("Fenix", Some("Hollywood"), Some("213/848-6677"), None, 5),
                t("Fenix Argyle", None, Some("213/848-6677"), Some("French (new)"), 5),
                t("C. Main", Some("Los Angeles"), None, Some("French"), 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn example_4_6_single_candidate() {
        // φ0: Phone(≤0) → City(≤10). Imputing t6[City]: only t5 shares the
        // phone, so t5 is the only candidate.
        let rel = restaurant_sample();
        let phi0 = Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(1, 10.0));
        let cands = find_candidate_tuples(&DistanceOracle::direct(&rel), &rel, 5, 1, &[&phi0]);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].row, 4);
        assert_eq!(cands[0].distance, 0.0);
    }

    #[test]
    fn example_5_8_two_candidates_ranked() {
        // φ6: Name(≤6), City(≤9) → Phone(≤0) for t7[Phone]: candidates t2
        // (dist 7.5) and t3 (dist 3).
        let rel = restaurant_sample();
        let phi6 = Rfd::new(
            vec![Constraint::new(0, 6.0), Constraint::new(1, 9.0)],
            Constraint::new(2, 0.0),
        );
        let mut cands = find_candidate_tuples(&DistanceOracle::direct(&rel), &rel, 6, 2, &[&phi6]);
        sort_candidates(&mut cands);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].row, 2);
        assert_eq!(cands[0].distance, 3.0);
        assert_eq!(cands[1].row, 1);
        assert_eq!(cands[1].distance, 7.5);
    }

    #[test]
    fn candidates_skip_missing_donor_values() {
        // t4 would match t3 closely but its Phone is missing → not a donor.
        let rel = restaurant_sample();
        let phi6 = Rfd::new(
            vec![Constraint::new(0, 6.0), Constraint::new(1, 9.0)],
            Constraint::new(2, 0.0),
        );
        let cands = find_candidate_tuples(&DistanceOracle::direct(&rel), &rel, 6, 2, &[&phi6]);
        assert!(cands.iter().all(|c| c.row != 3 && c.row != 6));
    }

    #[test]
    fn minimum_distance_across_cluster_rfds() {
        // Two RFDs in one cluster: Class(≤1) → Phone and City(≤0) → Phone.
        // For a pair matching both, dist_min is the smaller mean.
        let rel = restaurant_sample();
        let by_class = Rfd::new(vec![Constraint::new(4, 1.0)], Constraint::new(2, 0.0));
        let by_city = Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0));
        let mut cands = find_candidate_tuples(&DistanceOracle::direct(&rel), &rel, 6, 2, &[&by_class, &by_city]);
        sort_candidates(&mut cands);
        // t3 matches by_city with City distance 0 and by_class with Class
        // distance 1 → min is 0, achieved via the second RFD of the cluster.
        let t3 = cands.iter().find(|c| c.row == 2).unwrap();
        assert_eq!(t3.distance, 0.0);
        assert_eq!(t3.via, 1);
        // `via` indexes the cluster slice, not the candidate list: after
        // sorting it still names the RFD that achieved dist_min, so the
        // engine attributes the imputation to the right dependency.
        for c in &cands {
            let lhs = [&by_class, &by_city][c.via].lhs();
            let sum: f64 = lhs
                .iter()
                .map(|con| {
                    DistanceOracle::direct(&rel)
                        .distance_bounded(&rel, con.attr, 6, c.row, con.threshold)
                        .unwrap()
                })
                .sum();
            assert_eq!(c.distance, sum / lhs.len() as f64, "row {}", c.row);
        }
    }

    #[test]
    fn no_candidates_when_no_lhs_match() {
        let rel = restaurant_sample();
        // Name(≤0) → Phone: no other tuple shares t7's exact name.
        let rfd = Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(2, 0.0));
        assert!(find_candidate_tuples(&DistanceOracle::direct(&rel), &rel, 6, 2, &[&rfd]).is_empty());
    }

    #[test]
    fn indexed_candidates_equal_scan_on_sample() {
        let rel = restaurant_sample();
        let oracle = DistanceOracle::build(&rel, 3000);
        let index = SimilarityIndex::build(&rel, &oracle);
        let phi6 = Rfd::new(
            vec![Constraint::new(0, 6.0), Constraint::new(1, 9.0)],
            Constraint::new(2, 0.0),
        );
        let by_class = Rfd::new(vec![Constraint::new(4, 1.0)], Constraint::new(2, 0.0));
        for cluster in [vec![&phi6], vec![&by_class], vec![&phi6, &by_class]] {
            for row in 0..rel.len() {
                for attr in 0..rel.arity() {
                    let scan = find_candidate_tuples(&oracle, &rel, row, attr, &cluster);
                    let indexed = find_candidate_tuples_with(
                        &oracle,
                        Some(&index),
                        &rel,
                        row,
                        attr,
                        &cluster,
                    );
                    assert_eq!(scan, indexed, "row {row} attr {attr}");
                }
            }
        }
    }

    #[test]
    fn sort_is_deterministic_on_ties() {
        let mut cands = vec![
            Candidate { row: 5, distance: 1.0, via: 0 },
            Candidate { row: 2, distance: 1.0, via: 0 },
            Candidate { row: 9, distance: 0.5, via: 0 },
        ];
        sort_candidates(&mut cands);
        let rows: Vec<usize> = cands.iter().map(|c| c.row).collect();
        assert_eq!(rows, vec![9, 2, 5]);
    }

    #[test]
    fn sort_survives_nan_distances() {
        // Regression: this used to be `partial_cmp(..).unwrap()`, which
        // panics as soon as a NaN distance shows up (e.g. via a discovered
        // RFD with a NaN threshold). NaN now sorts after every finite
        // value, deterministically.
        let mut cands = vec![
            Candidate { row: 1, distance: f64::NAN, via: 0 },
            Candidate { row: 4, distance: 2.0, via: 0 },
            Candidate { row: 3, distance: f64::NAN, via: 0 },
            Candidate { row: 2, distance: 0.0, via: 0 },
        ];
        sort_candidates(&mut cands);
        let rows: Vec<usize> = cands.iter().map(|c| c.row).collect();
        assert_eq!(rows, vec![2, 4, 1, 3]);
        assert!(cands[2].distance.is_nan() && cands[3].distance.is_nan());
    }
}
