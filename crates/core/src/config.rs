//! Configuration knobs for the RENUVER algorithm.
//!
//! The defaults follow the paper's prose and worked examples; the
//! alternatives cover the points where the paper is ambiguous (see
//! DESIGN.md) and feed the ablation benchmarks.

use renuver_budget::Budget;
use renuver_obs::Tracer;

/// Order in which the RHS-threshold clusters `ρ_A^i` are visited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterOrder {
    /// Lowest RHS threshold first — the order of Section 5(b) ("from lowest
    /// to highest threshold values") and of the Figure 1 walk-through
    /// (ρ⁰ before ρ¹ before ρ²). Tighter RHS thresholds come from
    /// dependencies whose candidates agree more closely on `A`, so this
    /// visits the most trustworthy candidates first. Default.
    #[default]
    Ascending,
    /// Highest RHS threshold first — the literal reading of Algorithm 2
    /// line 1 ("in descending order of RHS threshold"). Exposed for the
    /// ablation bench.
    Descending,
}

/// Which dependencies the post-imputation consistency check examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyScope {
    /// Check only RFDs whose LHS contains the imputed attribute — Algorithm
    /// 4 line 1 as written. This is also the only reading consistent with
    /// the Figure 1 walk-through: the accepted imputation of `t7[Phone]`
    /// with t2's phone would be rejected by `φ3: City(≤2) → Phone(≤2)`
    /// (t3 and t7 share the city but end with distant phones) if RFDs with
    /// the imputed attribute on the RHS were checked too. Default.
    #[default]
    LhsOnly,
    /// Additionally check RFDs whose RHS is the imputed attribute, giving
    /// the full `r' ⊨ Σ` guarantee Definition 4.3 asks for. Stricter than
    /// the paper's implementation: higher precision, lower recall. Exposed
    /// for the ablation bench.
    Full,
}

/// Order in which missing cells are visited (Algorithm 1 lines 11–12).
///
/// The paper walks tuples in relation order, attributes within each tuple
/// (row-major). The order matters because imputed tuples immediately become
/// candidate donors for later cells; the alternatives are exposed for the
/// ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImputationOrder {
    /// Tuple by tuple, attributes in schema order — the paper's order.
    #[default]
    RowMajor,
    /// Attribute by attribute across all tuples: every Phone first, then
    /// every City, … Groups the per-attribute cluster work together.
    ColumnMajor,
    /// Tuples with the fewest missing values first: the most-complete
    /// tuples are repaired (and become reliable donors) before the
    /// hardest ones are attempted.
    FewestMissingFirst,
}

/// How `distance ≤ t` predicates are resolved in candidate generation,
/// key detection, and verification.
///
/// Every mode produces bit-for-bit identical [`crate::ImputationResult`]s
/// (asserted by `tests/index_differential.rs`): the
/// [`renuver_distance::SimilarityIndex`] only prunes which rows receive
/// the exact distance check, never the check itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Always scan every row — the reference path.
    Scan,
    /// Always build and consult the per-attribute similarity index.
    Indexed,
    /// Build the index only for relations of at least
    /// [`AUTO_MIN_ROWS`] rows, where construction pays for itself;
    /// smaller relations take the scan path. Default.
    #[default]
    Auto,
}

/// Row count at which [`IndexMode::Auto`] switches from scanning to
/// indexing: below this, a scan touches so few rows that the index build
/// costs more than it saves.
pub const AUTO_MIN_ROWS: usize = 256;

/// Which missing cells get a [`crate::result::CellExplain`] record (and a
/// `cell` trace event). On very wide runs the per-cell events dominate the
/// trace; sampling keeps traced runs small without touching any
/// imputation decision — the sample gate sits strictly on the emission
/// side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainSample {
    /// Every missing cell. Default.
    #[default]
    All,
    /// Every k-th missing cell in visiting order, starting with the
    /// first (`0` and `1` both mean every cell).
    EveryKth(usize),
    /// Only cells that stayed dry — skipped, cancelled, or without an
    /// admissible candidate. Imputed cells are elided.
    DryOnly,
}

impl ExplainSample {
    /// Whether the `seq`-th missing cell (0-based, visiting order) with
    /// the given outcome passes the sample gate.
    pub fn admits(self, seq: usize, imputed: bool) -> bool {
        match self {
            ExplainSample::All => true,
            ExplainSample::EveryKth(k) => k <= 1 || seq.is_multiple_of(k),
            ExplainSample::DryOnly => !imputed,
        }
    }
}

/// RENUVER configuration.
#[derive(Debug, Clone)]
pub struct RenuverConfig {
    /// Cluster visiting order (default: ascending RHS threshold).
    pub cluster_order: ClusterOrder,
    /// Consistency-check scope (default: LHS-only, per Algorithm 4).
    pub verify_scope: VerifyScope,
    /// Skip the key-RFD re-examination after successful imputations
    /// (Algorithm 1 line 14). `false` (default) re-examines, as the paper
    /// does; `true` trades a little recall for speed — the ablation bench
    /// quantifies the trade.
    pub skip_key_reevaluation: bool,
    /// Cap on how many ranked candidates are verified per cluster before
    /// falling through to the next cluster. `None` (default) verifies all,
    /// as in Algorithm 2.
    pub max_candidates_per_cluster: Option<usize>,
    /// Missing-cell visiting order (default: the paper's row-major).
    pub imputation_order: ImputationOrder,
    /// Collect a [`crate::result::TraceEvent`] log of every decision
    /// (clusters visited, candidates rejected). Off by default — the log
    /// grows with the candidate count.
    pub trace: bool,
    /// Worker threads for the imputation hot paths (distance-matrix
    /// construction, donor-row scans, verification scans). `0` (default)
    /// uses all available cores; `1` runs the exact sequential code path;
    /// any other value caps the pool at that many threads.
    ///
    /// Results are bit-for-bit identical for every setting: the parallel
    /// scans partition rows into fixed chunks and merge them back in index
    /// order, so candidate ranking, tie-breaking, and the final
    /// [`crate::result::ImputationResult`] never depend on the thread
    /// count. `tests/parallel_determinism.rs` asserts this equivalence on
    /// the restaurant sample and a 5k-row synthetic relation.
    pub parallelism: usize,
    /// Execution budget for the run, polled before each missing cell and
    /// inside the hot scans (oracle build, key partitioning). The default
    /// budget is unlimited; with a limit set the run degrades instead of
    /// overrunning — see [`crate::result::CellOutcome`] for the per-cell
    /// taxonomy and [`RenuverConfig::degrade_at`] for the intermediate
    /// rung.
    pub budget: Budget,
    /// Budget-pressure fraction (see [`Budget::pressure`]) at which the
    /// engine drops from full verification to the changed-cell
    /// neighborhood check ([`crate::verify::VerifyPlan::build_over`]).
    /// `1.0` disables the intermediate rung (full verify until the budget
    /// trips); the default `0.9` spends the last tenth of the budget in
    /// the cheap mode to fill more cells before the hard stop.
    pub degrade_at: f64,
    /// Similarity-index usage (default: [`IndexMode::Auto`]). The indexed
    /// and scan paths make identical decisions; this only trades index
    /// construction time against per-cell scan time.
    pub index_mode: IndexMode,
    /// Structured tracer for the run. The default is disabled — every
    /// instrumentation site short-circuits on one branch and the run's
    /// decisions are bit-for-bit identical to an uninstrumented build
    /// (asserted by `tests/trace_schema.rs`). An enabled tracer collects
    /// spans, events, and metrics; serialize with
    /// [`renuver_obs::Tracer::write_jsonl`].
    pub tracer: Tracer,
    /// Collect a per-cell [`crate::result::CellExplain`] record — which
    /// RFDs generated candidates, the winner's LHS distance vector and
    /// runner-up margin, the first dry-up reason — into
    /// [`crate::result::ImputationResult::explains`]. Off by default; an
    /// enabled tracer computes the same records for its `cell` events
    /// whether or not this flag stores them in the result.
    pub explain: bool,
    /// Which cells the explain/trace emission covers (default: all).
    /// Applies to both [`RenuverConfig::explain`] records and the
    /// tracer's `cell` events; decisions are unaffected.
    pub explain_sample: ExplainSample,
    /// Share witness scans and candidate scans between missing cells with
    /// the same imputed attribute and LHS signature (the batch
    /// verification cache, `crate::batch`). `true` (default) caches;
    /// results are bit-for-bit identical either way (asserted by
    /// `tests/batch_differential.rs`) — this only trades memory for
    /// skipped relation scans on signature-sharing cells.
    pub batch_verify: bool,
}

impl Default for RenuverConfig {
    fn default() -> Self {
        RenuverConfig {
            cluster_order: ClusterOrder::default(),
            verify_scope: VerifyScope::default(),
            skip_key_reevaluation: false,
            max_candidates_per_cluster: None,
            imputation_order: ImputationOrder::default(),
            trace: false,
            parallelism: 0,
            budget: Budget::unlimited(),
            degrade_at: 0.9,
            index_mode: IndexMode::default(),
            tracer: Tracer::disabled(),
            explain: false,
            explain_sample: ExplainSample::default(),
            batch_verify: true,
        }
    }
}

impl RenuverConfig {
    /// The paper-faithful default configuration.
    pub fn paper() -> Self {
        RenuverConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let cfg = RenuverConfig::default();
        assert_eq!(cfg.cluster_order, ClusterOrder::Ascending);
        assert_eq!(cfg.verify_scope, VerifyScope::LhsOnly);
        assert!(!cfg.skip_key_reevaluation);
        assert!(cfg.max_candidates_per_cluster.is_none());
        assert_eq!(cfg.imputation_order, ImputationOrder::RowMajor);
        assert_eq!(cfg.parallelism, 0, "default uses all available cores");
        assert!(!cfg.budget.is_limited(), "default budget is unlimited");
        assert_eq!(cfg.degrade_at, 0.9);
        assert_eq!(cfg.index_mode, IndexMode::Auto);
        assert!(!cfg.tracer.is_enabled(), "default tracer is disabled");
        assert!(!cfg.explain, "explain records are opt-in");
        assert_eq!(cfg.explain_sample, ExplainSample::All, "no sampling by default");
        assert!(cfg.batch_verify, "signature-sharing cache is on by default");
    }

    #[test]
    fn sample_gates() {
        assert!(ExplainSample::All.admits(7, true));
        assert!(ExplainSample::EveryKth(0).admits(7, true));
        assert!(ExplainSample::EveryKth(1).admits(7, true));
        assert!(ExplainSample::EveryKth(3).admits(0, true));
        assert!(!ExplainSample::EveryKth(3).admits(1, true));
        assert!(ExplainSample::EveryKth(3).admits(3, false));
        assert!(ExplainSample::DryOnly.admits(4, false));
        assert!(!ExplainSample::DryOnly.admits(4, true));
    }
}
