//! Post-hoc semantic-consistency audit (Definition 4.3).
//!
//! RENUVER verifies each imputation as it happens; this module answers the
//! *global* question after the fact: does `r' ⊨ Σ` hold, and if not, which
//! dependencies are violated, by which pairs, and do imputed cells
//! participate? Downstream users run the audit after any repair — ours or
//! a third party's — to quantify how much integrity an imputation bought
//! or cost.

use renuver_data::{Cell, Relation};
use renuver_distance::DistanceOracle;
use renuver_rfd::check::{pair_satisfies_lhs_with, pair_satisfies_rhs_with};
use renuver_rfd::{Rfd, RfdSet};

/// One violated dependency with its witnessing pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the violated RFD in the audited set.
    pub rfd: usize,
    /// Violating pairs `(i, j)`, `i < j`, capped at
    /// [`AuditConfig::max_pairs_per_rfd`].
    pub pairs: Vec<(usize, usize)>,
    /// Total violating pairs (may exceed `pairs.len()` when capped).
    pub total_pairs: usize,
}

/// Audit configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Cap on the witnessing pairs recorded per violated dependency (the
    /// count in [`Violation::total_pairs`] is always exact).
    pub max_pairs_per_rfd: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig { max_pairs_per_rfd: 16 }
    }
}

/// The audit result: violations plus summary counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Violated dependencies, in `Σ` order.
    pub violations: Vec<Violation>,
    /// Dependencies checked.
    pub checked: usize,
    /// Dependencies satisfied.
    pub satisfied: usize,
    /// Total violating pairs across all dependencies.
    pub violating_pairs: usize,
    /// Violating pairs where at least one side is one of the audited
    /// cells (e.g. freshly imputed cells) — the share attributable to the
    /// repair when those cells are passed in.
    pub pairs_touching_audited_cells: usize,
}

impl AuditReport {
    /// `true` iff the instance satisfies every audited dependency —
    /// Definition 4.3's `r' ⊨ Σ`.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits `rel` against `sigma`. `audited_cells` (typically the imputed
/// cells of a repair) attributes violations: a violating pair counts as
/// "touching" when either tuple owns one of those cells on an attribute
/// the dependency mentions.
pub fn audit(
    rel: &Relation,
    sigma: &RfdSet,
    audited_cells: &[Cell],
    cfg: &AuditConfig,
) -> AuditReport {
    let oracle = DistanceOracle::build(rel, 3000);
    let mut report = AuditReport { checked: sigma.len(), ..AuditReport::default() };
    for (idx, rfd) in sigma.iter().enumerate() {
        let mut pairs = Vec::new();
        let mut total = 0usize;
        let n = rel.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if pair_satisfies_lhs_with(&oracle, rel, rfd, i, j)
                    && !pair_satisfies_rhs_with(&oracle, rel, rfd, i, j)
                {
                    total += 1;
                    if pairs.len() < cfg.max_pairs_per_rfd {
                        pairs.push((i, j));
                    }
                    if touches(rfd, i, j, audited_cells) {
                        report.pairs_touching_audited_cells += 1;
                    }
                }
            }
        }
        if total > 0 {
            report.violating_pairs += total;
            report.violations.push(Violation { rfd: idx, pairs, total_pairs: total });
        } else {
            report.satisfied += 1;
        }
    }
    report
}

/// Does the pair `(i, j)` involve an audited cell on an attribute `rfd`
/// mentions?
fn touches(rfd: &Rfd, i: usize, j: usize, cells: &[Cell]) -> bool {
    cells.iter().any(|c| {
        (c.row == i || c.row == j)
            && (rfd.lhs_contains(c.col) || rfd.rhs_attr() == c.col)
    })
}

/// Renders the report with dependency notation, e.g. for CLI output.
pub fn render_report(report: &AuditReport, sigma: &RfdSet, rel: &Relation) -> String {
    let mut out = format!(
        "audit: {}/{} dependencies satisfied, {} violating pairs\n",
        report.satisfied, report.checked, report.violating_pairs
    );
    if !report.violations.is_empty() {
        out.push_str(&format!(
            "       {} violating pairs touch the audited cells\n",
            report.pairs_touching_audited_cells
        ));
    }
    for v in &report.violations {
        out.push_str(&format!(
            "  VIOLATED {} ({} pairs, e.g. {:?})\n",
            sigma.get(v.rfd).display(rel.schema()),
            v.total_pairs,
            &v.pairs[..v.pairs.len().min(3)],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Renuver;
    use crate::config::RenuverConfig;
    use renuver_data::{AttrType, Schema, Value};
    use renuver_rfd::Constraint;

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(schema, rows).unwrap()
    }

    fn a_to_b() -> RfdSet {
        RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )])
    }

    #[test]
    fn clean_instance_is_consistent() {
        let r = rel(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ]);
        let report = audit(&r, &a_to_b(), &[], &AuditConfig::default());
        assert!(report.is_consistent());
        assert_eq!(report.satisfied, 1);
        assert_eq!(report.violating_pairs, 0);
    }

    #[test]
    fn violations_reported_with_pairs() {
        let r = rel(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(99)],
            vec![Value::Int(1), Value::Int(10)],
        ]);
        let report = audit(&r, &a_to_b(), &[], &AuditConfig::default());
        assert!(!report.is_consistent());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].total_pairs, 2); // (0,1) and (1,2)
        assert_eq!(report.violations[0].pairs, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn pair_cap_respected_but_total_exact() {
        let mut rows = vec![vec![Value::Int(1), Value::Int(10)]; 6];
        rows.push(vec![Value::Int(1), Value::Int(99)]);
        let r = rel(rows);
        let report = audit(&r, &a_to_b(), &[], &AuditConfig { max_pairs_per_rfd: 2 });
        assert_eq!(report.violations[0].pairs.len(), 2);
        assert_eq!(report.violations[0].total_pairs, 6);
    }

    #[test]
    fn audited_cells_attribution() {
        let r = rel(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(99)],
        ]);
        // The pair violates; attributing cell (1, B) marks it as touching.
        let touched = audit(&r, &a_to_b(), &[Cell::new(1, 1)], &AuditConfig::default());
        assert_eq!(touched.pairs_touching_audited_cells, 1);
        // A cell on an attribute the RFD never mentions does not count...
        // (no such attribute exists in this 2-column schema; use a row the
        // violation does not involve instead).
        let untouched = audit(&r, &a_to_b(), &[], &AuditConfig::default());
        assert_eq!(untouched.pairs_touching_audited_cells, 0);
    }

    #[test]
    fn attribution_requires_a_mentioned_attribute() {
        // A cell on a row the violating pair involves, but on an attribute
        // the dependency never mentions, must not attribute the pair.
        let schema = Schema::new([
            ("A", AttrType::Int),
            ("B", AttrType::Int),
            ("C", AttrType::Int),
        ])
        .unwrap();
        let r = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(7)],
                vec![Value::Int(1), Value::Int(99), Value::Int(8)],
            ],
        )
        .unwrap();
        let sigma = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let off_attr = audit(&r, &sigma, &[Cell::new(1, 2)], &AuditConfig::default());
        assert_eq!(off_attr.violating_pairs, 1);
        assert_eq!(off_attr.pairs_touching_audited_cells, 0);
        // The same row with the RHS attribute does attribute it.
        let on_attr = audit(&r, &sigma, &[Cell::new(1, 1)], &AuditConfig::default());
        assert_eq!(on_attr.pairs_touching_audited_cells, 1);
        // As does an LHS attribute.
        let on_lhs = audit(&r, &sigma, &[Cell::new(0, 0)], &AuditConfig::default());
        assert_eq!(on_lhs.pairs_touching_audited_cells, 1);
    }

    #[test]
    fn renuver_output_passes_its_own_audit_under_full_scope() {
        // With Full verification, every imputation preserves r' ⊨ Σ for
        // pairs involving imputed rows; starting from a consistent
        // instance the whole output must audit clean.
        let r = rel(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(2), Value::Null],
        ]);
        let sigma = a_to_b();
        let result = Renuver::new(RenuverConfig {
            verify_scope: crate::config::VerifyScope::Full,
            ..RenuverConfig::default()
        })
        .impute(&r, &sigma);
        assert_eq!(result.stats.imputed, 2);
        let cells: Vec<Cell> = result.imputed.iter().map(|ic| ic.cell).collect();
        let report = audit(&result.relation, &sigma, &cells, &AuditConfig::default());
        assert!(report.is_consistent(), "{report:?}");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The report's verdict agrees with an independent brute-force
            /// sweep over the same oracle primitive: a clean report means
            /// no violating pair exists, and the pair counts stay exact no
            /// matter how tight the recording cap is.
            #[test]
            fn clean_report_admits_no_violating_pair(
                rows in proptest::collection::vec((0i64..4, 0i64..4), 2..12),
                cap in 1usize..4,
            ) {
                let r = rel(rows.iter().map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]).collect());
                let sigma = a_to_b();
                let report = audit(&r, &sigma, &[], &AuditConfig { max_pairs_per_rfd: cap });

                let oracle = DistanceOracle::build(&r, 3000);
                let rfd = sigma.get(0);
                let mut violating = 0usize;
                for i in 0..r.len() {
                    for j in (i + 1)..r.len() {
                        if pair_satisfies_lhs_with(&oracle, &r, rfd, i, j)
                            && !pair_satisfies_rhs_with(&oracle, &r, rfd, i, j)
                        {
                            violating += 1;
                        }
                    }
                }
                prop_assert_eq!(report.is_consistent(), violating == 0);
                prop_assert_eq!(report.violating_pairs, violating);
                if let Some(v) = report.violations.first() {
                    prop_assert_eq!(v.total_pairs, violating);
                    prop_assert!(v.pairs.len() <= cap.min(violating));
                }
            }
        }
    }

    #[test]
    fn render_is_readable() {
        let r = rel(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(99)],
        ]);
        let sigma = a_to_b();
        let report = audit(&r, &sigma, &[], &AuditConfig::default());
        let text = render_report(&report, &sigma, &r);
        assert!(text.contains("0/1 dependencies satisfied"), "{text}");
        assert!(text.contains("VIOLATED A(≤0) → B(≤0)"), "{text}");
    }
}
