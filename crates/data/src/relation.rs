//! Relation instances: collections of tuples over a schema.

use std::fmt;

use crate::error::DataError;
use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// A tuple `t ∈ r`: one value per schema attribute, in schema order.
pub type Tuple = Vec<Value>;

/// Coordinates of a single cell `t[A]` in a relation: row (tuple index) and
/// column (attribute id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Tuple index within the relation.
    pub row: usize,
    /// Attribute id within the schema.
    pub col: AttrId,
}

impl Cell {
    /// Creates a cell coordinate.
    pub fn new(row: usize, col: AttrId) -> Self {
        Cell { row, col }
    }
}

/// A relation instance `r` of a schema `R` (Definition 3.1).
///
/// Tuples are stored row-major; a cell is addressed as `rel[(row, col)]` via
/// [`Relation::value`]. Missing values are `Value::Null`.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation { schema, tuples: Vec::new() }
    }

    /// Creates a relation from pre-built tuples, validating arity and types.
    ///
    /// # Errors
    /// [`DataError::ArityMismatch`] if a tuple's length differs from the
    /// schema arity, [`DataError::TypeMismatch`] if a non-null value does not
    /// match its attribute's declared type.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self, DataError> {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.push(t)?;
        }
        Ok(rel)
    }

    /// Appends a tuple, validating arity and types.
    pub fn push(&mut self, tuple: Tuple) -> Result<(), DataError> {
        if tuple.len() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.len(),
            });
        }
        for (col, v) in tuple.iter().enumerate() {
            if let Some(ty) = v.attr_type() {
                if ty != self.schema.ty(col) {
                    return Err(DataError::TypeMismatch {
                        attr: self.schema.name(col).to_owned(),
                        expected: self.schema.ty(col).to_string(),
                        value: v.render(),
                    });
                }
            }
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `n`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of attributes `m`.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The tuple at `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn tuple(&self, row: usize) -> &Tuple {
        &self.tuples[row]
    }

    /// The value of cell `(row, col)` — the paper's `t[A]`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn value(&self, row: usize, col: AttrId) -> &Value {
        &self.tuples[row][col]
    }

    /// Overwrites the value of cell `(row, col)` without type checking.
    /// Used by imputers which already hold schema-typed values.
    #[inline]
    pub fn set_value(&mut self, row: usize, col: AttrId, v: Value) {
        self.tuples[row][col] = v;
    }

    /// Overwrites a cell with type validation.
    pub fn set_value_checked(&mut self, cell: Cell, v: Value) -> Result<(), DataError> {
        if cell.row >= self.len() {
            return Err(DataError::OutOfBounds { what: "row", index: cell.row, len: self.len() });
        }
        if cell.col >= self.arity() {
            return Err(DataError::OutOfBounds {
                what: "column",
                index: cell.col,
                len: self.arity(),
            });
        }
        if let Some(ty) = v.attr_type() {
            if ty != self.schema.ty(cell.col) {
                return Err(DataError::TypeMismatch {
                    attr: self.schema.name(cell.col).to_owned(),
                    expected: self.schema.ty(cell.col).to_string(),
                    value: v.render(),
                });
            }
        }
        self.tuples[cell.row][cell.col] = v;
        Ok(())
    }

    /// Iterates over the tuples in row order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// `true` iff cell `(row, col)` holds a missing value (`t[A] = _`).
    #[inline]
    pub fn is_missing(&self, row: usize, col: AttrId) -> bool {
        self.tuples[row][col].is_null()
    }

    /// All cells holding missing values, in row-major order.
    pub fn missing_cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for (row, t) in self.tuples.iter().enumerate() {
            for (col, v) in t.iter().enumerate() {
                if v.is_null() {
                    out.push(Cell::new(row, col));
                }
            }
        }
        out
    }

    /// Total number of missing values in the relation.
    pub fn missing_count(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| t.iter().filter(|v| v.is_null()).count())
            .sum()
    }

    /// Row indices of the incomplete tuples — the paper's `r̂ ⊆ r`
    /// (Definition 4.1).
    pub fn incomplete_rows(&self) -> Vec<usize> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| t.iter().any(Value::is_null))
            .map(|(row, _)| row)
            .collect()
    }

    /// Projects tuple `row` onto the attribute set `attrs` — the paper's
    /// `t[X]` / `Π_X(t)`.
    pub fn project(&self, row: usize, attrs: &[AttrId]) -> Vec<&Value> {
        attrs.iter().map(|&a| &self.tuples[row][a]).collect()
    }

    /// Drops all tuples from index `len` onwards (no-op when `len` is not
    /// below the current length). Used to split off appended donor tuples.
    pub fn truncate(&mut self, len: usize) {
        self.tuples.truncate(len);
    }

    /// A new relation containing only the rows for which `pred` is true.
    pub fn filter_rows(&self, mut pred: impl FnMut(usize, &Tuple) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .enumerate()
                .filter(|(i, t)| pred(*i, t))
                .map(|(_, t)| t.clone())
                .collect(),
        }
    }

    /// A new relation over the named attributes, in the given order.
    ///
    /// # Errors
    /// [`DataError::UnknownAttribute`] for names not in the schema.
    pub fn select(&self, attrs: &[&str]) -> Result<Relation, DataError> {
        let ids: Vec<AttrId> = attrs
            .iter()
            .map(|name| self.schema.require(name))
            .collect::<Result<_, _>>()?;
        let schema = Schema::new(
            ids.iter()
                .map(|&id| (self.schema.name(id).to_owned(), self.schema.ty(id))),
        )?;
        Ok(Relation {
            schema,
            tuples: self
                .tuples
                .iter()
                .map(|t| ids.iter().map(|&id| t[id].clone()).collect())
                .collect(),
        })
    }

    /// Appends every tuple of `other`, which must share the schema.
    ///
    /// # Errors
    /// [`DataError::ArityMismatch`] when the schemas differ (reported via
    /// the first offending tuple).
    pub fn append_relation(&mut self, other: &Relation) -> Result<(), DataError> {
        if other.schema != self.schema {
            return Err(DataError::ArityMismatch {
                expected: self.arity(),
                actual: other.arity(),
            });
        }
        self.tuples.extend(other.tuples.iter().cloned());
        Ok(())
    }

    /// A new relation with the rows sorted by the given attribute
    /// ([`Value::total_cmp`]; missing values sort first), ties broken by
    /// the original order (stable).
    pub fn sorted_by(&self, attr: AttrId) -> Relation {
        let mut tuples = self.tuples.clone();
        tuples.sort_by(|a, b| a[attr].total_cmp(&b[attr]));
        Relation { schema: self.schema.clone(), tuples }
    }

    /// Distinct non-null values of column `col`, sorted with
    /// [`Value::total_cmp`]. This is the *active domain* of the attribute,
    /// used by baselines for candidate enumeration.
    pub fn active_domain(&self, col: AttrId) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .tuples
            .iter()
            .map(|t| &t[col])
            .filter(|v| !v.is_null())
            .cloned()
            .collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup();
        vals
    }
}

impl fmt::Display for Relation {
    /// Renders the relation as an aligned text table, the way the paper
    /// prints its samples (Table 2).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.arity();
        let mut widths: Vec<usize> =
            (0..m).map(|c| self.schema.name(c).chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (cell, w) in row.iter().zip(widths.iter_mut()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        for (c, w) in widths.iter().enumerate() {
            if c > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:width$}", self.schema.name(c), width = w)?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{:width$}", cell, width = widths[c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn sample() -> Relation {
        let schema = Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap();
        Relation::new(
            schema,
            vec![
                vec!["Granita".into(), "Malibu".into(), Value::Int(6)],
                vec!["Citrus".into(), Value::Null, Value::Int(6)],
                vec![Value::Null, "LA".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.value(0, 1), &Value::Text("Malibu".into()));
        assert!(r.is_missing(1, 1));
    }

    #[test]
    fn missing_cells_row_major() {
        let r = sample();
        assert_eq!(
            r.missing_cells(),
            vec![Cell::new(1, 1), Cell::new(2, 0), Cell::new(2, 2)]
        );
        assert_eq!(r.missing_count(), 3);
    }

    #[test]
    fn incomplete_rows() {
        assert_eq!(sample().incomplete_rows(), vec![1, 2]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = sample();
        let err = r.push(vec![Value::Null]).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut r = sample();
        let err = r
            .push(vec![Value::Int(1), "x".into(), Value::Int(2)])
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
    }

    #[test]
    fn null_fits_any_column() {
        let mut r = sample();
        r.push(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn projection() {
        let r = sample();
        let p = r.project(0, &[2, 0]);
        assert_eq!(p, vec![&Value::Int(6), &Value::Text("Granita".into())]);
    }

    #[test]
    fn active_domain_sorted_distinct() {
        let r = sample();
        assert_eq!(r.active_domain(2), vec![Value::Int(6)]);
        assert_eq!(
            r.active_domain(1),
            vec![Value::Text("LA".into()), Value::Text("Malibu".into())]
        );
    }

    #[test]
    fn set_value_checked_bounds_and_types() {
        let mut r = sample();
        assert!(r
            .set_value_checked(Cell::new(1, 1), "Hollywood".into())
            .is_ok());
        assert!(matches!(
            r.set_value_checked(Cell::new(9, 0), Value::Null),
            Err(DataError::OutOfBounds { .. })
        ));
        assert!(matches!(
            r.set_value_checked(Cell::new(0, 2), "six".into()),
            Err(DataError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn truncate_drops_tail() {
        let mut r = sample();
        r.truncate(1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, 0), &Value::Text("Granita".into()));
        r.truncate(5); // beyond length: no-op
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn filter_rows_keeps_matching() {
        let r = sample();
        let only_complete = r.filter_rows(|_, t| t.iter().all(|v| !v.is_null()));
        assert_eq!(only_complete.len(), 1);
        assert_eq!(only_complete.value(0, 0), &Value::Text("Granita".into()));
        let by_index = r.filter_rows(|i, _| i != 0);
        assert_eq!(by_index.len(), 2);
    }

    #[test]
    fn select_projects_and_reorders() {
        let r = sample();
        let p = r.select(&["Class", "Name"]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.schema().name(0), "Class");
        assert_eq!(p.value(0, 0), &Value::Int(6));
        assert_eq!(p.value(0, 1), &Value::Text("Granita".into()));
        assert!(matches!(
            r.select(&["Nope"]),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn append_relation_requires_same_schema() {
        let mut r = sample();
        let other = sample();
        r.append_relation(&other).unwrap();
        assert_eq!(r.len(), 6);
        let different = Relation::empty(
            Schema::new([("X", AttrType::Int)]).unwrap(),
        );
        assert!(r.append_relation(&different).is_err());
    }

    #[test]
    fn sorted_by_orders_with_nulls_first() {
        let r = sample();
        let sorted = r.sorted_by(0); // Name column; row 2 has Null name
        assert!(sorted.value(0, 0).is_null());
        assert_eq!(sorted.value(1, 0), &Value::Text("Citrus".into()));
        assert_eq!(sorted.value(2, 0), &Value::Text("Granita".into()));
    }

    #[test]
    fn display_renders_table() {
        let out = sample().to_string();
        assert!(out.starts_with("Name"));
        assert!(out.contains("Granita"));
        assert!(out.contains('_'));
    }
}
