//! Error type for the data substrate.

use std::fmt;

/// Errors produced while building schemas and relations or decoding CSV.
#[derive(Debug)]
pub enum DataError {
    /// Two attributes in one schema share a name.
    DuplicateAttribute(String),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute type string could not be parsed.
    UnknownType(String),
    /// A tuple's arity does not match the schema's.
    ArityMismatch {
        /// Arity the schema demands.
        expected: usize,
        /// Arity the tuple has.
        actual: usize,
    },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// Declared attribute type.
        expected: String,
        /// The offending value, rendered.
        value: String,
    },
    /// A row or column index is out of bounds.
    OutOfBounds {
        /// What was indexed ("row" or "column").
        what: &'static str,
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        len: usize,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Malformed ARFF input.
    Arff {
        /// 1-based line number (0 when the problem is the file as a whole).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateAttribute(n) => write!(f, "duplicate attribute name {n:?}"),
            DataError::UnknownAttribute(n) => write!(f, "unknown attribute {n:?}"),
            DataError::UnknownType(t) => write!(f, "unknown attribute type {t:?}"),
            DataError::ArityMismatch { expected, actual } => {
                write!(f, "tuple arity {actual} does not match schema arity {expected}")
            }
            DataError::TypeMismatch { attr, expected, value } => {
                write!(f, "value {value:?} does not fit attribute {attr:?} of type {expected}")
            }
            DataError::OutOfBounds { what, index, len } => {
                write!(f, "{what} index {index} out of bounds (len {len})")
            }
            DataError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            DataError::Arff { line, message } => {
                write!(f, "ARFF error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DataError::ArityMismatch { expected: 3, actual: 2 };
        assert_eq!(e.to_string(), "tuple arity 2 does not match schema arity 3");
        let e = DataError::Csv { line: 4, message: "unterminated quote".into() };
        assert!(e.to_string().contains("line 4"));
        let e = DataError::Arff { line: 7, message: "empty nominal domain".into() };
        assert_eq!(e.to_string(), "ARFF error at line 7: empty nominal domain");
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let e = DataError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
