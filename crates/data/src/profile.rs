//! Per-attribute statistical profiles of a relation.
//!
//! Profiles summarize what a column holds — null counts, distinct counts,
//! numeric range and mean, text length range — and feed distribution-aware
//! features: the CLI's `stats` command, and (through
//! `renuver-rfd`'s `auto_limits`) the per-attribute discovery threshold
//! caps of the paper's future-work item.

use crate::relation::Relation;
use crate::schema::{AttrId, AttrType};
use crate::value::Value;

/// Statistics of one attribute over an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrProfile {
    /// Attribute id.
    pub attr: AttrId,
    /// Attribute name (copied from the schema for self-contained display).
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
    /// Rows with a missing value here.
    pub nulls: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Numeric range `(min, max)` for numeric columns with data.
    pub numeric_range: Option<(f64, f64)>,
    /// Mean of the numeric values.
    pub numeric_mean: Option<f64>,
    /// `(shortest, longest)` value length in chars, for text columns.
    pub text_len_range: Option<(usize, usize)>,
}

impl AttrProfile {
    /// Fraction of rows missing this attribute (0 for an empty relation).
    pub fn null_rate(&self, total_rows: usize) -> f64 {
        if total_rows == 0 {
            0.0
        } else {
            self.nulls as f64 / total_rows as f64
        }
    }

    /// A crude uniqueness score: distinct / non-null (1 = key-like).
    pub fn uniqueness(&self, total_rows: usize) -> f64 {
        let present = total_rows.saturating_sub(self.nulls);
        if present == 0 {
            0.0
        } else {
            self.distinct as f64 / present as f64
        }
    }
}

/// Profiles one attribute.
pub fn profile_attr(rel: &Relation, attr: AttrId) -> AttrProfile {
    let mut nulls = 0usize;
    let mut distinct: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut num_min = f64::INFINITY;
    let mut num_max = f64::NEG_INFINITY;
    let mut num_sum = 0.0;
    let mut num_count = 0usize;
    let mut len_min = usize::MAX;
    let mut len_max = 0usize;
    for t in rel.tuples() {
        match &t[attr] {
            Value::Null => nulls += 1,
            v => {
                distinct.insert(v.render());
                if let Some(x) = v.as_f64() {
                    num_min = num_min.min(x);
                    num_max = num_max.max(x);
                    num_sum += x;
                    num_count += 1;
                }
                if let Some(s) = v.as_text() {
                    let len = s.chars().count();
                    len_min = len_min.min(len);
                    len_max = len_max.max(len);
                }
            }
        }
    }
    AttrProfile {
        attr,
        name: rel.schema().name(attr).to_owned(),
        ty: rel.schema().ty(attr),
        nulls,
        distinct: distinct.len(),
        numeric_range: (num_count > 0).then_some((num_min, num_max)),
        numeric_mean: (num_count > 0).then(|| num_sum / num_count as f64),
        text_len_range: (len_max > 0 || len_min != usize::MAX)
            .then_some((len_min.min(len_max), len_max)),
    }
}

/// Profiles every attribute of the relation.
pub fn profile(rel: &Relation) -> Vec<AttrProfile> {
    rel.schema().attr_ids().map(|a| profile_attr(rel, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Relation {
        let schema = Schema::new([
            ("City", AttrType::Text),
            ("Pop", AttrType::Int),
        ])
        .unwrap();
        Relation::new(
            schema,
            vec![
                vec!["Salerno".into(), Value::Int(130)],
                vec!["Milano".into(), Value::Int(1350)],
                vec!["Salerno".into(), Value::Null],
                vec![Value::Null, Value::Int(20)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn profiles_counts() {
        let p = profile(&sample());
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].name, "City");
        assert_eq!(p[0].nulls, 1);
        assert_eq!(p[0].distinct, 2);
        assert_eq!(p[0].text_len_range, Some((6, 7)));
        assert_eq!(p[0].numeric_range, None);
        assert_eq!(p[1].nulls, 1);
        assert_eq!(p[1].distinct, 3);
        assert_eq!(p[1].numeric_range, Some((20.0, 1350.0)));
        assert_eq!(p[1].numeric_mean, Some(500.0));
    }

    #[test]
    fn rates_and_uniqueness() {
        let p = profile(&sample());
        assert_eq!(p[0].null_rate(4), 0.25);
        assert!((p[0].uniqueness(4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p[1].uniqueness(4), 1.0);
    }

    #[test]
    fn empty_relation_profiles() {
        let schema = Schema::new([("A", AttrType::Float)]).unwrap();
        let rel = Relation::empty(schema);
        let p = profile(&rel);
        assert_eq!(p[0].nulls, 0);
        assert_eq!(p[0].distinct, 0);
        assert_eq!(p[0].numeric_range, None);
        assert_eq!(p[0].null_rate(0), 0.0);
        assert_eq!(p[0].uniqueness(0), 0.0);
    }
}
