//! Minimal RFC 4180-style CSV codec.
//!
//! Implemented in-repo (rather than pulling in the `csv` crate) because the
//! datasets the paper evaluates on are plain comma-separated files with
//! occasional quoting, and a dependency-free codec keeps the workspace
//! self-contained. Supports quoted fields, embedded commas/newlines/quotes,
//! CRLF, and a typed header convention.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::{AttrType, Schema};
use crate::value::Value;

/// Splits one logical CSV record into fields. `raw` must contain balanced
/// quotes (the reader accumulates physical lines until quotes balance).
fn split_record(raw: &str, line: usize) -> Result<Vec<String>, DataError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = raw.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        // A quote inside an unquoted field is taken literally;
                        // real-world CSVs (the Restaurant dataset included)
                        // contain such fields.
                        field.push('"');
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv { line, message: "unterminated quoted field".into() });
    }
    fields.push(field);
    Ok(fields)
}

/// Quotes a field if it contains a separator, quote, or newline.
fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_owned()
    }
}

/// Parses a header field of the form `name:type` (falling back to `Text`
/// when the type annotation is absent).
fn parse_header_field(field: &str) -> Result<(String, AttrType), DataError> {
    match field.rsplit_once(':') {
        Some((name, ty)) => Ok((name.trim().to_owned(), ty.trim().parse()?)),
        None => Ok((field.trim().to_owned(), AttrType::Text)),
    }
}

/// Reads a relation from CSV text with a typed header line
/// (`Name:text,Class:int,...`). Untyped header fields default to text.
pub fn read_str(input: &str) -> Result<Relation, DataError> {
    read_records(input.lines().map(|l| Ok(l.to_owned())))
}

/// Reads a relation from a CSV file with a typed header line.
pub fn read_path(path: impl AsRef<Path>) -> Result<Relation, DataError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    read_records(reader.lines().map(|l| l.map_err(DataError::from)))
}

/// Groups physical lines into logical records: lines are joined while a
/// record has an odd number of quote characters (an open quoted field).
/// Returns `(first_line_number, record_text)` pairs.
fn logical_records(
    lines: impl Iterator<Item = Result<String, DataError>>,
) -> Result<Vec<(usize, String)>, DataError> {
    let mut records = Vec::new();
    let mut lineno = 0usize;
    let mut pending: Option<(usize, String)> = None;
    for line in lines {
        let line = line?;
        lineno += 1;
        let (start, acc) = match pending.take() {
            None => (lineno, line),
            Some((start, mut acc)) => {
                acc.push('\n');
                acc.push_str(&line);
                (start, acc)
            }
        };
        // Quotes balanced: the record is complete.
        if acc.matches('"').count() % 2 == 0 {
            records.push((start, acc));
        } else {
            pending = Some((start, acc));
        }
    }
    if let Some(rec) = pending {
        // Unterminated quote at EOF; keep it so split_record reports the error.
        records.push(rec);
    }
    Ok(records)
}

fn read_records(
    lines: impl Iterator<Item = Result<String, DataError>>,
) -> Result<Relation, DataError> {
    let records = logical_records(lines)?;
    let mut records = records.into_iter();
    let (hline, header) = records
        .next()
        .ok_or(DataError::Csv { line: 0, message: "empty input".into() })?;
    let header_fields = split_record(header.trim_end_matches('\r'), hline)?;
    let mut attrs = Vec::with_capacity(header_fields.len());
    for f in &header_fields {
        attrs.push(parse_header_field(f)?);
    }
    let schema = Schema::new(attrs)?;

    let mut rel = Relation::empty(schema);
    for (line, record) in records {
        let record = record.trim_end_matches('\r');
        if record.is_empty() {
            continue;
        }
        let fields = split_record(record, line)?;
        if fields.len() != rel.arity() {
            return Err(DataError::Csv {
                line,
                message: format!("expected {} fields, found {}", rel.arity(), fields.len()),
            });
        }
        let tuple = fields
            .iter()
            .enumerate()
            .map(|(col, raw)| Value::parse(raw, rel.schema().ty(col)))
            .collect();
        rel.push(tuple)?;
    }
    Ok(rel)
}

/// Serializes a relation to CSV text with a typed header. Missing values are
/// written as `_` (a recognized null token) rather than empty fields, so
/// that a row of all-null values does not collapse into a blank line and the
/// output round-trips through [`read_str`].
pub fn write_string(rel: &Relation) -> String {
    let mut out = String::new();
    for (i, a) in rel.schema().attrs().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote_field(&format!("{}:{}", a.name, a.ty)));
    }
    out.push('\n');
    for t in rel.tuples() {
        for (i, v) in t.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&quote_field(&v.render()));
        }
        out.push('\n');
    }
    out
}

/// Writes a relation to a CSV file with a typed header.
pub fn write_path(rel: &Relation, path: impl AsRef<Path>) -> Result<(), DataError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(write_string(rel).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Name:text,City:text,Class:int
Granita,Malibu,6
\"Chinois, Main\",LA,5
Citrus,,6
";

    #[test]
    fn read_basic() {
        let r = read_str(SAMPLE).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.value(0, 2), &Value::Int(6));
        assert_eq!(r.value(1, 0), &Value::Text("Chinois, Main".into()));
        assert!(r.is_missing(2, 1));
    }

    #[test]
    fn untyped_header_defaults_to_text() {
        let r = read_str("A,B\nx,y\n").unwrap();
        assert_eq!(r.schema().ty(0), AttrType::Text);
        assert_eq!(r.value(0, 1), &Value::Text("y".into()));
    }

    #[test]
    fn quoted_quote_and_newline() {
        let input = "A:text\n\"say \"\"hi\"\"\nthere\"\n";
        let r = read_str(input).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, 0), &Value::Text("say \"hi\"\nthere".into()));
    }

    #[test]
    fn crlf_tolerated() {
        let r = read_str("A:int\r\n1\r\n2\r\n").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(1, 0), &Value::Int(2));
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let err = read_str("A:int,B:int\n1,2\n3\n").unwrap_err();
        match err {
            DataError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(read_str("A:text\n\"oops\n").is_err());
    }

    #[test]
    fn round_trip() {
        let r = read_str(SAMPLE).unwrap();
        let text = write_string(&r);
        let r2 = read_str(&text).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn round_trip_with_special_chars() {
        let schema = Schema::new([("A", AttrType::Text)]).unwrap();
        let r = Relation::new(
            schema,
            vec![
                vec!["comma, inside".into()],
                vec!["quote \" inside".into()],
                vec![Value::Null],
            ],
        )
        .unwrap();
        let r2 = read_str(&write_string(&r)).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn file_round_trip() {
        let r = read_str(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("renuver-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        write_path(&r, &path).unwrap();
        let r2 = read_path(&path).unwrap();
        assert_eq!(r, r2);
    }
}
