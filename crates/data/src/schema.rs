//! Relation schemas: named, typed attributes.

use std::fmt;

use crate::error::DataError;

/// Index of an attribute within a [`Schema`] (the paper's `A ∈ attr(R)`).
///
/// Attribute ids are dense `0..m` indices; every per-attribute structure in
/// the workspace (distance patterns, RFD constraints, rule sets) is keyed by
/// `AttrId` so lookups are array indexing, never string hashing.
pub type AttrId = usize;

/// Domain of an attribute. Determines which distance function applies
/// (Section 5.3: edit distance for strings, absolute difference for
/// numbers, equality for booleans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Free text / categorical values; compared with edit distance.
    Text,
    /// Integer values; compared with absolute difference.
    Int,
    /// Floating point values; compared with absolute difference.
    Float,
    /// Boolean values; compared with the equality constraint.
    Bool,
}

impl AttrType {
    /// `true` for the numeric domains (`Int`, `Float`).
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Text => "text",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Bool => "bool",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for AttrType {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "string" | "str" => Ok(AttrType::Text),
            "int" | "integer" | "i64" => Ok(AttrType::Int),
            "float" | "double" | "f64" | "real" => Ok(AttrType::Float),
            "bool" | "boolean" => Ok(AttrType::Bool),
            other => Err(DataError::UnknownType(other.to_owned())),
        }
    }
}

/// A single named, typed attribute of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Attribute domain.
    pub ty: AttrType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty }
    }
}

/// A relation schema `R = {A_1, ..., A_m}` (Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Errors
    /// Returns [`DataError::DuplicateAttribute`] if two attributes share a
    /// name.
    pub fn new<I, S>(attrs: I) -> Result<Self, DataError>
    where
        I: IntoIterator<Item = (S, AttrType)>,
        S: Into<String>,
    {
        let mut schema = Schema { attrs: Vec::new() };
        for (name, ty) in attrs {
            let name = name.into();
            if schema.index_of(&name).is_some() {
                return Err(DataError::DuplicateAttribute(name));
            }
            schema.attrs.push(Attribute::new(name, ty));
        }
        Ok(schema)
    }

    /// Number of attributes `m`.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Iterates over the attributes in declaration order.
    pub fn attrs(&self) -> impl Iterator<Item = &Attribute> {
        self.attrs.iter()
    }

    /// The attribute at `id`.
    ///
    /// # Panics
    /// Panics if `id >= arity()`; attribute ids always come from the same
    /// schema so out-of-range access is a programming error.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id]
    }

    /// Name of the attribute at `id`.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attrs[id].name
    }

    /// Type of the attribute at `id`.
    pub fn ty(&self, id: AttrId) -> AttrType {
        self.attrs[id].ty
    }

    /// Looks an attribute up by name.
    pub fn index_of(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Looks an attribute up by name, erroring with context if absent.
    pub fn require(&self, name: &str) -> Result<AttrId, DataError> {
        self.index_of(name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_owned()))
    }

    /// Ids of all attributes, `0..m`.
    pub fn attr_ids(&self) -> std::ops::Range<AttrId> {
        0..self.attrs.len()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new([
            ("Name", AttrType::Text),
            ("City", AttrType::Text),
            ("Class", AttrType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn arity_and_lookup() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("City"), Some(1));
        assert_eq!(s.index_of("Phone"), None);
        assert_eq!(s.name(2), "Class");
        assert_eq!(s.ty(2), AttrType::Int);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::new([("A", AttrType::Int), ("A", AttrType::Text)]).unwrap_err();
        assert!(matches!(err, DataError::DuplicateAttribute(ref n) if n == "A"));
    }

    #[test]
    fn require_reports_unknown() {
        let s = sample();
        assert!(s.require("Name").is_ok());
        assert!(matches!(
            s.require("Phone"),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn type_parsing() {
        assert_eq!("double".parse::<AttrType>().unwrap(), AttrType::Float);
        assert_eq!("STRING".parse::<AttrType>().unwrap(), AttrType::Text);
        assert!("blob".parse::<AttrType>().is_err());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(sample().to_string(), "R(Name: text, City: text, Class: int)");
    }
}
