//! ARFF (Attribute-Relation File Format) codec.
//!
//! The UCI datasets the paper evaluates on (Glass, Bridges, …) are
//! distributed in Weka's ARFF format, so a practical release reads it
//! natively. Supported: `@relation`, `@attribute` with `numeric`/`real`/
//! `integer`/`string`/nominal-specification types, `@data` with
//! comma-separated rows, `?` for missing values, quoted identifiers and
//! values, and `%` comments. Sparse rows (`{i v, …}`) are not supported —
//! none of the relevant datasets use them.
//!
//! Nominal attributes (`{red, green, blue}`) are mapped to [`AttrType::Text`];
//! the declared value list is validated against the data.

use std::path::Path;

use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::{AttrType, Schema};
use crate::value::Value;

/// Parses ARFF text into a relation.
pub fn read_str(input: &str) -> Result<Relation, DataError> {
    let mut name = None;
    let mut attrs: Vec<(String, AttrType, Option<Vec<String>>)> = Vec::new();
    // `Some` doubles as the "inside @data" marker — there is no boolean to
    // fall out of sync with, so data rows always have a relation to land in.
    let mut rel: Option<Relation> = None;

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rel) = rel.as_mut() {
            let fields = split_data_row(line, lineno)?;
            if fields.len() != attrs.len() {
                return Err(DataError::Arff {
                    line: lineno,
                    message: format!(
                        "expected {} fields, found {}",
                        attrs.len(),
                        fields.len()
                    ),
                });
            }
            let mut tuple = Vec::with_capacity(fields.len());
            for (field, (attr_name, ty, nominal)) in fields.iter().zip(&attrs) {
                let v = if field == "?" {
                    Value::Null
                } else {
                    let field = unquote(field);
                    if let Some(allowed) = nominal {
                        if !allowed.iter().any(|a| a == field) {
                            return Err(DataError::Arff {
                                line: lineno,
                                message: format!(
                                    "value {field:?} not in the nominal domain of {attr_name:?}"
                                ),
                            });
                        }
                    }
                    Value::parse(field, *ty)
                };
                tuple.push(v);
            }
            rel.push(tuple)?;
        } else {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("@relation") {
                name = Some(unquote(line[9..].trim()).to_owned());
            } else if lower.starts_with("@attribute") {
                let rest = line[10..].trim();
                let (attr_name, ty_spec) = split_attr(rest, lineno)?;
                let (ty, nominal) = parse_type(ty_spec, lineno)?;
                attrs.push((attr_name, ty, nominal));
            } else if lower.starts_with("@data") {
                if attrs.is_empty() {
                    return Err(DataError::Arff {
                        line: lineno,
                        message: "@data before any @attribute".into(),
                    });
                }
                let schema =
                    Schema::new(attrs.iter().map(|(n, t, _)| (n.clone(), *t)))?;
                rel = Some(Relation::empty(schema));
            } else {
                return Err(DataError::Arff {
                    line: lineno,
                    message: format!("unexpected ARFF header line {line:?}"),
                });
            }
        }
    }
    let _ = name; // the relation name is not represented in `Relation`
    rel.ok_or(DataError::Arff { line: 0, message: "no @data section".into() })
}

/// Reads an ARFF file.
pub fn read_path(path: impl AsRef<Path>) -> Result<Relation, DataError> {
    read_str(&std::fs::read_to_string(path)?)
}

/// Serializes a relation to ARFF text. Text attributes are emitted as
/// `string` (not nominal); missing values as `?`.
pub fn write_string(rel: &Relation, relation_name: &str) -> String {
    let mut out = format!("@relation {}\n\n", quote_if_needed(relation_name));
    for a in rel.schema().attrs() {
        let ty = match a.ty {
            AttrType::Int => "integer",
            AttrType::Float => "numeric",
            AttrType::Text => "string",
            // ARFF has no boolean; the conventional encoding is a nominal.
            AttrType::Bool => "{true, false}",
        };
        out.push_str(&format!("@attribute {} {}\n", quote_if_needed(&a.name), ty));
    }
    out.push_str("\n@data\n");
    for t in rel.tuples() {
        let row: Vec<String> = t
            .iter()
            .map(|v| {
                if v.is_null() {
                    "?".to_owned()
                } else {
                    quote_if_needed(&v.render())
                }
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Writes a relation to an ARFF file.
pub fn write_path(
    rel: &Relation,
    relation_name: &str,
    path: impl AsRef<Path>,
) -> Result<(), DataError> {
    std::fs::write(path, write_string(rel, relation_name))?;
    Ok(())
}

/// Drops a `%` comment unless it is inside quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match (c, in_quote) {
            ('%', None) => return &line[..i],
            (q @ ('\'' | '"'), None) => in_quote = Some(q),
            (q, Some(open)) if q == open => in_quote = None,
            _ => {}
        }
    }
    line
}

/// Splits `@attribute <name> <type>`; the name may be quoted.
fn split_attr(rest: &str, line: usize) -> Result<(String, &str), DataError> {
    let rest = rest.trim();
    if let Some(q) = rest.chars().next().filter(|c| *c == '\'' || *c == '"') {
        if let Some(end) = rest[1..].find(q) {
            let name = rest[1..=end].to_owned();
            return Ok((name, rest[end + 2..].trim()));
        }
        return Err(DataError::Arff { line, message: "unterminated attribute name".into() });
    }
    match rest.split_once(char::is_whitespace) {
        Some((name, ty)) => Ok((name.to_owned(), ty.trim())),
        None => Err(DataError::Arff { line, message: "attribute without a type".into() }),
    }
}

/// Maps an ARFF type spec onto [`AttrType`] plus the nominal domain.
fn parse_type(
    spec: &str,
    line: usize,
) -> Result<(AttrType, Option<Vec<String>>), DataError> {
    let lower = spec.to_ascii_lowercase();
    if lower == "numeric" || lower == "real" {
        return Ok((AttrType::Float, None));
    }
    if lower == "integer" {
        return Ok((AttrType::Int, None));
    }
    if lower == "string" {
        return Ok((AttrType::Text, None));
    }
    if spec.starts_with('{') && spec.ends_with('}') {
        let values: Vec<String> = split_data_row(&spec[1..spec.len() - 1], line)?
            .into_iter()
            .map(|v| unquote(&v).to_owned())
            .collect();
        if values.is_empty() {
            return Err(DataError::Arff { line, message: "empty nominal domain".into() });
        }
        // Booleans encoded as {true, false} keep their natural type.
        let mut sorted: Vec<String> =
            values.iter().map(|v| v.to_ascii_lowercase()).collect();
        sorted.sort();
        if sorted == ["false", "true"] {
            return Ok((AttrType::Bool, None));
        }
        return Ok((AttrType::Text, Some(values)));
    }
    if lower.starts_with("date") {
        // Dates are preserved as text; distance = edit distance.
        return Ok((AttrType::Text, None));
    }
    Err(DataError::Arff { line, message: format!("unsupported ARFF type {spec:?}") })
}

/// Splits a data row on commas, honoring single/double quotes.
fn split_data_row(line: &str, lineno: usize) -> Result<Vec<String>, DataError> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut in_quote: Option<char> = None;
    for c in line.chars() {
        match (c, in_quote) {
            (',', None) => out.push(std::mem::take(&mut field)),
            (q @ ('\'' | '"'), None) => {
                in_quote = Some(q);
                field.push(q);
            }
            (q, Some(open)) if q == open => {
                in_quote = None;
                field.push(q);
            }
            (c, _) => field.push(c),
        }
    }
    if in_quote.is_some() {
        return Err(DataError::Arff { line: lineno, message: "unterminated quote".into() });
    }
    out.push(field);
    Ok(out.into_iter().map(|f| f.trim().to_owned()).collect())
}

/// Strips one layer of matching quotes.
fn unquote(s: &str) -> &str {
    let s = s.trim();
    for q in ['\'', '"'] {
        if s.len() >= 2 && s.starts_with(q) && s.ends_with(q) {
            return &s[1..s.len() - 1];
        }
    }
    s
}

fn quote_if_needed(s: &str) -> String {
    if s.contains([' ', ',', '%', '\'', '"']) || s.is_empty() {
        format!("'{}'", s.replace('\'', "\\'"))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GLASS_SNIPPET: &str = "\
% 1. Title: Glass Identification Database
@relation glass

@attribute RI numeric
@attribute Na numeric
@attribute 'Type' {build_wind_float, build_wind_non_float, headlamps}

@data
1.51761,13.89,build_wind_float
1.51618,13.53,build_wind_non_float
1.51766,?,headlamps
";

    #[test]
    fn reads_uci_style_file() {
        let rel = read_str(GLASS_SNIPPET).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.arity(), 3);
        assert_eq!(rel.schema().name(2), "Type");
        assert_eq!(rel.schema().ty(0), AttrType::Float);
        assert_eq!(rel.schema().ty(2), AttrType::Text);
        assert_eq!(rel.value(0, 0), &Value::Float(1.51761));
        assert!(rel.is_missing(2, 1));
        assert_eq!(rel.value(2, 2), &Value::Text("headlamps".into()));
    }

    #[test]
    fn nominal_domain_enforced() {
        let bad = GLASS_SNIPPET.replace("1.51766,?,headlamps", "1.51766,?,tableware");
        let err = read_str(&bad).unwrap_err();
        assert!(err.to_string().contains("nominal domain"), "{err}");
    }

    #[test]
    fn integer_and_string_types() {
        let rel = read_str(
            "@relation t\n\
             @attribute id integer\n\
             @attribute name string\n\
             @data\n\
             1,'Granita Cafe'\n\
             2,Citrus\n",
        )
        .unwrap();
        assert_eq!(rel.schema().ty(0), AttrType::Int);
        assert_eq!(rel.value(0, 1), &Value::Text("Granita Cafe".into()));
        assert_eq!(rel.value(1, 0), &Value::Int(2));
    }

    #[test]
    fn boolean_nominal_detected() {
        let rel = read_str(
            "@relation t\n@attribute flag {true, false}\n@data\ntrue\nfalse\n?\n",
        )
        .unwrap();
        assert_eq!(rel.schema().ty(0), AttrType::Bool);
        assert_eq!(rel.value(0, 0), &Value::Bool(true));
        assert!(rel.is_missing(2, 0));
    }

    #[test]
    fn comments_stripped_outside_quotes() {
        let rel = read_str(
            "@relation t % trailing comment\n\
             @attribute v string\n\
             @data\n\
             'fifty % off'\n",
        )
        .unwrap();
        assert_eq!(rel.value(0, 0), &Value::Text("fifty % off".into()));
    }

    #[test]
    fn errors_report_context() {
        assert!(read_str("@data\n1\n").is_err()); // @data before attributes
        assert!(read_str("@relation t\n@attribute v string\n").is_err()); // no data
        let err = read_str(
            "@relation t\n@attribute v blob\n@data\nx\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
        let err = read_str(
            "@relation t\n@attribute a string\n@attribute b string\n@data\nonly_one\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected 2 fields"), "{err}");
    }

    #[test]
    fn round_trip_through_writer() {
        let rel = read_str(GLASS_SNIPPET).unwrap();
        let text = write_string(&rel, "glass");
        let back = read_str(&text).unwrap();
        // Nominal domains degrade to `string`, values survive exactly.
        assert_eq!(back.len(), rel.len());
        for row in 0..rel.len() {
            for col in 0..rel.arity() {
                assert_eq!(back.value(row, col), rel.value(row, col));
            }
        }
    }

    #[test]
    fn writer_quotes_spaces_and_encodes_nulls() {
        use crate::schema::Schema;
        let schema = Schema::new([("n", AttrType::Text)]).unwrap();
        let rel = Relation::new(
            schema,
            vec![vec!["Chinois on Main".into()], vec![Value::Null]],
        )
        .unwrap();
        let text = write_string(&rel, "r");
        assert!(text.contains("'Chinois on Main'"), "{text}");
        assert!(text.lines().last().unwrap().contains('?'), "{text}");
        let back = read_str(&text).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn file_round_trip() {
        let rel = read_str(GLASS_SNIPPET).unwrap();
        let dir = std::env::temp_dir().join("renuver-arff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("glass.arff");
        write_path(&rel, "glass", &path).unwrap();
        let back = read_path(&path).unwrap();
        assert_eq!(back.len(), rel.len());
    }
}
