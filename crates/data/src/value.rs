//! Attribute values, including the explicit missing value (`t[A] = _`).

use std::cmp::Ordering;
use std::fmt;

use crate::schema::AttrType;

/// A single attribute value of a tuple.
///
/// The paper's data model (Section 5.3) supports string, int, float/double,
/// and boolean attributes, plus the missing-value flag `_` (Definition 4.1).
/// `Null` is a first-class variant rather than an `Option` wrapper so that a
/// tuple is simply a `Vec<Value>` and projections stay allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The missing value, written `_` in the paper.
    Null,
    /// 64-bit signed integer value.
    Int(i64),
    /// 64-bit floating point value. `NaN` is not a valid value; constructors
    /// and the CSV reader map non-finite floats to `Null`.
    Float(f64),
    /// Textual value.
    Text(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Returns `true` iff this is the missing value.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type of the value, or `None` for `Null` (a missing value
    /// carries no type of its own; its type comes from the schema).
    pub fn attr_type(&self) -> Option<AttrType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Text(_) => Some(AttrType::Text),
            Value::Bool(_) => Some(AttrType::Bool),
        }
    }

    /// Numeric view of the value: `Int` and `Float` map to `f64`, everything
    /// else (including `Null`) maps to `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Textual view of the value, without conversion.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Boolean view of the value, without conversion.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a raw string into a value of the given attribute type.
    ///
    /// Empty strings and the conventional null spellings (`_`, `?`, `NULL`,
    /// `null`, `NA`, `N/A`) parse to `Null` regardless of the target type.
    /// A string that fails to parse as the target type falls back to `Null`
    /// rather than erroring: real-world CSVs routinely contain stray tokens,
    /// and the imputation problem treats unparseable entries as missing.
    pub fn parse(raw: &str, ty: AttrType) -> Value {
        let raw = raw.trim();
        if is_null_token(raw) {
            return Value::Null;
        }
        match ty {
            AttrType::Int => raw.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
            AttrType::Float => match raw.parse::<f64>() {
                Ok(f) if f.is_finite() => Value::Float(f),
                _ => Value::Null,
            },
            AttrType::Bool => match raw.to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "y" | "1" => Value::Bool(true),
                "false" | "f" | "no" | "n" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
            AttrType::Text => Value::Text(raw.to_owned()),
        }
    }

    /// Renders the value the way the CSV writer and the paper's tables do:
    /// `_` for missing values, bare literals otherwise.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "_".to_owned(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Total ordering used for deterministic sorting of candidate values.
    ///
    /// Orders by variant first (`Null < Bool < Int/Float < Text`), then by
    /// payload. `Int` and `Float` compare numerically across variants so that
    /// `Int(2) == Float(2.0)` sort adjacently.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Text(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                // Both numeric; payloads are finite by construction.
                a.as_f64()
                    .unwrap()
                    .partial_cmp(&b.as_f64().unwrap())
                    .unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Float(v)
        } else {
            Value::Null
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Recognizes the conventional spellings of a missing value in raw data.
pub fn is_null_token(raw: &str) -> bool {
    matches!(raw, "" | "_" | "?" | "NULL" | "null" | "NA" | "na" | "N/A" | "n/a")
}

/// Formats a float without scientific notation and without trailing noise:
/// integers render bare (`3`), everything else with up to 6 significant
/// decimals (`3.14`).
fn format_float(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        let s = format!("{f:.6}");
        let s = s.trim_end_matches('0');
        s.trim_end_matches('.').to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert!(!Value::Text(String::new()).is_null());
    }

    #[test]
    fn parse_int() {
        assert_eq!(Value::parse("42", AttrType::Int), Value::Int(42));
        assert_eq!(Value::parse(" -7 ", AttrType::Int), Value::Int(-7));
        assert_eq!(Value::parse("abc", AttrType::Int), Value::Null);
        assert_eq!(Value::parse("", AttrType::Int), Value::Null);
    }

    #[test]
    fn parse_float() {
        assert_eq!(Value::parse("3.25", AttrType::Float), Value::Float(3.25));
        assert_eq!(Value::parse("inf", AttrType::Float), Value::Null);
        assert_eq!(Value::parse("NaN", AttrType::Float), Value::Null);
    }

    #[test]
    fn parse_bool() {
        assert_eq!(Value::parse("true", AttrType::Bool), Value::Bool(true));
        assert_eq!(Value::parse("No", AttrType::Bool), Value::Bool(false));
        assert_eq!(Value::parse("maybe", AttrType::Bool), Value::Null);
    }

    #[test]
    fn parse_null_tokens() {
        for tok in ["_", "?", "NULL", "NA", "n/a", ""] {
            assert_eq!(Value::parse(tok, AttrType::Text), Value::Null, "{tok:?}");
        }
    }

    #[test]
    fn text_preserves_content() {
        assert_eq!(
            Value::parse("Los Angeles", AttrType::Text),
            Value::Text("Los Angeles".into())
        );
    }

    #[test]
    fn render_round_trip() {
        assert_eq!(Value::Int(5).render(), "5");
        assert_eq!(Value::Float(2.5).render(), "2.5");
        assert_eq!(Value::Float(2.0).render(), "2");
        assert_eq!(Value::Null.render(), "_");
        assert_eq!(Value::Bool(true).render(), "true");
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Text("3".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::from(f64::NAN), Value::Null);
        assert_eq!(Value::from(f64::INFINITY), Value::Null);
        assert_eq!(Value::from(2.0), Value::Float(2.0));
    }

    #[test]
    fn total_cmp_orders_variants() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Equal);
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(2.5)), Greater);
        assert_eq!(
            Value::Text("a".into()).total_cmp(&Value::Text("b".into())),
            Less
        );
        assert_eq!(Value::Bool(false).total_cmp(&Value::Int(0)), Less);
    }
}
