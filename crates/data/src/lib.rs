//! Relational data substrate for the RENUVER reproduction.
//!
//! This crate provides the minimal relational model the paper assumes
//! (Section 3, Table 1): typed attribute [`Value`]s with an explicit
//! missing-value representation (`t[A] = _`), a [`Schema`] of named, typed
//! attributes, and a [`Relation`] instance holding tuples. A small RFC
//! 4180-style CSV codec and a Weka ARFF codec (the format the paper's UCI
//! datasets ship in) are included so datasets can be loaded from and
//! persisted to disk without external dependencies.
//!
//! Nothing in this crate knows about dependencies or imputation; it is the
//! substrate everything else (distances, RFDs, the RENUVER algorithm,
//! baselines) is built on.

pub mod arff;
pub mod csv;
pub mod error;
pub mod profile;
pub mod relation;
pub mod schema;
pub mod value;

pub use error::DataError;
pub use profile::{profile, AttrProfile};
pub use relation::{Cell, Relation, Tuple};
pub use schema::{AttrId, AttrType, Attribute, Schema};
pub use value::Value;
