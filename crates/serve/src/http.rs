//! A minimal HTTP/1.1 codec over `std::io` streams.
//!
//! The container this repo builds in has no network access and no HTTP
//! crates, so the server speaks the protocol by hand. The subset here is
//! exactly what the endpoints need: request line + headers + fixed
//! `Content-Length` bodies in, status + headers + body out, optional
//! keep-alive. No chunked transfer, no TLS, no HTTP/2 — clients that
//! need those sit behind a reverse proxy.
//!
//! Parsing is defensive by construction: every line and the body are
//! read under hard byte limits, so oversized or hostile input yields a
//! typed [`HttpError`] (which the server maps to 400/413/431), never an
//! unbounded allocation.

use std::io::{BufRead, Write};

/// Hard cap on the request line and each header line, bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the total header block, bytes.
pub const MAX_HEADER_BYTES: usize = 32 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not a protocol error.
    Closed,
    /// Transport error mid-request.
    Io(std::io::Error),
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The declared `Content-Length` exceeds the server's body limit.
    BodyTooLarge { declared: usize, limit: usize },
    /// A header line (or the header block) exceeds the line limits.
    HeadersTooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::HeadersTooLarge => write!(f, "request headers too large"),
        }
    }
}

/// A parsed request: method, split path/query, lower-cased header names,
/// and the raw body bytes.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Decoded `key=value` query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one line terminated by `\n`, stripping the terminator and an
/// optional `\r`, under [`MAX_LINE_BYTES`].
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() { Ok(None) } else { Err(HttpError::Malformed("unterminated line")) }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(HttpError::HeadersTooLarge);
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Splits `a=1&b=two` into pairs; bare keys get an empty value. No
/// percent-decoding — the parameters this API takes are plain tokens.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (part.to_string(), String::new()),
        })
        .collect()
}

/// Reads and parses one request from the stream. `max_body` bounds the
/// accepted `Content-Length`; [`HttpError::Closed`] means the peer hung
/// up cleanly between requests.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Request, HttpError> {
    let request_line = match read_line(reader)? {
        None => return Err(HttpError::Closed),
        Some(line) => line,
    };
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?;
    let target = parts.next().ok_or(HttpError::Malformed("request line lacks a target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("request line lacks a version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("not an HTTP/1.x request"));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line(reader)?.ok_or(HttpError::Malformed("headers cut short"))?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line lacks a colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // RFC 9110 §8.6: a message with multiple Content-Length field lines
    // carrying different values must be rejected — honoring the first (or
    // any) one desyncs body framing on keep-alive connections, the
    // classic request-smuggling primitive. Repeats of the *same* valid
    // value are tolerated, as the RFC permits.
    let mut content_length = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let parsed = v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad Content-Length"))?;
        match content_length {
            None => content_length = Some(parsed),
            Some(prev) if prev == parsed => {}
            Some(_) => return Err(HttpError::Malformed("conflicting Content-Length headers")),
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { declared: content_length, limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) appended verbatim.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response onto the stream. `close` controls the
/// `Connection` header; the caller flushes.
pub fn write_response(
    out: &mut impl Write,
    resp: &Response,
    close: bool,
) -> std::io::Result<()> {
    write!(out, "HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status))?;
    write!(out, "Content-Type: {}\r\n", resp.content_type)?;
    write!(out, "Content-Length: {}\r\n", resp.body.len())?;
    write!(out, "Connection: {}\r\n", if close { "close" } else { "keep-alive" })?;
    for (name, value) in &resp.extra_headers {
        write!(out, "{name}: {value}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(&resp.body)?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /v1/model?timeout_ms=250&explain HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/model");
        assert_eq!(req.query_param("timeout_ms"), Some("250"));
        assert_eq!(req.query_param("explain"), Some(""));
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_post_body() {
        let req = parse(
            b"POST /v1/impute HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.body, b"body");
        assert!(req.wants_close());
    }

    #[test]
    fn eof_before_a_request_is_closed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn oversized_bodies_are_refused_before_reading() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").err().unwrap();
        assert!(matches!(err, HttpError::BodyTooLarge { declared: 4096, limit: 1024 }));
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for raw in [
            &b"\x00\x01\x02\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(parse(raw).is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn conflicting_content_lengths_are_malformed() {
        // Two different declared lengths: honoring either desyncs the
        // connection, so the request must die as malformed (→ 400).
        let err = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 6\r\n\r\nbodyxx",
        )
        .err()
        .unwrap();
        assert!(matches!(err, HttpError::Malformed("conflicting Content-Length headers")));
        // A bad duplicate is malformed even when the first copy parses.
        assert!(parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: x\r\n\r\nbody")
            .is_err());
    }

    #[test]
    fn repeated_identical_content_lengths_are_tolerated() {
        let req = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn huge_header_lines_are_cut_off() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_LINE_BYTES + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::HeadersTooLarge)));
    }

    #[test]
    fn responses_serialize_with_framing() {
        let mut out = Vec::new();
        let mut resp = Response::json(200, "{\"ok\":true}".into());
        resp.extra_headers.push(("Retry-After", "1".into()));
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
